"""Tests for the phase-2 re-optimization rounds (Section VII / Figure 4)."""

import pytest

from repro.cse.pipeline import optimize_with_cse
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.scope.compiler import compile_script
from repro.workloads.paper_scripts import S1, S3
from tests.test_propagation import CROSS_JOIN_SCRIPT, INDEPENDENT_SCRIPT


def run(text, catalog, **kwargs):
    cfg = OptimizerConfig(cost_params=CostParams(machines=4), **kwargs)
    return optimize_with_cse(compile_script(text, catalog), catalog, cfg)


def rounds_by_lca(result):
    per_lca = {}
    for lca, signature in result.engine.stats.round_log:
        per_lca.setdefault(lca, []).append(signature)
    return per_lca


class TestFigure4a:
    """S3: two shared groups with different LCAs — rounds happen at each
    LCA independently, one shared group per round signature."""

    def test_rounds_at_two_lcas(self, abcd_catalog):
        result = run(S3, abcd_catalog)
        per_lca = rounds_by_lca(result)
        assert len(per_lca) == 2
        for signatures in per_lca.values():
            for signature in signatures:
                assert len(signature) == 1  # one shared group enforced

    def test_round_count_equals_history_sizes(self, abcd_catalog):
        result = run(S3, abcd_catalog)
        per_lca = rounds_by_lca(result)
        for lca, signatures in per_lca.items():
            shared = result.memo.group(lca).lca_for
            assert len(shared) == 1
            history = result.memo.group(shared[0]).history
            assert len(signatures) == len(history)


class TestFigure4b:
    """Cross joins: one LCA for two NON-independent shared groups —
    the full cartesian product of property combinations is evaluated."""

    def test_cartesian_rounds(self, abcd_catalog):
        result = run(CROSS_JOIN_SCRIPT, abcd_catalog)
        per_lca = rounds_by_lca(result)
        assert len(per_lca) == 1
        signatures = next(iter(per_lca.values()))
        shared = sorted(
            {gid for signature in signatures for gid, _entry in signature}
        )
        assert len(shared) == 2
        sizes = [
            len(result.memo.group(gid).history) for gid in shared
        ]
        assert len(signatures) == sizes[0] * sizes[1]
        # Every signature binds BOTH shared groups.
        assert all(len(sig) == 2 for sig in signatures)


class TestFigure5Sequential:
    """Independent shared groups at one LCA: greedy sweep — the round
    count is n1 + (n2 - 1) instead of n1 × n2 (Section VIII-A)."""

    def test_sequential_round_count(self, abcd_catalog):
        result = run(INDEPENDENT_SCRIPT, abcd_catalog)
        per_lca = rounds_by_lca(result)
        assert len(per_lca) == 1
        signatures = next(iter(per_lca.values()))
        shared = sorted(
            {gid for signature in signatures for gid, _entry in signature}
        )
        sizes = [len(result.memo.group(gid).history) for gid in shared]
        assert len(signatures) == sizes[0] + sizes[1] - 1

    def test_cartesian_when_independence_disabled(self, abcd_catalog):
        result = run(
            INDEPENDENT_SCRIPT, abcd_catalog, exploit_independence=False
        )
        signatures = next(iter(rounds_by_lca(result).values()))
        shared = sorted(
            {gid for signature in signatures for gid, _entry in signature}
        )
        sizes = [len(result.memo.group(gid).history) for gid in shared]
        assert len(signatures) == sizes[0] * sizes[1]

    def test_sequential_not_worse_than_cartesian(self, abcd_catalog):
        fast = run(INDEPENDENT_SCRIPT, abcd_catalog)
        slow = run(
            INDEPENDENT_SCRIPT, abcd_catalog, exploit_independence=False
        )
        # Independence is exact for independent groups: same final cost.
        assert fast.cost == pytest.approx(slow.cost, rel=1e-9)
        assert fast.engine.stats.rounds < slow.engine.stats.rounds


class TestPhaseSelection:
    def test_phase2_never_worse_than_phase1(self, abcd_catalog):
        for text in (S1, S3, CROSS_JOIN_SCRIPT, INDEPENDENT_SCRIPT):
            result = run(text, abcd_catalog)
            assert result.cost <= result.phase1_cost

    def test_chosen_phase_consistent_with_costs(self, abcd_catalog):
        result = run(S1, abcd_catalog)
        if result.chosen_phase == 2:
            assert result.phase2_cost <= result.phase1_cost
        else:
            assert result.phase1_cost <= result.phase2_cost


class TestRankingEffects:
    def test_property_ranking_changes_round_order_not_result(
        self, abcd_catalog
    ):
        ranked = run(S1, abcd_catalog, rank_properties=True)
        unranked = run(S1, abcd_catalog, rank_properties=False)
        assert ranked.cost == pytest.approx(unranked.cost, rel=1e-9)

    def test_shared_group_ranking_keeps_result(self, abcd_catalog):
        ranked = run(S3, abcd_catalog, rank_shared_groups=True)
        unranked = run(S3, abcd_catalog, rank_shared_groups=False)
        assert ranked.cost == pytest.approx(unranked.cost, rel=1e-9)

    def test_ranking_finds_best_plan_in_fewer_rounds_under_budget(
        self, abcd_catalog
    ):
        """Section VIII-B/C: under a tight budget the ranked search must
        do at least as well as the unranked one."""
        ranked = run(INDEPENDENT_SCRIPT, abcd_catalog, max_rounds=4,
                     rank_properties=True, rank_shared_groups=True)
        unranked = run(INDEPENDENT_SCRIPT, abcd_catalog, max_rounds=4,
                       rank_properties=False, rank_shared_groups=False)
        assert ranked.cost <= unranked.cost * (1 + 1e-9)


class TestCompensation:
    """The Algorithm 5 'compensating' step: when the enforced layout
    does not satisfy a consumer's own requirement, the engine bridges
    the gap with sorts/repartitions priced into the round."""

    def test_disjoint_consumer_forces_compensation(self, abcd_catalog):
        """One consumer groups on {A,B}, the other on {C,D} — no single
        layout serves both, so whichever is enforced, the other consumer
        must re-shuffle the spooled result (and the plan is still
        correct and cheaper than no sharing)."""
        from repro.exec import Cluster, PlanExecutor
        from repro.naive import NaiveEvaluator
        from repro.plan.physical import PhysRepartition, PhysSpool
        from repro.scope.compiler import compile_script
        from repro.workloads.datagen import generate_for_catalog

        text = (
            'R0 = EXTRACT A,B,C,D FROM "test.log" USING E;\n'
            "R = SELECT A,B,C,D,Count(*) AS N FROM R0 GROUP BY A,B,C,D;\n"
            "X = SELECT A,B,Sum(N) AS NX FROM R GROUP BY A,B;\n"
            "Y = SELECT C,D,Sum(N) AS NY FROM R GROUP BY C,D;\n"
            'OUTPUT X TO "x";\nOUTPUT Y TO "y";'
        )
        result = run(text, abcd_catalog)
        spools = result.plan.find_all(PhysSpool)
        if spools:
            # A repartition above the spool = the compensation step.
            spool = spools[0]
            above = [
                n
                for n in result.plan.iter_nodes()
                if isinstance(n.op, PhysRepartition)
                and any(c is spool for c in n.iter_nodes())
                and n is not spool
            ]
            assert above, "the disjoint consumer must re-shuffle"
        files = generate_for_catalog(abcd_catalog, seed=3)
        cluster = Cluster(machines=4)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        expected = NaiveEvaluator(files).run(
            compile_script(text, abcd_catalog)
        )
        for path, want in expected.items():
            assert outputs[path].sorted_rows() == want
