"""Unit tests for the plan-cache query service (``repro.service``).

Covers the three layers on their own terms: the canonicalization /
fingerprint / merge primitives of :mod:`repro.cse.merge`, the LRU
:class:`~repro.service.PlanCache` with its counter identities, and the
:class:`~repro.service.QueryService` semantics — hit/miss behaviour,
statistics invalidation, event emission, and verification of plans
served from the cache.  The differential, property-based and
concurrency layers live in their own modules.
"""

from __future__ import annotations

import math

import pytest

from repro.cse.merge import (
    BatchMergeError,
    canonicalize,
    merge_scripts,
    referenced_paths,
    script_fingerprint,
    uniquify_labels,
)
from repro.obs.bus import EventBus
from repro.plan.physical import PhysHashAgg, PhysStreamAgg
from repro.scope.compiler import compile_script
from repro.service import PlanCache, QueryService
from repro.service.cache import CacheKey
from repro.verify import PlanVerificationError
from repro.workloads.paper_scripts import PAPER_SCRIPTS

S1 = PAPER_SCRIPTS["S1"]
S2 = PAPER_SCRIPTS["S2"]

SHARED_CORE = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
OUTPUT R TO "r.out";
"""

#: Same script as SHARED_CORE with every relation renamed — the DAG is
#: identical, so the service must treat them as one cache entry.
SHARED_CORE_RENAMED = """
X0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
X = SELECT A,B,C,Sum(D) AS S FROM X0 GROUP BY A,B,C;
OUTPUT X TO "r.out";
"""

TWO_FILE_SCRIPT = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
Q0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
R = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B;
Q = SELECT A,B,Sum(D) AS T FROM Q0 GROUP BY A,B;
OUTPUT R TO "r.out";
OUTPUT Q TO "q.out";
"""


@pytest.fixture
def service(abcd_catalog, small_config) -> QueryService:
    return QueryService(abcd_catalog, small_config)


# ---------------------------------------------------------------------------
# Canonicalization and whole-script fingerprints
# ---------------------------------------------------------------------------


class TestFingerprints:
    def test_fingerprint_is_stable(self, abcd_catalog):
        one = script_fingerprint(compile_script(S1, abcd_catalog))
        two = script_fingerprint(compile_script(S1, abcd_catalog))
        assert one == two
        assert len(one) == 64

    def test_fingerprint_ignores_relation_names(self, abcd_catalog):
        assert script_fingerprint(
            compile_script(SHARED_CORE, abcd_catalog)
        ) == script_fingerprint(
            compile_script(SHARED_CORE_RENAMED, abcd_catalog)
        )

    def test_fingerprint_distinguishes_payloads(self, abcd_catalog):
        changed = SHARED_CORE.replace(
            "A,B,C,Sum(D) AS S", "A,B,C,Max(D) AS S"
        )
        assert script_fingerprint(
            compile_script(SHARED_CORE, abcd_catalog)
        ) != script_fingerprint(
            compile_script(changed, abcd_catalog)
        )

    def test_fingerprint_distinguishes_scripts(self, abcd_catalog):
        prints = {
            script_fingerprint(compile_script(text, abcd_catalog))
            for text in PAPER_SCRIPTS.values()
        }
        assert len(prints) == len(PAPER_SCRIPTS)

    def test_canonicalize_shares_textual_duplicates(self, abcd_catalog):
        # S2's three consumers each re-state the same aggregation over
        # the same extract; canonicalization must collapse the copies.
        plan = compile_script(S2, abcd_catalog)
        canon = canonicalize(plan)
        ids = [id(n) for n in canon.iter_nodes()]
        assert len(ids) == len(set(ids))
        tree_nodes = len(list(plan.iter_nodes()))
        dag_nodes = len(set(id(n) for n in canon.iter_nodes()))
        assert dag_nodes <= tree_nodes

    def test_canonicalize_preserves_fingerprint(self, abcd_catalog):
        plan = compile_script(S2, abcd_catalog)
        assert script_fingerprint(plan) == script_fingerprint(
            canonicalize(plan)
        )

    def test_referenced_paths(self, abcd_catalog):
        plan = compile_script(TWO_FILE_SCRIPT, abcd_catalog)
        assert referenced_paths(plan) == ("test.log", "test2.log")


class TestMergeScripts:
    def test_outputs_are_namespaced_and_mapped(self, abcd_catalog):
        merged = merge_scripts([
            compile_script(S1, abcd_catalog),
            compile_script(S2, abcd_catalog),
        ])
        assert merged.labels == ("q0", "q1")
        out_paths = {
            node.op.path
            for node in merged.plan.iter_nodes()
            if node.op.name == "Output"
        }
        assert all(p.startswith(("q0/", "q1/")) for p in out_paths)
        flat = [pair for omap in merged.output_maps for pair in omap]
        assert {prefixed for prefixed, _ in flat} == out_paths

    def test_merge_shares_cross_script_subexpressions(self, abcd_catalog):
        # S1 and S2 state the same aggregation over test.log; after the
        # merge the two scripts' plans must share those nodes.
        merged = merge_scripts([
            compile_script(S1, abcd_catalog),
            compile_script(S2, abcd_catalog),
        ])
        extracts = {
            id(node): node
            for node in merged.plan.iter_nodes()
            if node.op.name == "Extract" and node.op.path == "test.log"
        }
        assert len(extracts) == 1

    def test_split_outputs_roundtrip(self, abcd_catalog):
        merged = merge_scripts(
            [compile_script(S1, abcd_catalog)], labels=["only"]
        )
        fake = {prefixed: object()
                for omap in merged.output_maps for prefixed, _ in omap}
        [split] = merged.split_outputs(fake)
        assert set(split) == {orig
                              for omap in merged.output_maps
                              for _, orig in omap}

    def test_merge_rejects_bad_batches(self, abcd_catalog):
        plan = compile_script(S1, abcd_catalog)
        with pytest.raises(BatchMergeError):
            merge_scripts([])
        with pytest.raises(BatchMergeError):
            merge_scripts([plan, plan], labels=["a"])
        with pytest.raises(BatchMergeError):
            merge_scripts([plan, plan], labels=["a", "a"])

    def test_merge_rejects_slash_in_labels(self, abcd_catalog):
        # "/" is the namespace separator of prefixed output paths; a
        # label containing it would make split_outputs ambiguous.
        plan = compile_script(S1, abcd_catalog)
        with pytest.raises(BatchMergeError):
            merge_scripts([plan], labels=["team/alpha"])

    def test_uniquify_labels(self):
        assert uniquify_labels(["a", "b"]) == ["a", "b"]
        assert uniquify_labels(["a", "a", "a"]) == ["a", "a#2", "a#3"]
        # Suffixes must dodge labels that appear later in the list.
        assert uniquify_labels(["a", "a", "a#2"]) == ["a", "a#3", "a#2"]
        out = uniquify_labels(["a", "a", "b", "a#2", "b", "a"])
        assert len(out) == len(set(out))
        assert out[0] == "a" and out[2] == "b"

    def test_merge_uniquify_resolves_duplicate_labels(self, abcd_catalog):
        plan1 = compile_script(S1, abcd_catalog)
        plan2 = compile_script(S1, abcd_catalog)
        merged = merge_scripts([plan1, plan2], labels=["a", "a"],
                               uniquify=True)
        assert merged.labels == ("a", "a#2")
        out_paths = {
            node.op.path
            for node in merged.plan.iter_nodes()
            if node.op.name == "Output"
        }
        assert all(p.startswith(("a/", "a#2/")) for p in out_paths)
        # split_outputs keeps the two submissions separate even though
        # both asked for the same original path.
        fake = {prefixed: object()
                for omap in merged.output_maps for prefixed, _ in omap}
        split = merged.split_outputs(fake)
        assert len(split) == 2
        assert set(split[0]) == set(split[1])
        for path in split[0]:
            assert split[0][path] is not split[1][path]

    def test_duplicate_script_batch_executes(self, abcd_catalog):
        # Regression: a batch holding the same script twice (as a
        # streaming window does after two tenants submit it) must not
        # trip the duplicate-label check and must give each submission
        # its own copy of the outputs.
        from repro.optimizer.cost import CostParams
        from repro.optimizer.engine import OptimizerConfig
        from repro.workloads.datagen import generate_for_catalog

        service = QueryService(
            abcd_catalog,
            OptimizerConfig(cost_params=CostParams(machines=4)),
        )
        files = generate_for_catalog(abcd_catalog, seed=7)
        run = service.execute_many(
            [S1, S1], labels=["t", "t"], uniquify_labels=True,
            workers=2, files=files,
        )
        assert run.submit.labels == ("t", "t#2")
        assert len(run.outputs) == 2
        assert set(run.outputs[0]) == set(run.outputs[1])
        for path in run.outputs[0]:
            assert (run.outputs[0][path].canonical_bytes()
                    == run.outputs[1][path].canonical_bytes())


# ---------------------------------------------------------------------------
# PlanCache
# ---------------------------------------------------------------------------


def _key(tag: str, version: int = 0) -> CacheKey:
    return CacheKey(fingerprint=tag * 8, config="cfg",
                    stats_versions=(("test.log", version),))


class TestPlanCache:
    def test_hit_miss_counters(self):
        cache = PlanCache(capacity=4)
        assert cache.get(_key("aaaaaaaa")) is None
        cache.put(_key("aaaaaaaa"), "plan", ("test.log",))
        assert cache.get(_key("aaaaaaaa")).result == "plan"
        assert cache.stats.lookups == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        cache.stats.check_consistent(len(cache))

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put(_key("aaaaaaaa"), 1, ())
        cache.put(_key("bbbbbbbb"), 2, ())
        cache.get(_key("aaaaaaaa"))  # refresh a; b is now LRU
        cache.put(_key("cccccccc"), 3, ())
        assert _key("aaaaaaaa") in cache
        assert _key("bbbbbbbb") not in cache
        assert cache.stats.evictions == 1
        cache.stats.check_consistent(len(cache))

    def test_version_in_key_separates_entries(self):
        cache = PlanCache(capacity=4)
        cache.put(_key("aaaaaaaa", version=0), "old", ("test.log",))
        assert cache.get(_key("aaaaaaaa", version=1)) is None

    def test_invalidate_only_dependent_entries(self):
        cache = PlanCache(capacity=4)
        cache.put(_key("aaaaaaaa"), 1, ("test.log",))
        cache.put(_key("bbbbbbbb"), 2, ("test2.log",))
        assert cache.invalidate_path("test.log") == 1
        assert _key("aaaaaaaa") not in cache
        assert _key("bbbbbbbb") in cache
        cache.stats.check_consistent(len(cache))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_events_published(self):
        bus = EventBus()
        cache = PlanCache(capacity=1, bus=bus)
        cache.get(_key("aaaaaaaa"))
        cache.put(_key("aaaaaaaa"), 1, ())
        cache.put(_key("bbbbbbbb"), 2, ())
        ops = [e.get("op") for e in bus.of_kind("service.cache")]
        assert ops == ["miss", "insert", "insert", "evict"]


# ---------------------------------------------------------------------------
# QueryService semantics
# ---------------------------------------------------------------------------


class TestQueryService:
    def test_second_submit_hits(self, service):
        cold = service.submit(S1)
        warm = service.submit(S1)
        assert not cold.cache_hit
        assert warm.cache_hit
        assert cold.fingerprint == warm.fingerprint
        assert warm.result is cold.result
        assert service.stats.optimizations == 1

    def test_renamed_script_is_same_entry(self, service):
        service.submit(SHARED_CORE)
        assert service.submit(SHARED_CORE_RENAMED).cache_hit

    def test_cse_switch_is_part_of_the_key(self, service):
        service.submit(S1, exploit_cse=True)
        cold = service.submit(S1, exploit_cse=False)
        assert not cold.cache_hit
        assert service.stats.optimizations == 2

    def test_statistics_update_invalidates_dependents(self, service):
        service.submit(S1)                 # reads test.log
        service.submit(PAPER_SCRIPTS["S3"])  # reads test.log + test2.log
        assert service.update_statistics("test2.log", rows=9999) == 1
        assert service.submit(S1).cache_hit
        assert not service.submit(PAPER_SCRIPTS["S3"]).cache_hit

    def test_statistics_update_changes_the_plan_inputs(self, service):
        service.submit(S1)
        service.update_statistics("test.log", rows=10)
        cold = service.submit(S1)
        assert not cold.cache_hit
        assert service.catalog.lookup("test.log").rows == 10
        # file_id survives the update, so fingerprints stay stable and
        # the re-optimized entry lands under the bumped version.
        assert cold.key.stats_versions == (("test.log", 1),)
        assert service.submit(S1).cache_hit

    def test_batch_submission_is_cached_too(self, service):
        cold = service.submit_many([S1, S2])
        warm = service.submit_many([S1, S2])
        assert not cold.cache_hit and warm.cache_hit
        assert service.stats.batch_submits == 2
        # A different script order is a different merged DAG.
        assert not service.submit_many([S2, S1]).cache_hit

    def test_counter_identities(self, service):
        for text in (S1, S1, S2, S1, S2):
            service.submit(text)
        snap = service.stats_snapshot()
        assert snap["submits"] == 5
        assert snap["cache_lookups"] == 5
        assert snap["cache_hits"] + snap["cache_misses"] == 5
        assert snap["optimizations"] == snap["cache_misses"] == 2
        service.cache.stats.check_consistent(len(service.cache))

    def test_submit_events(self, service):
        service.submit(S1)
        service.submit(S1)
        ops = [e.get("op") for e in service.bus.of_kind("service.submit")]
        assert ops == ["optimize", "hit"]

    def test_eviction_causes_reoptimization(self, abcd_catalog,
                                            small_config):
        service = QueryService(abcd_catalog, small_config,
                               cache_capacity=1)
        service.submit(S1)
        service.submit(S2)   # evicts S1
        assert not service.submit(S1).cache_hit
        assert service.stats.optimizations == 3

    def test_cache_hits_are_verified(self, service):
        """The autouse verify default also covers the cache-hit path.

        Corrupting the *cached* plan in place must surface as a
        verification error on the next hit — exactly what a stale or
        miskeyed entry would look like.
        """
        cold = service.submit(S1)
        for node in cold.result.plan.iter_nodes():
            if isinstance(node.op, (PhysStreamAgg, PhysHashAgg)):
                node.rows = math.nan
                break
        with pytest.raises(PlanVerificationError):
            service.submit(S1)
        # An explicit opt-out skips the check, like optimize_plan's.
        assert service.submit(S1, verify=False).cache_hit

    def test_failed_optimization_is_not_cached(self, service,
                                               monkeypatch):
        import repro.service.core as core

        calls = {"n": 0}
        real = core.optimize_plan

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected optimizer failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(core, "optimize_plan", flaky)
        with pytest.raises(RuntimeError):
            service.submit(S1)
        assert len(service.cache) == 0
        assert not service._inflight
        ok = service.submit(S1)
        assert not ok.cache_hit
        assert service.submit(S1).cache_hit
