"""Differential tests: the feedback loop never changes query results.

The contract of learned statistics is that they may change *plans*, not
*answers*.  Every regression-corpus script, the paper scripts S1–S4,
the large generated scripts LS1/LS2 and the skewed feedback scenarios
are executed across the full matrix of

    feedback on/off x workers 1/4 x row/columnar backend

with feedback-enabled services executing twice (the second round serves
whatever plan the gate converged to).  Every run's outputs must be
byte-identical under :meth:`Dataset.canonical_bytes` to every other
run's — one shared expectation per script, not pairwise spot checks.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.scope.statistics import catalog_from_json
from repro.service import QueryService
from repro.stats.feedback import FeedbackConfig
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.large_scripts import make_large_script
from repro.workloads.paper_scripts import PAPER_SCRIPTS
from repro.workloads.skew import SKEW_SCENARIOS

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS_SCRIPTS = sorted(CORPUS_DIR.glob("*.scope"))
MACHINES = 4
WORKER_COUNTS = (1, 4)
BACKENDS = ("row", "columnar")


def _config() -> OptimizerConfig:
    return OptimizerConfig(cost_params=CostParams(machines=MACHINES))


@pytest.fixture(scope="module")
def corpus_catalog():
    return catalog_from_json((CORPUS_DIR / "catalog.json").read_text())


def assert_feedback_invariant(text: str, catalog, files) -> None:
    """Outputs are byte-identical across the whole execution matrix."""
    expected = None

    def check(run, label: str) -> None:
        nonlocal expected
        got = {
            path: data.canonical_bytes()
            for path, data in run.outputs.items()
        }
        if expected is None:
            expected = got
            return
        assert got.keys() == expected.keys(), label
        for path in expected:
            assert got[path] == expected[path], (
                f"{label}: output {path} diverged"
            )

    for backend in BACKENDS:
        for workers in WORKER_COUNTS:
            plain = QueryService(catalog, _config())
            check(
                plain.execute(text, workers=workers, files=files,
                              backend=backend),
                f"feedback=off workers={workers} backend={backend}",
            )
            fed = QueryService(
                catalog, _config(),
                feedback=FeedbackConfig(min_observations=1),
            )
            for round_no in range(2):
                check(
                    fed.execute(text, workers=workers, files=files,
                                backend=backend),
                    f"feedback=on round={round_no} workers={workers} "
                    f"backend={backend}",
                )


@pytest.mark.parametrize(
    "script_path", CORPUS_SCRIPTS, ids=[p.stem for p in CORPUS_SCRIPTS]
)
def test_corpus_outputs_invariant_under_feedback(script_path,
                                                 corpus_catalog):
    files = generate_for_catalog(corpus_catalog, seed=3,
                                 rows_override=600)
    assert_feedback_invariant(script_path.read_text(), corpus_catalog,
                              files)


@pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
def test_paper_outputs_invariant_under_feedback(name, abcd_catalog):
    files = generate_for_catalog(abcd_catalog, seed=7,
                                 rows_override=600)
    assert_feedback_invariant(PAPER_SCRIPTS[name], abcd_catalog, files)


@pytest.mark.parametrize("name", ["LS1", "LS2"])
def test_large_script_outputs_invariant_under_feedback(name):
    text, catalog, _spec = make_large_script(name)
    files = generate_for_catalog(catalog, seed=5, rows_override=120)
    assert_feedback_invariant(text, catalog, files)


@pytest.mark.parametrize("name", sorted(SKEW_SCENARIOS))
def test_skew_scenario_outputs_invariant_under_feedback(name):
    """The scenarios where feedback *does* rewrite the plan."""
    scenario = SKEW_SCENARIOS[name]
    assert_feedback_invariant(scenario.script, scenario.build_catalog(),
                              scenario.generate_files())
