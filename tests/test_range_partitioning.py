"""Tests for range partitioning and parallel sorted outputs."""

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, PlanExecutor
from repro.exec.datasets import Dataset
from repro.naive import NaiveEvaluator
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.columns import Column, ColumnType, Schema
from repro.plan.physical import (
    PhysicalPlan,
    PhysMerge,
    PhysOutput,
    PhysRangeRepartition,
    PhysSort,
)
from repro.plan.properties import (
    Partitioning,
    PartitioningReq,
    PartitionKind,
    PhysicalProps,
    SortOrder,
)
from repro.scope.catalog import Catalog
from repro.scope.compiler import compile_script
from repro.workloads.datagen import generate_for_catalog

SORTED_SCRIPT = """
R0 = EXTRACT A,B,D FROM "big.log" USING LogExtractor;
S = SELECT A,B,Sum(D) AS T FROM R0 GROUP BY A,B;
OUTPUT S TO "sorted.out" ORDER BY A, B;
"""


def big_catalog(rows=3_000, ndv=None) -> Catalog:
    catalog = Catalog()
    catalog.register_file(
        "big.log",
        [(c, ColumnType.INT) for c in ("A", "B", "D")],
        rows=rows,
        ndv=dict(ndv or {"A": 12, "B": 9, "D": 60}),
    )
    return catalog


class TestPropertyAlgebra:
    def test_ranged_partitioning_construction(self):
        part = Partitioning.ranged(("A", "B"))
        assert part.kind is PartitionKind.RANGE
        assert part.order == ("A", "B")
        assert part.columns == frozenset({"A", "B"})

    def test_ranged_requires_order(self):
        with pytest.raises(ValueError):
            Partitioning(PartitionKind.RANGE)

    def test_range_satisfies_grouping_requirement(self):
        """Range layouts co-locate equal keys, so they satisfy the same
        [lo, hi] requirements hash layouts do."""
        req = PartitioningReq.grouping({"A", "B", "C"})
        assert req.is_satisfied_by(Partitioning.ranged(("A",)))
        assert req.is_satisfied_by(Partitioning.ranged(("B", "A")))
        assert not req.is_satisfied_by(Partitioning.ranged(("D",)))

    def test_range_sorted_requirement_prefix_rule(self):
        req = PartitioningReq.range_sorted(("A", "B"))
        assert req.is_satisfied_by(Partitioning.ranged(("A",)))
        assert req.is_satisfied_by(Partitioning.ranged(("A", "B")))
        assert not req.is_satisfied_by(Partitioning.ranged(("B",)))
        assert not req.is_satisfied_by(Partitioning.hashed({"A"}))
        assert req.is_satisfied_by(Partitioning.serial())

    def test_range_sorted_concrete_partitionings(self):
        req = PartitioningReq.range_sorted(("A", "B"))
        options = {p.order for p in req.concrete_partitionings()}
        assert options == {("A",), ("A", "B")}


class TestRuntime:
    def make_data(self, cluster_rows):
        schema = Schema([Column("A"), Column("B")])
        cluster = Cluster(machines=4)
        cluster.load_file("in", cluster_rows)
        executor = PlanExecutor(cluster)
        scan = PhysicalPlan(
            op=__import__(
                "repro.plan.physical", fromlist=["PhysExtract"]
            ).PhysExtract(1, "in", "E", schema),
            children=(),
            schema=schema,
            props=PhysicalProps(),
        )
        return executor, scan, schema

    def test_range_scatter_is_ordered_and_colocated(self):
        rows = [{"A": i % 10, "B": i} for i in range(100)]
        executor, scan, schema = self.make_data(rows)
        plan = PhysicalPlan(
            op=PhysRangeRepartition(("A",)),
            children=(scan,),
            schema=schema,
            props=PhysicalProps(Partitioning.ranged(("A",))),
        )
        data = executor._run(plan)
        assert data.validate_layout() is None
        assert data.total_rows() == 100

    def test_range_merge_sort_preserves_order(self):
        rows = [{"A": (i * 7) % 20, "B": i} for i in range(100)]
        executor, scan, schema = self.make_data(rows)
        sorted_scan = PhysicalPlan(
            op=PhysSort(SortOrder.of("A", "B")),
            children=(scan,),
            schema=schema,
            props=PhysicalProps(Partitioning.random(), SortOrder.of("A", "B")),
        )
        plan = PhysicalPlan(
            op=PhysRangeRepartition(("A",), merge_sort=SortOrder.of("A", "B")),
            children=(sorted_scan,),
            schema=schema,
            props=PhysicalProps(
                Partitioning.ranged(("A",)), SortOrder.of("A", "B")
            ),
        )
        data = executor._run(plan)
        assert data.validate_layout() is None
        stream = [r for part in data.partitions for r in part]
        keys = [(r["A"], r["B"]) for r in stream]
        assert keys == sorted(keys)

    def test_validation_detects_broken_range_claim(self):
        schema = Schema([Column("A")])
        data = Dataset(
            schema,
            [[{"A": 5}], [{"A": 1}]],  # descending ranges
            PhysicalProps(Partitioning.ranged(("A",))),
        )
        assert "range" in data.validate_layout()


class TestEndToEnd:
    def run(self, catalog, machines=4):
        config = OptimizerConfig(cost_params=CostParams(machines=machines))
        files = generate_for_catalog(catalog, seed=9)
        result = optimize_script(SORTED_SCRIPT, catalog, config)
        cluster = Cluster(machines=machines)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        expected = NaiveEvaluator(files).run(
            compile_script(SORTED_SCRIPT, catalog)
        )
        return result, outputs, expected

    def test_parallel_sorted_output_correct(self):
        result, outputs, expected = self.run(big_catalog())
        data = outputs["sorted.out"]
        assert data.sorted_rows() == expected["sorted.out"]
        stream = [r for part in data.partitions for r in part]
        keys = [(r["A"], r["B"]) for r in stream]
        assert keys == sorted(keys)

    def test_large_output_prefers_parallel_range_writers(self):
        """With a big sorted result the serial gather-merge loses to the
        range-partitioned parallel writers."""
        catalog = big_catalog(rows=50_000_000,
                              ndv={"A": 500, "B": 400, "D": 100_000})
        config = OptimizerConfig(cost_params=CostParams(machines=25))
        result = optimize_script(SORTED_SCRIPT, catalog, config)
        assert result.plan.find_all(PhysRangeRepartition)
        assert not result.plan.find_all(PhysMerge)

    def test_small_output_may_gather(self):
        """A tiny sorted result is fine to gather onto one writer; both
        plans are in the space and cost decides."""
        catalog = big_catalog(rows=2_000, ndv={"A": 3, "B": 2, "D": 50})
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        result = optimize_script(SORTED_SCRIPT, catalog, config)
        output = next(
            n
            for n in result.plan.iter_nodes()
            if isinstance(n.op, PhysOutput) and n.op.sort_columns
        )
        kind = output.children[0].props.partitioning.kind
        assert kind in (PartitionKind.SERIAL, PartitionKind.RANGE)
