"""Golden regression corpus for the cardinality-feedback loop.

Each skewed-statistics scenario of :mod:`repro.workloads.skew` is
executed twice through a feedback-enabled
:class:`~repro.service.QueryService`; the plan of the first run (seed
statistics) and the plan served after the feedback cycle are rendered
with :func:`repro.optimizer.explain.explain_normalized` and compared
byte-for-byte against the snapshots in ``tests/golden/``.  A diff means
the feedback loop changed which plan a skewed scenario converges to —
sometimes intentional, never silent.  Refresh with::

    pytest tests/test_feedback_golden.py --update-golden

The corpus also locks the *decisions*: the headline scenario must adopt
a measurably cheaper plan, and the refusal scenarios must record their
refusals and leave the plan untouched.  The scenario scripts are
mirrored as ``tests/corpus/feedback/<name>.scope``; a sync test keeps
the mirrors byte-identical to the module definitions.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.optimizer.explain import explain_normalized
from repro.service import QueryService
from repro.stats.feedback import FeedbackConfig
from repro.workloads.skew import SKEW_SCENARIOS

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
FEEDBACK_CORPUS = pathlib.Path(__file__).parent / "corpus" / "feedback"
MACHINES = 4
ROUNDS = 2


def _config() -> OptimizerConfig:
    return OptimizerConfig(cost_params=CostParams(machines=MACHINES))


def run_scenario(name: str):
    """Execute a scenario for ROUNDS rounds; returns (runs, service)."""
    scenario = SKEW_SCENARIOS[name]
    service = QueryService(
        scenario.build_catalog(), _config(),
        feedback=FeedbackConfig(**scenario.feedback),
    )
    files = scenario.generate_files()
    runs = [
        service.execute(scenario.script, workers=2, files=files)
        for _ in range(ROUNDS)
    ]
    return runs, service


def _check_golden(name: str, rendered: str, update_golden: bool) -> None:
    golden_path = GOLDEN_DIR / f"{name}.txt"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(rendered)
        return
    assert golden_path.exists(), (
        f"missing snapshot {golden_path}; run with --update-golden"
    )
    expected = golden_path.read_text()
    assert rendered == expected, (
        f"feedback plan for {name} changed; if intentional, refresh "
        f"with `pytest tests/test_feedback_golden.py --update-golden`\n"
        f"--- expected ---\n{expected}\n--- got ---\n{rendered}"
    )


@pytest.mark.parametrize("name", sorted(SKEW_SCENARIOS))
def test_golden_plans_before_and_after_feedback(name, update_golden):
    runs, service = run_scenario(name)
    before = explain_normalized(runs[0].submit.result.plan)
    after = explain_normalized(runs[-1].submit.result.plan)
    scenario = SKEW_SCENARIOS[name]
    if scenario.expect == "adopt":
        assert after != before, (
            f"{name}: feedback was expected to change the plan"
        )
    else:
        assert after == before, (
            f"{name}: the gate refused, so the plan must not change"
        )
    _check_golden(f"feedback_{name}_before", before, update_golden)
    _check_golden(f"feedback_{name}_after", after, update_golden)
    if update_golden:
        pytest.skip("updated feedback golden snapshots")


@pytest.mark.parametrize("name", sorted(SKEW_SCENARIOS))
def test_expected_gate_decision_is_recorded(name):
    runs, service = run_scenario(name)
    actions = {card.action for card in service.feedback.decisions}
    assert SKEW_SCENARIOS[name].expect in actions, (
        f"{name}: expected a {SKEW_SCENARIOS[name].expect!r} decision, "
        f"got {sorted(actions)}"
    )
    # Whatever the decision, results never change.
    first, last = runs[0], runs[-1]
    assert set(first.outputs) == set(last.outputs)
    for path in first.outputs:
        assert (first.outputs[path].canonical_bytes()
                == last.outputs[path].canonical_bytes())


def test_headline_scenario_reduces_rows_processed():
    """The acceptance bar: >= 30% fewer rows processed after feedback."""
    runs, service = run_scenario("filter_selectivity_skew")
    before = runs[0].metrics.rows_processed()
    after = runs[-1].metrics.rows_processed()
    assert after <= 0.7 * before, (
        f"rows processed only went {before} -> {after}"
    )
    assert runs[-1].submit.cache_hit, (
        "the corrected plan must serve from the cache, not re-optimize"
    )


@pytest.mark.parametrize("name", sorted(SKEW_SCENARIOS))
def test_corpus_mirror_matches_module(name):
    """The .scope mirrors under tests/corpus/feedback stay in sync."""
    mirror = FEEDBACK_CORPUS / f"{name}.scope"
    assert mirror.exists(), f"missing corpus mirror {mirror}"
    body = "".join(
        line for line in mirror.read_text().splitlines(keepends=True)
        if not line.startswith("//")
    )
    assert body == SKEW_SCENARIOS[name].script, (
        f"{mirror} drifted from repro.workloads.skew"
    )
