"""Unit tests for the learned-statistics feedback loop (``repro.stats``).

Covers each layer on its own terms: canonical fragment fingerprints,
the per-fragment measured cardinalities recorded by both executors, the
capture mapping from measurements back to fingerprints, the versioned
:class:`~repro.stats.store.FeedbackStore`, the re-pricing of incumbent
plans under corrections, and the two decision gates of the
:class:`~repro.stats.feedback.FeedbackController` wired into a
:class:`~repro.service.QueryService`.  The differential, property-based
concurrency and golden layers live in their own modules.
"""

from __future__ import annotations

import math
import pathlib

import pytest

from repro.api import execute_script, optimize_script
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.optimizer.explain import explain_normalized
from repro.scope.statistics import catalog_from_json
from repro.service import QueryService
from repro.stats import (
    CorrectionSet,
    FeedbackStore,
    FragmentObservation,
    fragment_fingerprints,
)
from repro.stats.capture import capture_observations, group_paths
from repro.stats.feedback import FeedbackConfig, FeedbackController
from repro.stats.recost import recost_plan
from repro.stats.store import Correction
from repro.workloads.paper_scripts import PAPER_SCRIPTS
from repro.workloads.skew import SKEW_SCENARIOS

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
MACHINES = 4


def _config() -> OptimizerConfig:
    return OptimizerConfig(cost_params=CostParams(machines=MACHINES))


@pytest.fixture(scope="module")
def corpus_catalog():
    return catalog_from_json((CORPUS_DIR / "catalog.json").read_text())


def _scenario_service(name: str) -> tuple:
    scenario = SKEW_SCENARIOS[name]
    service = QueryService(
        scenario.build_catalog(), _config(),
        feedback=FeedbackConfig(**scenario.feedback),
    )
    return scenario, service, scenario.generate_files()


# ---------------------------------------------------------------------------
# Fragment fingerprints
# ---------------------------------------------------------------------------


class TestFingerprints:
    def test_every_reachable_group_is_fingerprinted(self, abcd_catalog):
        result = optimize_script(PAPER_SCRIPTS["S1"], abcd_catalog,
                                 _config())
        prints = fragment_fingerprints(result.details.plan_memo)
        assert prints, "no fragment fingerprints stamped on the memo"
        for fingerprint in prints.values():
            assert fingerprint is None or len(fingerprint) == 64

    def test_fingerprints_deterministic_across_optimizations(
            self, abcd_catalog):
        one = optimize_script(PAPER_SCRIPTS["S1"], abcd_catalog, _config())
        two = optimize_script(PAPER_SCRIPTS["S1"], abcd_catalog, _config())
        assert (sorted(fragment_fingerprints(one.details.plan_memo)
                       .values(), key=str)
                == sorted(fragment_fingerprints(two.details.plan_memo)
                          .values(), key=str))

    def test_different_scripts_share_common_fragments_only(
            self, abcd_catalog):
        s1 = set(fragment_fingerprints(
            optimize_script(PAPER_SCRIPTS["S1"], abcd_catalog,
                            _config()).details.plan_memo).values())
        s3 = set(fragment_fingerprints(
            optimize_script(PAPER_SCRIPTS["S3"], abcd_catalog,
                            _config()).details.plan_memo).values())
        # Both read test.log, so the extract fragment is shared; the
        # aggregates differ, so the sets must not be equal.
        assert s1 & s3
        assert s1 != s3


# ---------------------------------------------------------------------------
# Per-fragment measured cardinalities (executor layer)
# ---------------------------------------------------------------------------


class TestFragmentRows:
    @pytest.mark.parametrize("backend", ["row", "columnar"])
    def test_sequential_matches_scheduler(self, abcd_catalog, backend):
        scenario = SKEW_SCENARIOS["filter_selectivity_skew"]
        catalog = scenario.build_catalog()
        files = scenario.generate_files()
        runs = {
            workers: execute_script(
                scenario.script, catalog, _config(), workers=workers,
                files=files, backend=backend,
            )
            for workers in (0, 1, 4)
        }
        base = runs[0].metrics.fragment_rows
        assert base, "sequential executor recorded no fragment rows"
        for workers, run in runs.items():
            assert run.metrics.fragment_rows == base, (
                f"fragment rows differ at workers={workers}"
            )

    def test_duplicate_execution_counted_once(self, abcd_catalog):
        # The conventional plan of the headline scenario extracts the
        # input twice; the recorded fragment cardinality must still be
        # the file's row count, not double it.
        scenario = SKEW_SCENARIOS["filter_selectivity_skew"]
        catalog = scenario.build_catalog()
        run = execute_script(scenario.script, catalog, _config(),
                             workers=2, files=scenario.generate_files())
        assert run.metrics.rows_extracted == 8_000
        assert 4_000 in run.metrics.fragment_rows.values()
        assert 8_000 not in run.metrics.fragment_rows.values()

    def test_interior_fragments_are_recorded(self, abcd_catalog):
        # The decisive misestimate sits *inside* a vertex (the filter
        # under the local pre-aggregation); boundary-only capture used
        # to miss it entirely.
        scenario = SKEW_SCENARIOS["filter_selectivity_skew"]
        catalog = scenario.build_catalog()
        run = execute_script(scenario.script, catalog, _config(),
                             workers=2, files=scenario.generate_files())
        assert 4 in run.metrics.fragment_rows.values(), (
            "the 4-row filter output was not recorded"
        )


# ---------------------------------------------------------------------------
# Capture: measurements -> fingerprints
# ---------------------------------------------------------------------------


class TestCapture:
    def test_capture_pairs_estimates_with_measurements(self):
        scenario, service, files = _scenario_service(
            "filter_selectivity_skew")
        run = service.execute(scenario.script, workers=2, files=files)
        memo = run.submit.result.details.plan_memo
        observations = capture_observations(memo, run.stage_graph,
                                            run.metrics)
        assert observations
        by_actual = {o.actual: o for o in observations}
        filter_obs = by_actual[4]
        assert filter_obs.estimated == pytest.approx(2_000.0)
        assert filter_obs.paths == ("skew.log",)

    def test_capture_works_sequentially(self):
        scenario, service, files = _scenario_service(
            "filter_selectivity_skew")
        run = service.execute(scenario.script, workers=0, files=files)
        memo = run.submit.result.details.plan_memo
        observations = capture_observations(memo, None, run.metrics)
        assert any(o.actual == 4 for o in observations)

    def test_capture_deduplicates_by_fingerprint(self):
        scenario, service, files = _scenario_service(
            "filter_selectivity_skew")
        run = service.execute(scenario.script, workers=2, files=files)
        memo = run.submit.result.details.plan_memo
        observations = capture_observations(memo, run.stage_graph,
                                            run.metrics)
        prints = [o.fingerprint for o in observations]
        assert len(prints) == len(set(prints))

    def test_missing_estimate_never_observed(self):
        # Sequence groups carry a zero-row estimate (estimate missing):
        # they must not appear as observations at all.
        scenario, service, files = _scenario_service(
            "filter_selectivity_skew")
        run = service.execute(scenario.script, workers=2, files=files)
        memo = run.submit.result.details.plan_memo
        for obs in capture_observations(memo, run.stage_graph,
                                        run.metrics):
            assert obs.estimated > 0

    def test_group_paths_walks_the_memo(self):
        scenario, service, files = _scenario_service(
            "filter_selectivity_skew")
        run = service.execute(scenario.script, workers=2, files=files)
        memo = run.submit.result.details.plan_memo
        root_paths = group_paths(memo, memo.root)
        assert root_paths == ("skew.log",)


# ---------------------------------------------------------------------------
# FeedbackStore
# ---------------------------------------------------------------------------


def _obs(fp: str, estimated: float, actual: int,
         paths=("f.log",)) -> FragmentObservation:
    return FragmentObservation(fingerprint=fp, estimated=estimated,
                               actual=actual, paths=paths)


class TestStore:
    def test_record_accumulates_running_mean(self):
        store = FeedbackStore()
        store.record([_obs("x" * 64, 100.0, 10)])
        store.record([_obs("x" * 64, 100.0, 20)])
        entry = store.fragment("x" * 64)
        assert entry.observations == 2
        assert entry.mean_actual == pytest.approx(15.0)
        assert entry.current_qerror == pytest.approx(100.0 / 15.0)

    def test_candidates_respect_threshold(self):
        store = FeedbackStore()
        store.record([_obs("a" * 64, 100.0, 99),
                      _obs("b" * 64, 100.0, 10)])
        names = [c.fingerprint for c in store.candidates(2.0)]
        assert names == ["b" * 64]

    def test_publish_bumps_version_and_activates(self):
        store = FeedbackStore()
        store.record([_obs("b" * 64, 100.0, 10)])
        before = store.active().version
        active = store.publish(store.candidates(2.0))
        assert active.version == before + 1
        assert active.rows_for("b" * 64) == pytest.approx(10.0)

    def test_zero_row_corrections_floor_at_one(self):
        store = FeedbackStore()
        store.record([_obs("z" * 64, 100.0, 0)])
        active = store.publish(store.candidates(2.0))
        assert active.rows_for("z" * 64) == pytest.approx(1.0)

    def test_converged_fragment_stops_candidating(self):
        # A zero-row measurement keeps its raw q-error infinite forever;
        # once corrected (to the 1-row floor) it must not re-candidate.
        store = FeedbackStore()
        store.record([_obs("z" * 64, 100.0, 1)])
        store.publish(store.candidates(2.0))
        assert store.candidates(2.0) == []

    def test_correction_set_is_immutable_snapshot(self):
        one = CorrectionSet(1, {"f": Correction("f", 5.0, 1)})
        two = one.merged([Correction("g", 7.0, 1)], 2)
        assert "g" not in one and "g" in two
        assert one.version == 1 and two.version == 2

    def test_paths_union_across_observations(self):
        store = FeedbackStore()
        store.record([_obs("p" * 64, 100.0, 1, paths=("a.log",))])
        store.record([_obs("p" * 64, 100.0, 1, paths=("b.log",))])
        assert store.fragment("p" * 64).paths == ("a.log", "b.log")


# ---------------------------------------------------------------------------
# Recost: incumbent re-priced under corrections
# ---------------------------------------------------------------------------


class TestRecost:
    @pytest.mark.parametrize("exploit_cse", [True, False])
    def test_no_corrections_reproduces_engine_cost(self, corpus_catalog,
                                                   exploit_cse):
        for path in sorted(CORPUS_DIR.glob("*.scope")):
            result = optimize_script(path.read_text(), corpus_catalog,
                                     _config(), exploit_cse=exploit_cse)
            _, cost = recost_plan(result.plan, result.details.plan_memo,
                                  corpus_catalog, _config())
            assert cost == pytest.approx(result.cost, rel=1e-9), path.stem

    def test_corrections_change_the_price(self):
        scenario = SKEW_SCENARIOS["filter_selectivity_skew"]
        catalog = scenario.build_catalog()
        result = optimize_script(scenario.script, catalog, _config())
        memo = result.details.plan_memo
        _, base = recost_plan(result.plan, memo, catalog, _config())
        prints = fragment_fingerprints(memo)
        # Correct every fragment estimated at 2,000 rows down to 4.
        corrections = CorrectionSet(1, {
            fp: Correction(fp, 4.0, 1)
            for gid, fp in prints.items()
            if fp is not None and memo.group(gid).stats.rows == 2_000.0
        })
        assert corrections, "no 2,000-row fragment found to correct"
        _, corrected = recost_plan(result.plan, memo, catalog, _config(),
                                   corrections=corrections)
        assert corrected < base


# ---------------------------------------------------------------------------
# Controller gates
# ---------------------------------------------------------------------------


class TestGates:
    def test_gate_a_refuses_below_min_observations(self):
        scenario, service, files = _scenario_service(
            "gate_refusal_low_observations")
        first = service.execute(scenario.script, workers=2, files=files)
        second = service.execute(scenario.script, workers=2, files=files)
        actions = {d.action for d in service.feedback.decisions}
        assert actions == {"skip_low_observations"}
        assert len(service.feedback.store.active()) == 0
        assert explain_normalized(second.submit.result.plan) == \
            explain_normalized(first.submit.result.plan)

    def test_gate_a_admits_once_observations_accumulate(self):
        scenario, service, files = _scenario_service(
            "gate_refusal_low_observations")
        for _ in range(3):
            service.execute(scenario.script, workers=2, files=files)
        actions = [d.action for d in service.feedback.decisions]
        assert "publish" in actions and "adopt" in actions

    def test_gate_b_adopts_cheaper_plan(self):
        scenario, service, files = _scenario_service(
            "filter_selectivity_skew")
        first = service.execute(scenario.script, workers=2, files=files)
        second = service.execute(scenario.script, workers=2, files=files)
        adoptions = [d for d in service.feedback.decisions
                     if d.action == "adopt"]
        assert len(adoptions) == 1
        assert adoptions[0].new_cost < adoptions[0].old_cost
        assert second.submit.cache_hit, (
            "the adopted plan must serve from the cache"
        )
        assert (second.metrics.rows_extracted
                < first.metrics.rows_extracted)

    def test_gate_b_keeps_incumbent_without_a_better_plan(self):
        scenario, service, files = _scenario_service(
            "single_consumer_keep")
        first = service.execute(scenario.script, workers=2, files=files)
        second = service.execute(scenario.script, workers=2, files=files)
        keeps = [d for d in service.feedback.decisions
                 if d.action == "keep"]
        assert keeps and all(d.new_cost >= d.old_cost for d in keeps)
        assert explain_normalized(second.submit.result.plan) == \
            explain_normalized(first.submit.result.plan)

    def test_adoption_never_bumps_optimizations_identity(self):
        scenario, service, files = _scenario_service(
            "filter_selectivity_skew")
        service.execute(scenario.script, workers=2, files=files)
        service.execute(scenario.script, workers=2, files=files)
        snap = service.stats_snapshot()
        assert snap["submits"] == (snap["cache_hits"]
                                   + snap["optimizations"]
                                   + snap["coalesced"])
        assert snap["cache_lookups"] == (snap["cache_hits"]
                                         + snap["cache_misses"])
        service.cache.stats.check_consistent(len(service.cache))

    def test_decision_log_round_trips_as_json(self, tmp_path):
        scenario, service, files = _scenario_service(
            "filter_selectivity_skew")
        service.execute(scenario.script, workers=2, files=files)
        log = tmp_path / "decisions.jsonl"
        count = service.feedback.dump_decisions(str(log))
        import json
        lines = [json.loads(line) for line in
                 log.read_text().splitlines()]
        assert len(lines) == count > 0
        assert all("action" in card and "detection" in card
                   for card in lines)

    def test_manual_stepping_without_auto(self):
        scenario = SKEW_SCENARIOS["filter_selectivity_skew"]
        service = QueryService(
            scenario.build_catalog(), _config(),
            feedback=FeedbackConfig(auto=False, min_observations=1),
        )
        files = scenario.generate_files()
        run = service.execute(scenario.script, workers=2, files=files)
        assert service.feedback.decisions == []
        service.feedback.observe_run(run)
        cards = service.feedback.step()
        assert any(card.action == "adopt" for card in cards)

    def test_events_published_on_the_service_bus(self):
        scenario, service, files = _scenario_service(
            "filter_selectivity_skew")
        seen = []
        service.bus.subscribe(
            lambda e: seen.append(e.kind)
            if e.kind.startswith("stats.feedback") else None)
        service.execute(scenario.script, workers=2, files=files)
        assert "stats.feedback.capture" in seen
        assert "stats.feedback.decision" in seen
        assert "stats.feedback.publish" in seen


# ---------------------------------------------------------------------------
# q-error monotonicity on the real loop
# ---------------------------------------------------------------------------


def test_feedback_reduces_fragment_qerror_end_to_end():
    scenario, service, files = _scenario_service(
        "filter_selectivity_skew")
    service.execute(scenario.script, workers=2, files=files)
    worst_before = max(
        entry.current_qerror for entry in service.feedback.store.fragments()
        if entry.current_qerror is not None
        and not math.isinf(entry.current_qerror)
    )
    service.execute(scenario.script, workers=2, files=files)
    worst_after = max(
        entry.current_qerror for entry in service.feedback.store.fragments()
        if entry.current_qerror is not None
        and not math.isinf(entry.current_qerror)
    )
    assert worst_before >= 500.0
    assert worst_after <= 2.0, (
        "corrected estimates must track the measurements"
    )
