"""The star-join workload corpus: datagen, execution, golden plans.

Every query in :data:`repro.workloads.starjoin.STARJOIN_QUERIES` gets a
golden plan snapshot under ``tests/golden/sql/`` (refresh with
``--update-golden``), an execution smoke check, and the datagen is
pinned deterministic.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.api import execute_script, optimize_script
from repro.optimizer.explain import explain_normalized
from repro.workloads.starjoin import (
    N_CUSTOMERS,
    N_DATES,
    N_ITEMS,
    N_STORES,
    SCOPE_EQUIVALENTS,
    STARJOIN_QUERIES,
    generate_starjoin_data,
    make_starjoin_catalog,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden" / "sql"


@pytest.fixture(scope="module")
def starjoin():
    return make_starjoin_catalog()


class TestDatagen:
    def test_deterministic(self):
        first = generate_starjoin_data(seed=3)
        second = generate_starjoin_data(seed=3)
        assert first == second

    def test_seed_changes_data(self):
        assert generate_starjoin_data(seed=0) != generate_starjoin_data(
            seed=1
        )

    def test_shape(self):
        data = generate_starjoin_data(n_sales=500)
        assert len(data["store_sales.log"]) == 500
        assert len(data["date_dim.log"]) == N_DATES
        assert len(data["customer.log"]) == N_CUSTOMERS
        assert len(data["item.log"]) == N_ITEMS
        assert len(data["store.log"]) == N_STORES

    def test_left_join_padding_exists(self):
        """Some fact rows must reference dates beyond the dimension so
        q10's LEFT JOIN actually pads."""
        data = generate_starjoin_data()
        assert any(
            row["DateSk"] >= N_DATES for row in data["store_sales.log"]
        )

    def test_catalog_has_histograms(self, starjoin):
        catalog, _ = starjoin
        (stats,) = [
            f for f in catalog.files() if f.path == "store_sales.log"
        ]
        assert stats.histograms and "Qty" in stats.histograms

    def test_scope_twins_are_a_subset(self):
        assert set(SCOPE_EQUIVALENTS) <= set(STARJOIN_QUERIES)


class TestExecution:
    @pytest.mark.parametrize("name", sorted(STARJOIN_QUERIES))
    def test_runs_and_produces_rows(self, starjoin, name):
        catalog, data = starjoin
        run = execute_script(STARJOIN_QUERIES[name], catalog, files=data)
        assert set(run.outputs) == {"q1.out"}
        assert run.outputs["q1.out"].total_rows() > 0

    def test_top_query_returns_exactly_limit(self, starjoin):
        catalog, data = starjoin
        run = execute_script(
            STARJOIN_QUERIES["q05_top_sales"], catalog, files=data
        )
        assert run.outputs["q1.out"].total_rows() == 10

    def test_left_join_keeps_all_weekday_groups(self, starjoin):
        catalog, data = starjoin
        run = execute_script(
            STARJOIN_QUERIES["q10_weekday_profile"], catalog, files=data
        )
        rows = run.outputs["q1.out"].all_rows()
        # Seven weekdays plus the NULL-padded group for late DateSks.
        assert len(rows) == 8


class TestGoldenPlans:
    @pytest.mark.parametrize("name", sorted(STARJOIN_QUERIES))
    def test_golden_plan(self, starjoin, name, update_golden):
        catalog, _ = starjoin
        rendered = explain_normalized(
            optimize_script(
                STARJOIN_QUERIES[name], catalog, dialect="sql"
            ).plan
        )
        golden_path = GOLDEN_DIR / f"starjoin_{name}.txt"
        if update_golden:
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
            golden_path.write_text(rendered)
            pytest.skip(f"updated {golden_path}")
        assert golden_path.exists(), (
            f"missing snapshot {golden_path}; run with --update-golden"
        )
        expected = golden_path.read_text()
        assert rendered == expected, (
            f"plan shape for {name} changed; if intentional, refresh "
            f"with `pytest tests/test_starjoin_workload.py "
            f"--update-golden`\n"
            f"--- expected ---\n{expected}\n--- got ---\n{rendered}"
        )

    def test_plans_are_deterministic(self, starjoin):
        catalog, _ = starjoin
        sql = STARJOIN_QUERIES["q09_big_spenders"]
        first = explain_normalized(
            optimize_script(sql, catalog, dialect="sql").plan
        )
        second = explain_normalized(
            optimize_script(sql, catalog, dialect="sql").plan
        )
        assert first == second
