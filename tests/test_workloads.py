"""Tests for the workloads package: data generation and the Figure 7
harness plumbing."""

import pytest

from repro.exec import Cluster
from repro.workloads.datagen import (
    generate_for_catalog,
    generate_rows,
    load_into_cluster,
)
from repro.workloads.figure7 import (
    BUDGETS,
    PAPER_RATIOS,
    Figure7Row,
    format_table,
)
from repro.workloads.paper_scripts import (
    PAPER_SCRIPTS,
    make_catalog,
    make_exec_catalog,
)


class TestDatagen:
    def test_deterministic_per_seed(self):
        a = generate_rows(["A", "B"], 50, {"A": 5, "B": 3}, seed=7)
        b = generate_rows(["A", "B"], 50, {"A": 5, "B": 3}, seed=7)
        c = generate_rows(["A", "B"], 50, {"A": 5, "B": 3}, seed=8)
        assert a == b
        assert a != c

    def test_values_within_declared_domain(self):
        rows = generate_rows(["A"], 200, {"A": 4}, seed=1)
        assert {row["A"] for row in rows} <= set(range(4))

    def test_generate_for_catalog_covers_all_files(self):
        catalog = make_exec_catalog(rows=100)
        files = generate_for_catalog(catalog, seed=0)
        assert set(files) == {"test.log", "test2.log"}
        assert all(len(rows) == 100 for rows in files.values())

    def test_rows_override_caps(self):
        catalog = make_catalog()  # 100M declared rows
        files = generate_for_catalog(catalog, seed=0, rows_override=50)
        assert all(len(rows) == 50 for rows in files.values())

    def test_different_files_get_different_data(self):
        catalog = make_exec_catalog(rows=100)
        files = generate_for_catalog(catalog, seed=0)
        assert files["test.log"] != files["test2.log"]

    def test_load_into_cluster(self):
        cluster = Cluster(machines=2)
        load_into_cluster(cluster, make_exec_catalog(rows=10))
        assert len(cluster.read_file("test.log")) == 10


class TestPaperScripts:
    def test_all_scripts_present(self):
        assert set(PAPER_SCRIPTS) == {"S1", "S2", "S3", "S4"}

    def test_s3_uses_second_log(self):
        assert "test2.log" in PAPER_SCRIPTS["S3"]
        assert "test2.log" not in PAPER_SCRIPTS["S1"]

    def test_catalog_registers_both_logs(self):
        catalog = make_catalog()
        assert "test.log" in catalog
        assert "test2.log" in catalog
        a = catalog.lookup("test.log")
        b = catalog.lookup("test2.log")
        assert a.file_id != b.file_id
        assert a.schema == b.schema


class TestFigure7Harness:
    def test_paper_ratios_cover_all_scripts(self):
        assert set(PAPER_RATIOS) == {"S1", "S2", "S3", "S4", "LS1", "LS2"}
        assert set(BUDGETS) == set(PAPER_RATIOS)

    def test_row_derived_fields(self):
        row = Figure7Row(
            script="S1",
            conventional_cost=100.0,
            cse_cost=62.0,
            paper_ratio=0.62,
            rounds=5,
            optimize_seconds=0.1,
        )
        assert row.ratio == pytest.approx(0.62)
        assert row.saving_pct == pytest.approx(38.0)

    def test_format_table(self):
        row = Figure7Row("S1", 100.0, 62.0, 0.62, 5, 0.1)
        table = format_table([row])
        assert "S1" in table
        assert "0.62" in table


class TestSkewedDatagen:
    def test_zipf_skew_shape(self):
        from collections import Counter

        from repro.workloads.datagen import generate_skewed_rows

        rows = generate_skewed_rows(["A"], 2000, {"A": 100}, seed=2)
        counts = Counter(row["A"] for row in rows)
        most_common = counts.most_common(1)[0]
        assert most_common[0] == 0  # rank-0 value dominates
        assert most_common[1] > 2000 / 100 * 5  # far above uniform share

    def test_values_within_domain(self):
        from repro.workloads.datagen import generate_skewed_rows

        rows = generate_skewed_rows(["A", "B"], 500, {"A": 10, "B": 3},
                                    seed=0)
        assert {row["A"] for row in rows} <= set(range(10))
        assert {row["B"] for row in rows} <= set(range(3))

    def test_deterministic(self):
        from repro.workloads.datagen import generate_skewed_rows

        a = generate_skewed_rows(["A"], 100, {"A": 10}, seed=3)
        b = generate_skewed_rows(["A"], 100, {"A": 10}, seed=3)
        assert a == b
