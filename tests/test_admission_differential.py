"""Acceptance differential: streaming admission == direct execution.

Every regression-corpus script, the paper scripts S1–S4, and the large
generated scripts LS1/LS2 submitted through the streaming admission
front-end (one window holding the whole corpus) must produce outputs
byte-identical (``canonical_bytes``) to a direct
``QueryService.execute`` of the same script — at workers 1 and 4 and
on both execution backends — while every vertex of the shared window
run launches exactly once.

All runs use a :class:`~repro.service.ManualClock`; the only thread is
the test's own, so the grouping is fully deterministic.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.scope.statistics import catalog_from_json
from repro.service import (
    AdmissionConfig,
    AdmissionController,
    ManualClock,
    QueryService,
)
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.large_scripts import make_large_script
from repro.workloads.paper_scripts import PAPER_SCRIPTS

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS_SCRIPTS = sorted(CORPUS_DIR.glob("*.scope"))
WINDOW = 1.0
MATRIX = [(1, "row"), (4, "row"), (1, "columnar"), (4, "columnar")]
MATRIX_IDS = [f"w{w}-{b}" for w, b in MATRIX]


def _config() -> OptimizerConfig:
    return OptimizerConfig(cost_params=CostParams(machines=4))


def _admit_and_compare(texts, catalog, files, *, workers, backend):
    """Submit ``texts`` into one admission window; compare each result
    against a direct one-at-a-time execution on a fresh service."""
    direct = QueryService(catalog, _config())
    baselines = [
        direct.execute(t, workers=0, files=files) for t in texts
    ]

    service = QueryService(catalog, _config())
    clock = ManualClock()
    controller = AdmissionController(
        service, clock=clock, files=files, workers=workers,
        backend=backend,
        config=AdmissionConfig(window=WINDOW, max_batch=len(texts)),
    )
    tickets = [
        controller.submit_nowait(t, tenant=f"t{i}")
        for i, t in enumerate(texts)
    ]
    clock.advance(WINDOW)
    controller.pump()

    runs = []
    for ticket, baseline in zip(tickets, baselines):
        result = ticket.result(timeout=0)
        assert set(result.outputs) == set(baseline.outputs)
        for path in baseline.outputs:
            assert (
                result.outputs[path].canonical_bytes()
                == baseline.outputs[path].canonical_bytes()
            ), f"admitted output {path} differs from direct execution"
        if not any(result.run is run for run in runs):
            runs.append(result.run)

    # Shared stages launch exactly once per window.
    for run in runs:
        if run.stage_graph is None:
            continue
        for vertex in run.stage_graph.vertices:
            stats = run.metrics.vertices[vertex.name]
            assert stats.launches == 1, (
                f"vertex {vertex.name} launched {stats.launches} times"
            )


@pytest.fixture(scope="module")
def corpus_catalog():
    return catalog_from_json((CORPUS_DIR / "catalog.json").read_text())


@pytest.mark.parametrize("workers,backend", MATRIX, ids=MATRIX_IDS)
def test_corpus_through_admission_matches_direct(
        workers, backend, corpus_catalog):
    texts = [p.read_text() for p in CORPUS_SCRIPTS]
    files = generate_for_catalog(corpus_catalog, seed=3)
    _admit_and_compare(texts, corpus_catalog, files,
                       workers=workers, backend=backend)


@pytest.mark.parametrize("workers,backend", MATRIX, ids=MATRIX_IDS)
def test_paper_scripts_through_admission_matches_direct(
        workers, backend, abcd_catalog):
    texts = [PAPER_SCRIPTS[name] for name in sorted(PAPER_SCRIPTS)]
    files = generate_for_catalog(abcd_catalog, seed=7)
    _admit_and_compare(texts, abcd_catalog, files,
                       workers=workers, backend=backend)


@pytest.mark.parametrize("name", ["LS1", "LS2"])
@pytest.mark.parametrize("workers,backend", MATRIX, ids=MATRIX_IDS)
def test_large_scripts_through_admission_matches_direct(
        workers, backend, name):
    text, catalog, _spec = make_large_script(name)
    files = generate_for_catalog(catalog, seed=5, rows_override=120)
    _admit_and_compare([text], catalog, files,
                       workers=workers, backend=backend)
