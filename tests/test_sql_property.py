"""Property-based round-trip test for the SQL parser and printer.

For any AST the grammar can express, ``parse(print(ast)) == ast`` and
the canonical printed form is a fixed point.  Hypothesis builds ASTs
directly (not text), so the property exercises exactly the structures
the printer claims to normalize — including deep expression nesting the
hand-written tests never reach.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import parse_sql, print_script
from repro.sql.ast import (
    CTE,
    EBin,
    ECall,
    ELit,
    ENot,
    ERef,
    FromRel,
    JoinClause,
    QueryBody,
    SelectCore,
    SelectItem,
    SqlScript,
    SqlStatement,
    Star,
)
from repro.sql.lexer import KEYWORDS

_IDENT_HEAD = "abcdefghijklmnopqrstuvwxyz"
_IDENT_TAIL = _IDENT_HEAD + "_0123456789"


@st.composite
def idents(draw):
    head = draw(st.sampled_from(_IDENT_HEAD))
    tail = draw(st.text(alphabet=_IDENT_TAIL, max_size=6))
    word = head + tail
    if word.upper() in KEYWORDS:
        word += "x"
    return word


def refs():
    return st.builds(
        ERef,
        name=idents(),
        qualifier=st.one_of(st.none(), idents()),
    )


def literals():
    # Integers and simple strings; the lexer has no escapes and floats
    # round-trip through repr only for plain decimal spellings.
    return st.builds(
        ELit,
        value=st.one_of(
            st.integers(min_value=0, max_value=10**6),
            st.text(alphabet=_IDENT_TAIL + " ", max_size=8),
        ),
    )


def exprs():
    return st.recursive(
        st.one_of(refs(), literals()),
        lambda children: st.one_of(
            st.builds(
                EBin,
                op=st.sampled_from(
                    ("AND", "OR", "=", "<>", "<", "<=", ">", ">=",
                     "+", "-", "*", "/")
                ),
                left=children,
                right=children,
            ),
            st.builds(ENot, operand=children),
            st.builds(
                ECall,
                func=idents(),
                arg=children,
                distinct=st.booleans(),
            ),
            st.builds(ECall, func=idents(), arg=st.none()),
        ),
        max_leaves=8,
    )


def select_items():
    return st.builds(
        SelectItem, expr=exprs(), alias=st.one_of(st.none(), idents())
    )


def from_rels():
    return st.builds(
        FromRel, name=idents(), alias=st.one_of(st.none(), idents())
    )


def join_clauses():
    return st.builds(
        JoinClause,
        rel=from_rels(),
        condition=exprs(),
        kind=st.sampled_from(("inner", "left")),
    )


@st.composite
def select_cores(draw):
    star = draw(st.booleans())
    if star:
        items = (SelectItem(Star()),)
    else:
        items = tuple(
            draw(st.lists(select_items(), min_size=1, max_size=3))
        )
    return SelectCore(
        items=items,
        from_rels=tuple(draw(st.lists(from_rels(), min_size=1,
                                      max_size=2))),
        joins=tuple(draw(st.lists(join_clauses(), max_size=2))),
        where=draw(st.one_of(st.none(), exprs())),
        group_by=tuple(draw(st.lists(refs(), max_size=2))),
        having=draw(st.one_of(st.none(), exprs())),
        distinct=draw(st.booleans()),
    )


@st.composite
def query_bodies(draw, allow_bare_order=True):
    branches = tuple(draw(st.lists(select_cores(), min_size=1,
                                   max_size=2)))
    order_by = ()
    limit = None
    if len(branches) == 1:
        # LIMIT requires ORDER BY; bare ORDER BY is statement-only.
        shape = draw(st.sampled_from(
            ("plain", "order", "order_limit") if allow_bare_order
            else ("plain", "order_limit")
        ))
        if shape != "plain":
            order_by = tuple(draw(st.lists(refs(), min_size=1,
                                           max_size=2)))
        if shape == "order_limit":
            limit = draw(st.integers(min_value=1, max_value=1000))
    return QueryBody(branches, order_by, limit)


@st.composite
def statements(draw):
    ctes = tuple(
        CTE(draw(idents()), draw(query_bodies(allow_bare_order=False)))
        for _ in range(draw(st.integers(min_value=0, max_value=2)))
    )
    into = draw(st.one_of(
        st.none(),
        st.text(alphabet=_IDENT_TAIL + "./", min_size=1, max_size=10),
    ))
    return SqlStatement(draw(query_bodies()), ctes, into)


def scripts():
    return st.builds(
        SqlScript,
        statements=st.lists(statements(), min_size=1, max_size=3),
    )


@settings(max_examples=60, deadline=None)
@given(scripts())
def test_print_parse_round_trip(script):
    printed = print_script(script)
    reparsed = parse_sql(printed)
    assert reparsed == script


@settings(max_examples=40, deadline=None)
@given(scripts())
def test_canonical_form_is_fixed_point(script):
    printed = print_script(script)
    assert print_script(parse_sql(printed)) == printed
