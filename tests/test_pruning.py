"""Tests for sharing-preserving column pruning."""

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, PlanExecutor
from repro.naive import NaiveEvaluator
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.logical import (
    LogicalExtract,
    LogicalGroupBy,
    LogicalJoin,
    LogicalProject,
)
from repro.plan.pruning import prune_columns
from repro.scope.compiler import compile_script
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import PAPER_SCRIPTS

WIDE_SCRIPT = (
    'R0 = EXTRACT A,B,C,D FROM "test.log" USING E;\n'
    "R = SELECT A,Sum(B) AS SB FROM R0 GROUP BY A;\n"
    'OUTPUT R TO "o";'
)


def ops_of(plan, op_type):
    return [n for n in plan.iter_nodes() if isinstance(n.op, op_type)]


class TestNarrowing:
    def test_unused_extract_columns_dropped(self, abcd_catalog):
        plan = prune_columns(compile_script(WIDE_SCRIPT, abcd_catalog))
        extract = ops_of(plan, LogicalExtract)[0]
        assert set(extract.schema.names) == {"A", "B"}

    def test_unused_aggregates_dropped(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,B,C,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(B) AS SB,Sum(C) AS SC,Sum(D) AS SD "
            "FROM R0 GROUP BY A;\n"
            "T = SELECT A,SB FROM R;\n"
            'OUTPUT T TO "o";'
        )
        plan = prune_columns(compile_script(text, abcd_catalog))
        gb = ops_of(plan, LogicalGroupBy)[0]
        assert [a.alias for a in gb.op.aggregates] == ["SB"]
        extract = ops_of(plan, LogicalExtract)[0]
        assert set(extract.schema.names) == {"A", "B"}

    def test_grouping_keys_never_dropped(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,B,D FROM "test.log" USING E;\n'
            "R = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B;\n"
            "T = SELECT A,S FROM R;\n"  # B unused downstream
            'OUTPUT T TO "o";'
        )
        plan = prune_columns(compile_script(text, abcd_catalog))
        gb = ops_of(plan, LogicalGroupBy)[0]
        # Dropping B would change the grouping; it must stay.
        assert gb.op.keys == ("A", "B")

    def test_join_keeps_keys_plus_flowthrough(self, abcd_catalog):
        text = (
            'X = EXTRACT A,B,C FROM "test.log" USING E;\n'
            'Y = EXTRACT A,D FROM "test2.log" USING E;\n'
            "J = SELECT X.A,B,D FROM X, Y WHERE X.A = Y.A;\n"
            'OUTPUT J TO "o";'
        )
        plan = prune_columns(compile_script(text, abcd_catalog))
        extracts = ops_of(plan, LogicalExtract)
        schemas = {frozenset(e.schema.names) for e in extracts}
        # C never reaches the output and is pruned at the scan.
        assert frozenset({"A", "B"}) in schemas
        assert frozenset({"A", "D"}) in schemas

    def test_count_star_keeps_one_column(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,B,C,D FROM "test.log" USING E;\n'
            "R = SELECT Count(*) AS N FROM R0;\n"
            'OUTPUT R TO "o";'
        )
        plan = prune_columns(compile_script(text, abcd_catalog))
        extract = ops_of(plan, LogicalExtract)[0]
        assert len(extract.schema) == 1


class TestSharingPreserved:
    def test_shared_node_requirements_unioned(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,B,C,D FROM "test.log" USING E;\n'
            "R = SELECT A,B,Sum(C) AS SC,Sum(D) AS SD FROM R0 GROUP BY A,B;\n"
            "X = SELECT A,Sum(SC) AS T1 FROM R GROUP BY A;\n"
            "Y = SELECT B,Sum(SD) AS T2 FROM R GROUP BY B;\n"
            'OUTPUT X TO "x";\nOUTPUT Y TO "y";'
        )
        plan = prune_columns(compile_script(text, abcd_catalog))
        group_bys = [
            n
            for n in plan.iter_nodes()
            if isinstance(n.op, LogicalGroupBy)
            and n.op.keys == ("A", "B")
        ]
        # Still one shared node, and it keeps BOTH aggregates (one per
        # consumer) — the union of the requirements.
        assert len(group_bys) == 1
        assert {a.alias for a in group_bys[0].op.aggregates} == {"SC", "SD"}

    def test_node_identity_preserved(self, abcd_catalog):
        plan = compile_script(PAPER_SCRIPTS["S1"], abcd_catalog)
        pruned = prune_columns(plan)
        assert pruned.count_operators() == plan.count_operators()


class TestSemanticNoOp:
    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_paper_scripts_unchanged_results(self, name, abcd_catalog):
        text = PAPER_SCRIPTS[name]
        files = generate_for_catalog(abcd_catalog, seed=13)
        raw = NaiveEvaluator(files).run(compile_script(text, abcd_catalog))
        pruned = NaiveEvaluator(files).run(
            prune_columns(compile_script(text, abcd_catalog))
        )
        assert raw == pruned

    def test_pruned_plan_executes_identically(self, abcd_catalog):
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        files = generate_for_catalog(abcd_catalog, seed=13)
        expected = NaiveEvaluator(files).run(
            compile_script(WIDE_SCRIPT, abcd_catalog)
        )
        result = optimize_script(WIDE_SCRIPT, abcd_catalog, config,
                                 prune=True)
        cluster = Cluster(machines=4)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        for path, want in expected.items():
            assert outputs[path].sorted_rows() == want

    def test_pruning_reduces_cost_on_wide_scans(self, abcd_catalog):
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        wide = optimize_script(WIDE_SCRIPT, abcd_catalog, config, prune=False)
        narrow = optimize_script(WIDE_SCRIPT, abcd_catalog, config, prune=True)
        assert narrow.cost < wide.cost
