"""Tests for the Section VIII round arithmetic and LS generators."""

import pytest

from repro.cse.large_scripts import (
    cartesian_rounds,
    grouped_rounds,
    round_plans,
    sequential_rounds,
)
from repro.cse.pipeline import optimize_with_cse
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.optimizer.memo import Memo
from repro.scope.compiler import compile_script
from repro.workloads.large_scripts import (
    LargeScriptSpec,
    build_catalog,
    build_script,
    ls1_spec,
    ls2_spec,
    make_large_script,
)


class TestRoundArithmetic:
    def test_paper_figure5_example(self):
        """Figure 5: 8 × 8 histories → 64 cartesian, 15 sequential."""
        assert cartesian_rounds([8, 8]) == 64
        assert sequential_rounds([8, 8]) == 15

    def test_cartesian(self):
        assert cartesian_rounds([]) == 1
        assert cartesian_rounds([5]) == 5
        assert cartesian_rounds([2, 3, 4]) == 24

    def test_sequential(self):
        assert sequential_rounds([]) == 0
        assert sequential_rounds([5]) == 5
        assert sequential_rounds([2, 3, 4]) == 2 + 2 + 3

    def test_grouped(self):
        # Two dependent pairs: cartesian inside, greedy across.
        assert grouped_rounds([[2, 3], [4]]) == 6 + 3
        assert grouped_rounds([[8], [8]]) == 15
        assert grouped_rounds([]) == 0


class TestGenerators:
    def test_ls1_operator_count(self, ):
        text, catalog, spec = make_large_script("LS1")
        memo = Memo.from_logical_plan(compile_script(text, catalog))
        assert memo.operator_count() == 101

    def test_ls2_operator_count(self):
        text, catalog, spec = make_large_script("LS2")
        memo = Memo.from_logical_plan(compile_script(text, catalog))
        assert memo.operator_count() == 1034

    def test_ls1_shared_group_shape(self):
        text, catalog, _spec = make_large_script("LS1")
        cfg = OptimizerConfig(cost_params=CostParams(machines=4))
        result = optimize_with_cse(compile_script(text, catalog), catalog, cfg)
        shared = result.report.shared_groups
        assert len(shared) == 4
        consumer_counts = sorted(
            len(result.propagation.consumers[gid]) for gid in shared
        )
        assert consumer_counts == [2, 2, 2, 3]

    def test_spec_arithmetic_matches_compiler(self):
        spec = LargeScriptSpec(
            name="tiny",
            shared_consumers=(2,),
            pre_chain=(3,),
            unshared_chains=(1, 2),
        )
        text = build_script(spec)
        catalog = build_catalog(spec)
        memo = Memo.from_logical_plan(compile_script(text, catalog))
        assert memo.operator_count() == spec.operator_count()

    def test_specs_are_fresh_objects(self):
        assert ls1_spec() is not ls1_spec()
        assert ls2_spec().shared_consumers.count(2) == 15


class TestRoundPlans:
    def test_round_plan_predicts_engine_rounds(self):
        spec = LargeScriptSpec(
            name="tiny2",
            shared_consumers=(2, 2),
            pre_chain=(1, 1),
        )
        text = build_script(spec)
        catalog = build_catalog(spec)
        cfg = OptimizerConfig(cost_params=CostParams(machines=4))
        result = optimize_with_cse(compile_script(text, catalog), catalog, cfg)
        plans = round_plans(result.engine)
        predicted = sum(p.planned_rounds for p in plans.values())
        assert predicted == result.engine.stats.rounds

    def test_independent_groups_cheaper_than_cartesian(self):
        spec = LargeScriptSpec(
            name="tiny3",
            shared_consumers=(2, 2),
            pre_chain=(1, 1),
        )
        text = build_script(spec)
        catalog = build_catalog(spec)
        cfg = OptimizerConfig(cost_params=CostParams(machines=4))
        result = optimize_with_cse(compile_script(text, catalog), catalog, cfg)
        for plan in round_plans(result.engine).values():
            assert plan.planned_rounds <= plan.cartesian_equivalent
