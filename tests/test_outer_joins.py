"""Tests for ANSI JOIN syntax and LEFT OUTER JOIN semantics."""

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, PlanExecutor
from repro.naive import NaiveEvaluator
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.columns import ColumnType
from repro.plan.logical import JoinKind, LogicalFilter, LogicalJoin
from repro.scope.catalog import Catalog
from repro.scope.compiler import compile_script
from repro.scope.errors import ResolutionError
from repro.workloads.datagen import generate_for_catalog

LEFT_JOIN_SCRIPT = """
U = EXTRACT UserId,Region FROM "users.log" USING E;
P = EXTRACT UserId,Amount FROM "purchases.log" USING E;
J = SELECT U.UserId,Region,Amount FROM U LEFT OUTER JOIN P
    ON U.UserId = P.UserId;
OUTPUT J TO "o";
"""


@pytest.fixture
def join_catalog():
    catalog = Catalog()
    catalog.register_file(
        "users.log",
        [("UserId", ColumnType.INT), ("Region", ColumnType.INT)],
        rows=200,
        ndv={"UserId": 200, "Region": 4},
    )
    catalog.register_file(
        "purchases.log",
        [("UserId", ColumnType.INT), ("Amount", ColumnType.INT)],
        rows=300,
        ndv={"UserId": 120, "Amount": 50},
    )
    return catalog


FILES = {
    "users.log": [
        {"UserId": 1, "Region": 10},
        {"UserId": 2, "Region": 20},
        {"UserId": 3, "Region": 10},
    ],
    "purchases.log": [
        {"UserId": 1, "Amount": 5},
        {"UserId": 1, "Amount": 7},
        {"UserId": 3, "Amount": 9},
    ],
}


class TestParsingAndCompilation:
    def test_inner_join_keyword(self, join_catalog):
        text = LEFT_JOIN_SCRIPT.replace("LEFT OUTER JOIN", "INNER JOIN")
        plan = compile_script(text, join_catalog)
        join = next(
            n for n in plan.iter_nodes() if isinstance(n.op, LogicalJoin)
        )
        assert join.op.kind is JoinKind.INNER

    def test_bare_join_is_inner(self, join_catalog):
        text = LEFT_JOIN_SCRIPT.replace("LEFT OUTER JOIN", "JOIN")
        plan = compile_script(text, join_catalog)
        join = next(
            n for n in plan.iter_nodes() if isinstance(n.op, LogicalJoin)
        )
        assert join.op.kind is JoinKind.INNER

    def test_left_join_kind(self, join_catalog):
        plan = compile_script(LEFT_JOIN_SCRIPT, join_catalog)
        join = next(
            n for n in plan.iter_nodes() if isinstance(n.op, LogicalJoin)
        )
        assert join.op.kind is JoinKind.LEFT

    def test_left_without_outer(self, join_catalog):
        text = LEFT_JOIN_SCRIPT.replace("LEFT OUTER JOIN", "LEFT JOIN")
        plan = compile_script(text, join_catalog)
        join = next(
            n for n in plan.iter_nodes() if isinstance(n.op, LogicalJoin)
        )
        assert join.op.kind is JoinKind.LEFT

    def test_non_equi_on_rejected(self, join_catalog):
        text = LEFT_JOIN_SCRIPT.replace(
            "ON U.UserId = P.UserId", "ON U.UserId = P.UserId AND Amount > 3"
        )
        with pytest.raises(ResolutionError):
            compile_script(text, join_catalog)


class TestNaiveSemantics:
    def run(self, text, join_catalog):
        return NaiveEvaluator(FILES).run(compile_script(text, join_catalog))

    def test_unmatched_left_rows_padded(self, join_catalog):
        rows = self.run(LEFT_JOIN_SCRIPT, join_catalog)["o"]
        # User 2 has no purchases: one padded row.
        assert (2, 20, None) in rows
        assert len(rows) == 4  # 2×user1 + user3 + padded user2

    def test_inner_join_drops_unmatched(self, join_catalog):
        text = LEFT_JOIN_SCRIPT.replace("LEFT OUTER JOIN", "JOIN")
        rows = self.run(text, join_catalog)["o"]
        assert len(rows) == 3
        assert all(r[2] is not None for r in rows)

    def test_null_padding_is_ignored_by_aggregates(self, join_catalog):
        text = LEFT_JOIN_SCRIPT.replace(
            'OUTPUT J TO "o";',
            "G = SELECT Region,Sum(Amount) AS T,Count(*) AS N "
            "FROM J GROUP BY Region;\n"
            'OUTPUT G TO "o";',
        )
        rows = self.run(text, join_catalog)["o"]
        by_region = {r[0]: (r[1], r[2]) for r in rows}
        assert by_region[10] == (21, 3)   # 5+7+9, three rows
        assert by_region[20] == (None, 1)  # only the padded row

    def test_where_on_right_column_drops_padded_rows(self, join_catalog):
        text = LEFT_JOIN_SCRIPT.replace(
            'OUTPUT J TO "o";',
            "F = SELECT UserId,Region,Amount FROM J WHERE Amount > 0;\n"
            'OUTPUT F TO "o";',
        )
        rows = self.run(text, join_catalog)["o"]
        assert all(r[2] is not None for r in rows)
        assert len(rows) == 3


class TestOptimizedExecution:
    @pytest.mark.parametrize("exploit_cse", [False, True])
    def test_left_join_matches_oracle(self, join_catalog, exploit_cse):
        config = OptimizerConfig(cost_params=CostParams(machines=3))
        files = generate_for_catalog(join_catalog, seed=17)
        result = optimize_script(LEFT_JOIN_SCRIPT, join_catalog, config,
                                 exploit_cse=exploit_cse)
        cluster = Cluster(machines=3)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        expected = NaiveEvaluator(files).run(
            compile_script(LEFT_JOIN_SCRIPT, join_catalog)
        )
        assert outputs["o"].sorted_rows() == expected["o"]

    def test_left_join_with_downstream_aggregation(self, join_catalog):
        text = LEFT_JOIN_SCRIPT.replace(
            'OUTPUT J TO "o";',
            "G = SELECT Region,Sum(Amount) AS T FROM J GROUP BY Region;\n"
            'OUTPUT G TO "o";',
        )
        config = OptimizerConfig(cost_params=CostParams(machines=3))
        files = generate_for_catalog(join_catalog, seed=17)
        result = optimize_script(text, join_catalog, config)
        cluster = Cluster(machines=3)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        expected = NaiveEvaluator(files).run(
            compile_script(text, join_catalog)
        )
        assert outputs["o"].sorted_rows() == expected["o"]

    def test_cardinality_left_join_at_least_left_rows(self, join_catalog):
        config = OptimizerConfig(cost_params=CostParams(machines=3))
        result = optimize_script(LEFT_JOIN_SCRIPT, join_catalog, config)
        from repro.plan.physical import (
            PhysBroadcastJoin,
            PhysHashJoin,
            PhysMergeJoin,
        )

        join = next(
            n
            for n in result.plan.iter_nodes()
            if isinstance(n.op, (PhysHashJoin, PhysMergeJoin,
                                 PhysBroadcastJoin))
        )
        assert join.rows >= 200


class TestRewriteSafety:
    def test_right_filter_not_pushed_below_left_join(self, join_catalog):
        """A WHERE on right-side columns must stay above a LEFT join —
        pushing it below would keep null-padded rows the filter drops.
        Verified end to end: the oracle uses the unrewritten DAG, so a
        bad push would surface as a result mismatch."""
        text = LEFT_JOIN_SCRIPT.replace(
            'OUTPUT J TO "o";',
            "F = SELECT UserId,Region,Amount FROM J WHERE Amount > 10;\n"
            'OUTPUT F TO "o";',
        )
        config = OptimizerConfig(cost_params=CostParams(machines=3))
        files = generate_for_catalog(join_catalog, seed=17)
        result = optimize_script(text, join_catalog, config)
        cluster = Cluster(machines=3)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        expected = NaiveEvaluator(files).run(
            compile_script(text, join_catalog)
        )
        assert outputs["o"].sorted_rows() == expected["o"]

    def test_left_filter_still_pushed(self, join_catalog):
        """Left-side predicates ARE safe below a LEFT join and the rule
        still applies to them."""
        from repro.optimizer.cardinality import CardinalityEstimator, annotate_memo
        from repro.optimizer.memo import Memo
        from repro.optimizer.rules.transformation import (
            PushFilterBelowJoin,
            RuleEnv,
        )

        # The WHERE lands directly above the join (before the final
        # projection), which is the shape the rule matches.
        text = """
U = EXTRACT UserId,Region FROM "users.log" USING E;
P = EXTRACT UserId,Amount FROM "purchases.log" USING E;
J = SELECT U.UserId,Region,Amount FROM U LEFT OUTER JOIN P
    ON U.UserId = P.UserId WHERE Region > 1 AND Amount > 2;
OUTPUT J TO "o";
"""
        memo = Memo.from_logical_plan(compile_script(text, join_catalog))
        estimator = CardinalityEstimator(join_catalog, machines=3)
        annotate_memo(memo, estimator)
        env = RuleEnv(memo, estimator)
        rule = PushFilterBelowJoin()
        produced = []
        for group in memo.live_groups():
            if isinstance(group.initial_expr.op, LogicalFilter):
                produced.extend(
                    rule.apply(memo, group.gid, group.initial_expr, env)
                )
        assert produced  # Region>1 pushed left; Amount>2 stayed above
        top = produced[0]
        assert isinstance(top.op, LogicalFilter)
        assert top.op.predicate.referenced_columns() == {"Amount"}
