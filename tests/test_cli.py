"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.plan.columns import ColumnType
from repro.scope.catalog import Catalog
from repro.scope.statistics import catalog_to_json

S1_TEXT = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) AS S1 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
"""


@pytest.fixture
def workspace(tmp_path):
    script = tmp_path / "s1.scope"
    script.write_text(S1_TEXT)
    catalog = Catalog()
    catalog.register_file(
        "test.log",
        [(c, ColumnType.INT) for c in ("A", "B", "C", "D")],
        rows=10_000,
        ndv={"A": 8, "B": 6, "C": 9, "D": 500},
    )
    catalog_path = tmp_path / "catalog.json"
    catalog_path.write_text(catalog_to_json(catalog))
    return str(script), str(catalog_path)


class TestExplain:
    def test_text_output(self, workspace, capsys):
        script, catalog = workspace
        code = main(["explain", script, "--catalog", catalog,
                     "--machines", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total cost (DAG)" in out
        assert "phase-2 rounds" in out

    def test_json_output(self, workspace, capsys):
        script, catalog = workspace
        assert main(["explain", script, "--catalog", catalog, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["operator"] == "Sequence"

    def test_dot_output(self, workspace, capsys):
        script, catalog = workspace
        assert main(["explain", script, "--catalog", catalog, "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_no_cse_flag(self, workspace, capsys):
        script, catalog = workspace
        assert main(["explain", script, "--catalog", catalog,
                     "--no-cse"]) == 0
        out = capsys.readouterr().out
        assert "shared spools" not in out


class TestCompare:
    def test_shows_both_plans(self, workspace, capsys):
        script, catalog = workspace
        assert main(["compare", script, "--catalog", catalog]) == 0
        out = capsys.readouterr().out
        assert "conventional plan" in out
        assert "ratio" in out


class TestRun:
    def test_executes_and_verifies(self, workspace, capsys):
        script, catalog = workspace
        code = main(["run", script, "--catalog", catalog, "--machines", "3",
                     "--rows", "1500", "--show-rows", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified: results identical" in out
        assert "result1.out" in out

    def test_run_without_cse(self, workspace):
        script, catalog = workspace
        assert main(["run", script, "--catalog", catalog,
                     "--rows", "800", "--no-cse"]) == 0


class TestRunScheduler:
    def test_workers_flag_uses_scheduler(self, workspace, capsys):
        script, catalog = workspace
        code = main(["run", script, "--catalog", catalog, "--machines", "3",
                     "--rows", "900", "--workers", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scheduler, 4 workers" in out
        assert "--- vertices ---" in out
        assert "V00:" in out
        assert "verified: results identical" in out

    def test_sequential_run_prints_no_vertex_table(self, workspace, capsys):
        script, catalog = workspace
        assert main(["run", script, "--catalog", catalog, "--machines", "3",
                     "--rows", "900"]) == 0
        out = capsys.readouterr().out
        assert "sequential executor" in out
        assert "--- vertices ---" not in out

    def test_fault_injection_converges(self, workspace, capsys):
        script, catalog = workspace
        code = main(["run", script, "--catalog", catalog, "--machines", "3",
                     "--rows", "900", "--workers", "4",
                     "--inject-failures", "0.3", "--failure-seed", "5",
                     "--max-retries", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault rate 0.3" in out
        assert "verified: results identical" in out

    def test_retry_exhaustion_is_a_clean_cli_error(self, workspace, capsys):
        script, catalog = workspace
        code = main(["run", script, "--catalog", catalog, "--machines", "3",
                     "--rows", "900", "--workers", "2",
                     "--inject-failures", "1.0", "--max-retries", "1"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error: vertex V" in err
        assert "failed after 2 attempt(s)" in err


class TestColumnarBackend:
    def test_columnar_run_verifies_vs_oracle(self, workspace, capsys):
        script, catalog = workspace
        code = main(["run", script, "--catalog", catalog, "--machines", "3",
                     "--rows", "1200", "--backend", "columnar"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified: results identical" in out

    def test_columnar_scheduler_with_faults(self, workspace, capsys):
        script, catalog = workspace
        code = main(["run", script, "--catalog", catalog, "--machines", "3",
                     "--rows", "900", "--workers", "4",
                     "--backend", "columnar",
                     "--inject-failures", "0.3", "--failure-seed", "5",
                     "--max-retries", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified: results identical" in out

    def test_explain_exec_sequential(self, workspace, capsys):
        script, catalog = workspace
        code = main(["run", script, "--catalog", catalog, "--machines", "3",
                     "--rows", "600", "--backend", "columnar",
                     "--explain-exec"])
        assert code == 0
        out = capsys.readouterr().out
        assert "--- execution backend ---" in out
        assert "backend: columnar" in out
        assert "batches processed [columnar]:" in out
        # Sequential runs have no vertex stats.
        assert "per-vertex batches:" not in out

    def test_explain_exec_scheduler_lists_vertices(self, workspace, capsys):
        script, catalog = workspace
        code = main(["run", script, "--catalog", catalog, "--machines", "3",
                     "--rows", "600", "--workers", "2", "--explain-exec"])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend: row" in out
        assert "batches processed [row]:" in out
        assert "per-vertex batches:" in out
        assert "  V00" in out

    def test_unknown_backend_is_rejected(self, workspace, capsys):
        script, catalog = workspace
        with pytest.raises(SystemExit):
            main(["run", script, "--catalog", catalog,
                  "--backend", "arrow"])


class TestVerify:
    def test_reports_all_modes_ok(self, workspace, capsys):
        script, catalog = workspace
        assert main(["verify", script, "--catalog", catalog]) == 0
        out = capsys.readouterr().out
        assert "cse/chosen" in out
        assert "conventional/chosen" in out
        assert "plan OK" in out
        assert "INVALID" not in out

    def test_phases_flag_checks_phase_plans(self, workspace, capsys):
        script, catalog = workspace
        assert main(["verify", script, "--catalog", catalog,
                     "--phases"]) == 0
        out = capsys.readouterr().out
        assert "cse/phase1" in out

    def test_json_output(self, workspace, capsys):
        script, catalog = workspace
        assert main(["verify", script, "--catalog", catalog, "--json",
                     "--cse-only"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["cse/chosen"]["ok"] is True
        assert data["cse/chosen"]["violations"] == []

    def test_no_cse_checks_only_conventional(self, workspace, capsys):
        script, catalog = workspace
        assert main(["verify", script, "--catalog", catalog,
                     "--no-cse"]) == 0
        out = capsys.readouterr().out
        assert "conventional/chosen" in out
        assert "cse/chosen" not in out


class TestErrors:
    def test_missing_catalog_file(self, workspace, capsys):
        script, _catalog = workspace
        code = main(["explain", script, "--catalog", "/nonexistent.json"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_script(self, tmp_path, workspace, capsys):
        _script, catalog = workspace
        bad = tmp_path / "bad.scope"
        bad.write_text("THIS IS NOT SCOPE;")
        code = main(["explain", str(bad), "--catalog", catalog])
        assert code == 2

    def test_unknown_relation(self, tmp_path, workspace, capsys):
        _script, catalog = workspace
        bad = tmp_path / "bad2.scope"
        bad.write_text('OUTPUT nope TO "x";')
        assert main(["explain", str(bad), "--catalog", catalog]) == 2


S2_TEXT = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R3 = SELECT A,C,Sum(S) AS S2 FROM R GROUP BY A,C;
OUTPUT R3 TO "result3.out";
"""


@pytest.fixture
def batch_workspace(tmp_path, workspace):
    script1, catalog = workspace
    script2 = tmp_path / "s2.scope"
    script2.write_text(S2_TEXT)
    return script1, str(script2), catalog


class TestServe:
    def test_second_pass_hits_the_cache(self, batch_workspace, capsys):
        script1, script2, catalog = batch_workspace
        code = main(["serve", script1, script2, "--catalog", catalog,
                     "--machines", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("] miss") == 2
        assert out.count("] hit") == 2
        assert "cache_hits: 2" in out
        assert "optimizations: 2" in out

    def test_stats_json_artifact(self, batch_workspace, tmp_path, capsys):
        script1, script2, catalog = batch_workspace
        stats_path = tmp_path / "cache-metrics.json"
        code = main(["serve", script1, script2, "--catalog", catalog,
                     "--machines", "4", "--repeat", "3",
                     "--stats-json", str(stats_path)])
        assert code == 0
        doc = json.loads(stats_path.read_text())
        assert doc["submits"] == 6
        assert doc["cache_hits"] == 4
        assert doc["cache_misses"] == doc["optimizations"] == 2
        assert doc["cache_lookups"] == doc["cache_hits"] + \
            doc["cache_misses"]

    def test_cache_capacity_forces_evictions(self, batch_workspace,
                                             capsys):
        script1, script2, catalog = batch_workspace
        code = main(["serve", script1, script2, "--catalog", catalog,
                     "--machines", "4", "--cache-capacity", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cache_evictions: 3" in out
        assert "cache_hits: 0" in out


class TestServeStream:
    def test_streaming_admission_serves_all_tenants(
            self, batch_workspace, tmp_path, capsys):
        script1, script2, catalog = batch_workspace
        stats_path = tmp_path / "admission-metrics.json"
        code = main(["serve", script1, script2, "--catalog", catalog,
                     "--machines", "4", "--stream", "--tenants", "3",
                     "--repeat", "2", "--window-ms", "20",
                     "--rows", "500", "--workers", "2",
                     "--stats-json", str(stats_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 tenant(s) x 2 pass(es) x 2 script(s): 12 served" in out
        assert "0 failed" in out
        assert "--- admission counters ---" in out
        doc = json.loads(stats_path.read_text())
        assert doc["submits"] == 12
        assert doc["accepted"] + doc["deduped"] == 12
        assert doc["rejected"] == 0
        assert doc["failed_groups"] == 0
        assert doc["executed_scripts"] == doc["accepted"]
        assert doc["queue_depth"] == 0

    def test_streaming_with_fault_injection_converges(
            self, batch_workspace, capsys):
        script1, script2, catalog = batch_workspace
        code = main(["serve", script1, script2, "--catalog", catalog,
                     "--machines", "4", "--stream", "--tenants", "2",
                     "--repeat", "1", "--window-ms", "20",
                     "--rows", "500", "--workers", "2",
                     "--inject-failures", "0.05", "--failure-seed", "11"])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 failed" in out


class TestBatch:
    def test_batched_execution_shares_work(self, batch_workspace, capsys):
        script1, script2, catalog = batch_workspace
        code = main(["batch", script1, script2, "--catalog", catalog,
                     "--machines", "4", "--workers", "2",
                     "--rows", "800"])
        assert code == 0
        out = capsys.readouterr().out
        assert "merged 2 script(s) (q0, q1)" in out
        assert "cross-script shared vertices (executed once)" in out
        assert "launches=1" in out
        assert "q0/result1.out" in out
        assert "q1/result3.out" in out

    def test_labels_and_sequential_executor(self, batch_workspace, capsys):
        script1, script2, catalog = batch_workspace
        code = main(["batch", script1, script2, "--catalog", catalog,
                     "--machines", "4", "--workers", "0",
                     "--rows", "500", "--labels", "left,right",
                     "--show-rows", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "left/result1.out" in out
        assert "right/result3.out" in out

    def test_batch_columnar_with_explain_exec(self, batch_workspace,
                                              capsys):
        script1, script2, catalog = batch_workspace
        code = main(["batch", script1, script2, "--catalog", catalog,
                     "--machines", "4", "--workers", "2", "--rows", "800",
                     "--backend", "columnar", "--explain-exec"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cross-script shared vertices (executed once)" in out
        assert "backend: columnar" in out
        assert "batches processed [columnar]:" in out
        assert "per-vertex batches:" in out

    def test_bad_label_count_is_a_clean_error(self, batch_workspace,
                                              capsys):
        script1, script2, catalog = batch_workspace
        code = main(["batch", script1, script2, "--catalog", catalog,
                     "--labels", "only-one"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestFigure7Command:
    def test_subset(self, capsys):
        assert main(["figure7", "--scripts", "S1"]) == 0
        out = capsys.readouterr().out
        assert "S1" in out
        assert "paper" in out


class TestCseSummary:
    def test_summary_text(self, workspace):
        from repro.api import optimize_script
        from repro.scope.statistics import catalog_from_json

        script_path, catalog_path = workspace
        with open(catalog_path) as handle:
            catalog = catalog_from_json(handle.read())
        with open(script_path) as handle:
            text = handle.read()
        result = optimize_script(text, catalog)
        summary = result.cse_summary()
        assert "shared groups: 1" in summary
        assert "LCA group" in summary
        assert "chosen plan: phase" in summary

    def test_summary_without_cse(self, workspace):
        from repro.api import optimize_script
        from repro.scope.statistics import catalog_from_json

        script_path, catalog_path = workspace
        with open(catalog_path) as handle:
            catalog = catalog_from_json(handle.read())
        with open(script_path) as handle:
            text = handle.read()
        result = optimize_script(text, catalog, exploit_cse=False)
        assert "not run" in result.cse_summary()
