"""Optimizer pathology regression suite over the SQL frontend.

Three classic optimizer pathologies, each expressed as a SQL query over
the star-join corpus.  Pathologies the optimizer handles get a golden
plan snapshot (``--update-golden`` refreshes) *plus* a structural
assertion, so the property stays pinned even when the snapshot is
refreshed.  Unhandled pathologies are **strict xfails** naming the
missing rule: when someone implements it, the xfail flips to XPASS and
fails the suite, forcing the test to be promoted to a golden — no
silent skips in either direction.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.api import optimize_script
from repro.optimizer.explain import explain_normalized
from repro.workloads.starjoin import STARJOIN_QUERIES, make_starjoin_catalog

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden" / "sql"


@pytest.fixture(scope="module")
def starjoin_catalog():
    catalog, _ = make_starjoin_catalog()
    return catalog


def _explain(catalog, sql: str) -> str:
    return explain_normalized(
        optimize_script(sql, catalog, dialect="sql").plan
    )


def _check_golden(name: str, rendered: str, update: bool) -> None:
    path = GOLDEN_DIR / f"{name}.txt"
    if update:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered)
        pytest.skip(f"updated {path}")
    assert path.exists(), f"missing snapshot {path}; run with --update-golden"
    expected = path.read_text()
    assert rendered == expected, (
        f"plan shape for {name} changed; if intentional, refresh with "
        f"`pytest tests/test_sql_pathologies.py --update-golden`\n"
        f"--- expected ---\n{expected}\n--- got ---\n{rendered}"
    )


def _indent_of(line: str) -> int:
    return len(line) - len(line.lstrip())


def _subtree(lines, root_index):
    """The explain lines of the subtree rooted at ``lines[root_index]``."""
    base = _indent_of(lines[root_index])
    out = [lines[root_index]]
    for line in lines[root_index + 1:]:
        if _indent_of(line) <= base:
            break
        out.append(line)
    return out


class TestFilterPushedBelowJoin:
    """Handled: per-table predicates sink below the star join."""

    def test_structure(self, starjoin_catalog):
        rendered = _explain(
            starjoin_catalog, STARJOIN_QUERIES["q03_star_filter"]
        )
        lines = rendered.splitlines()
        for predicate, table in [
            ("(Year = 2024)", "date_dim.log"),
            ("(Qty > 5)", "store_sales.log"),
        ]:
            (idx,) = [i for i, ln in enumerate(lines)
                      if f"Filter {predicate}" in ln]
            subtree = _subtree(lines, idx)
            # The filter's whole subtree is join-free: it was pushed all
            # the way down to its extract.
            assert not any("Join" in ln for ln in subtree), (
                f"filter {predicate} was not pushed below the joins:\n"
                + rendered
            )
            assert any(f"Extract {table}" in ln for ln in subtree)

    def test_golden(self, starjoin_catalog, update_golden):
        rendered = _explain(
            starjoin_catalog, STARJOIN_QUERIES["q03_star_filter"]
        )
        _check_golden("pathology_filter_pushdown", rendered, update_golden)


class TestSharedDimensionMultichannel:
    """Handled: a CTE feeding two UNION ALL channels is spooled once."""

    def test_structure(self, starjoin_catalog):
        rendered = _explain(
            starjoin_catalog, STARJOIN_QUERIES["q01_item_channels"]
        )
        spool_ids = re.findall(r"#(\d+) Spool", rendered)
        assert spool_ids, "shared CTE must appear as a Spool"
        for node_id in spool_ids:
            # The normalized explain prints a shared node once and
            # back-references it as `*<id>` from every other consumer.
            assert f"*{node_id}" in rendered, (
                f"Spool #{node_id} has a single consumer; the CTE's two "
                "channels must point at one node:\n" + rendered
            )

    def test_golden(self, starjoin_catalog, update_golden):
        rendered = _explain(
            starjoin_catalog, STARJOIN_QUERIES["q01_item_channels"]
        )
        _check_golden("pathology_shared_dimension", rendered, update_golden)


#: Both consumers constrain ``CustSk < 100``; the second adds a store
#: predicate.  The overlapping predicate makes the consumers' filtered
#: subtrees textually different, so CSE only shares the raw extract.
CROSS_CTE_PREDICATE_SQL = """
WITH per_cust AS (
  SELECT CustSk, StoreSk, SUM(Net) AS revenue
  FROM store_sales
  GROUP BY CustSk, StoreSk
)
SELECT CustSk, SUM(revenue) AS revenue
FROM per_cust WHERE CustSk < 100 GROUP BY CustSk
UNION ALL
SELECT StoreSk, SUM(revenue) AS revenue
FROM per_cust WHERE CustSk < 100 AND StoreSk < 6 GROUP BY StoreSk;
"""


class TestCrossCtePredicatePropagation:
    """Unhandled: predicate intersection across a shared CTE's consumers.

    The missing rule is *cross-consumer predicate intersection pushdown
    into shared spool producers*: when every consumer of a shared
    subexpression constrains it with a common predicate (here
    ``CustSk < 100``), that intersection should be pushed below one
    shared spool, with each consumer keeping only its residual.  Today
    the optimizer sees two different Filter parents, declares the
    subtrees distinct, and duplicates the expensive aggregation.
    """

    @pytest.mark.xfail(
        strict=True,
        reason="missing rule: cross-consumer predicate intersection "
        "pushdown into shared spool producers (the common CustSk < 100 "
        "is not factored out, so the (CustSk,StoreSk) aggregation is "
        "planned twice instead of spooled once)",
    )
    def test_common_predicate_factored_into_shared_producer(
        self, starjoin_catalog
    ):
        rendered = _explain(starjoin_catalog, CROSS_CTE_PREDICATE_SQL)
        producers = [
            ln for ln in rendered.splitlines()
            if re.search(r"HashAgg \(CustSk,StoreSk\)", ln)
        ]
        assert len(producers) == 1, (
            "the shared (CustSk,StoreSk) aggregation must be planned "
            f"once, found {len(producers)}:\n" + rendered
        )

    def test_duplicated_producer_is_pinned(self, starjoin_catalog):
        """Document today's behavior so a fix is noticed here too."""
        rendered = _explain(starjoin_catalog, CROSS_CTE_PREDICATE_SQL)
        producers = [
            ln for ln in rendered.splitlines()
            if re.search(r"HashAgg \(CustSk,StoreSk\)", ln)
        ]
        assert len(producers) == 2
        # The raw extract *is* still shared (a back-reference exists).
        assert re.search(r"^\s*\*\d+$", rendered, flags=re.M)
