"""End-to-end observability: tracing the whole pipeline.

Covers the acceptance criteria of the ``repro.obs`` subsystem: the root
``run`` span covers parse→output, optimizer and execution events share
one bus, exports round-trip, and the span tree's *structure* is
identical across worker counts.
"""

import dataclasses
import json

import pytest

from repro.api import execute_script
from repro.obs import (
    Tracer,
    load_chrome_trace,
    load_jsonl,
    render_span_tree,
    to_chrome_trace,
    to_jsonl,
)
from repro.optimizer.trace import TraceEvent
from repro.scope.statistics import catalog_to_json
from repro.workloads.paper_scripts import PAPER_SCRIPTS, S1

MACHINES = 4


def traced_run(catalog, workers=2, script=S1, config=None):
    tracer = Tracer()
    result = execute_script(
        script, catalog, config, machines=MACHINES, workers=workers,
        rows=300, tracer=tracer,
    )
    return tracer, result


class TestPipelineSpans:
    def test_root_run_span_covers_parse_to_output(self, abcd_catalog):
        tracer, _result = traced_run(abcd_catalog)
        root = tracer.root
        assert root.name == "run"
        for stage in ["parse", "compile", "prune", "cse.detect",
                      "optimize.phase1", "optimize.phase2",
                      "stage_graph.cut", "execute"]:
            span = root.find(stage)
            assert span is not None, f"missing span {stage}"
            assert root.start <= span.start <= span.end <= root.end
        assert root.find("verify") is not None  # suite-wide default on
        assert [s.name for s in tracer.roots] == ["run"]

    def test_vertex_and_task_spans_under_execute(self, abcd_catalog):
        tracer, result = traced_run(abcd_catalog)
        execute = tracer.root.find("execute")
        vertices = [s for s in execute.children
                    if s.name.startswith("scheduler.vertex/")]
        assert {s.name.split("/", 1)[1] for s in vertices} == set(
            result.metrics.vertices
        )
        for vertex in vertices:
            assert vertex.children, f"{vertex.name} has no task spans"
            assert all(c.name.startswith("task/")
                       for c in vertex.children)
            assert vertex.attrs["tasks"] == len(vertex.children)
            stats = result.metrics.vertices[vertex.name.split("/", 1)[1]]
            assert vertex.attrs["rows_out"] == stats.rows_out

    def test_sequential_executor_is_traced_too(self, abcd_catalog):
        tracer, _result = traced_run(abcd_catalog, workers=0)
        assert tracer.root.find("execute") is not None
        assert tracer.root.find("spool.materialize") is not None

    def test_span_attrs_capture_pipeline_facts(self, abcd_catalog):
        tracer, result = traced_run(abcd_catalog)
        root = tracer.root
        assert root.attrs["machines"] == MACHINES
        assert root.find("parse").attrs["statements"] > 0
        assert root.find("optimize.phase2").attrs["cost"] == pytest.approx(
            result.optimization.details.phase2_cost
        )
        cut = root.find("stage_graph.cut")
        assert cut.attrs["vertices"] == len(result.metrics.vertices)

    def test_workers_recorded_as_bus_event_not_span_attr(self,
                                                         abcd_catalog):
        tracer, _result = traced_run(abcd_catalog, workers=2)
        assert "workers" not in tracer.root.attrs
        configs = tracer.bus.of_kind("exec.config")
        assert [e.get("workers") for e in configs] == [2]


class TestSharedBus:
    def test_metrics_published_on_the_tracer_bus(self, abcd_catalog):
        tracer, result = traced_run(abcd_catalog)
        counters = {e.get("name"): e.get("value")
                    for e in tracer.bus.of_kind("exec.counter")}
        assert counters["rows_output"] == result.metrics.rows_output
        vertex_events = tracer.bus.of_kind("exec.vertex")
        assert {e.get("vertex") for e in vertex_events} == set(
            result.metrics.vertices
        )

    def test_optimizer_trace_events_flow_into_the_shared_bus(
            self, abcd_catalog, small_config):
        config = dataclasses.replace(small_config, trace=True)
        tracer, result = traced_run(abcd_catalog, config=config)
        engine_trace = result.optimization.details.engine.trace
        assert engine_trace.bus is tracer.bus
        shared = tracer.bus.of_type(TraceEvent)
        assert shared and shared == engine_trace.events
        assert engine_trace.rule_counts()

    def test_without_config_trace_no_engine_events(self, abcd_catalog):
        tracer, result = traced_run(abcd_catalog)
        assert result.optimization.details.engine.trace is None
        assert tracer.bus.of_type(TraceEvent) == []


class TestStructuralDeterminism:
    @pytest.mark.parametrize("name", ["S1", "S3"])
    def test_same_structure_across_worker_counts(self, name, abcd_catalog):
        one, result_one = traced_run(abcd_catalog, workers=1,
                                     script=PAPER_SCRIPTS[name])
        four, result_four = traced_run(abcd_catalog, workers=4,
                                       script=PAPER_SCRIPTS[name])
        assert result_one.outputs.keys() == result_four.outputs.keys()
        assert one.root.structure() == four.root.structure()

    def test_repeated_runs_identical(self, abcd_catalog):
        a, _ = traced_run(abcd_catalog)
        b, _ = traced_run(abcd_catalog)
        assert a.root.structure() == b.root.structure()
        assert render_span_tree(a, include_timing=False) == \
            render_span_tree(b, include_timing=False)


class TestEndToEndExports:
    def test_jsonl_round_trip_of_a_real_run(self, abcd_catalog):
        tracer, _result = traced_run(abcd_catalog)
        loaded = load_jsonl(to_jsonl(tracer))
        assert loaded.render() == render_span_tree(tracer)
        assert len(loaded.events) == len(tracer.bus.events)

    def test_chrome_round_trip_of_a_real_run(self, abcd_catalog):
        tracer, _result = traced_run(abcd_catalog)
        loaded = load_chrome_trace(to_chrome_trace(tracer))
        assert loaded.render(include_timing=False) == render_span_tree(
            tracer, include_timing=False
        )
        doc = json.loads(to_chrome_trace(tracer))
        assert all(e["ts"] >= 0 for e in doc["traceEvents"])


class TestFaultTracing:
    def test_retries_emit_scheduler_retry_events(self, abcd_catalog):
        tracer = Tracer()
        result = execute_script(
            S1, abcd_catalog, machines=MACHINES, workers=2, rows=300,
            failure_rate=0.4, failure_seed=7, max_retries=10,
            tracer=tracer,
        )
        if result.metrics.task_retries == 0:
            pytest.skip("seed produced no failures")
        retries = tracer.bus.of_kind("scheduler.retry")
        assert len(retries) == result.metrics.task_retries
        total_span_retries = sum(
            s.attrs.get("retries", 0)
            for s in tracer.root.walk()
            if s.name.startswith("scheduler.vertex/")
        )
        assert total_span_retries == result.metrics.task_retries


@pytest.fixture
def workspace(tmp_path, abcd_catalog):
    script = tmp_path / "s.scope"
    script.write_text(S1)
    catalog_path = tmp_path / "c.json"
    catalog_path.write_text(catalog_to_json(abcd_catalog))
    return script, catalog_path


class TestCli:
    def test_profile_subcommand(self, workspace, tmp_path, capsys):
        from repro.cli import main

        script, catalog_path = workspace
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        assert main([
            "profile", str(script), "--catalog", str(catalog_path),
            "--machines", str(MACHINES), "--rows", "300",
            "--trace-out", str(jsonl), "--chrome-out", str(chrome),
        ]) == 0
        out = capsys.readouterr().out
        assert "--- span tree ---" in out
        assert "run [" in out
        assert "q-error" in out
        assert "hotspots by simulated makespan share" in out
        loaded = load_jsonl(jsonl.read_text())
        assert [r.name for r in loaded.roots] == ["run"]
        assert load_chrome_trace(chrome.read_text()).roots

    def test_run_profile_flag(self, workspace, tmp_path, capsys):
        from repro.cli import main

        script, catalog_path = workspace
        jsonl = tmp_path / "trace.jsonl"
        assert main([
            "run", str(script), "--catalog", str(catalog_path),
            "--machines", str(MACHINES), "--rows", "300",
            "--workers", "2", "--profile", "--trace-out", str(jsonl),
        ]) == 0
        out = capsys.readouterr().out
        assert "--- span tree ---" in out
        assert "cardinality feedback" in out
        assert "verified: results identical" in out
        assert jsonl.exists()

    def test_run_without_flags_records_nothing(self, workspace, capsys):
        from repro.cli import main

        script, catalog_path = workspace
        assert main([
            "run", str(script), "--catalog", str(catalog_path),
            "--machines", str(MACHINES), "--rows", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "span tree" not in out
