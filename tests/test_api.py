"""Tests for the top-level public API surface."""

import pytest

import repro
from repro import (
    Catalog,
    Column,
    ColumnType,
    OptimizationResult,
    Schema,
    compile_script,
    optimize_plan,
    optimize_script,
)
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.expressions import Aggregate, AggFunc, ColumnRef
from repro.plan.logical import (
    LogicalExtract,
    LogicalGroupBy,
    LogicalOutput,
    LogicalPlan,
    LogicalSequence,
)
from repro.workloads.paper_scripts import S1


class TestExports:
    def test_dunder_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__


class TestOptimizePlan:
    def hand_built_dag(self, catalog):
        """Build S1's DAG programmatically (no parser)."""
        stats = catalog.lookup("test.log")
        extract = LogicalPlan(
            LogicalExtract(stats.file_id, "test.log", "E", stats.schema), []
        )
        shared = LogicalPlan(
            LogicalGroupBy(
                ("A", "B", "C"),
                (Aggregate(AggFunc.SUM, ColumnRef("D"), "S"),),
            ),
            [extract],
        )
        consumer1 = LogicalPlan(
            LogicalGroupBy(
                ("A", "B"), (Aggregate(AggFunc.SUM, ColumnRef("S"), "S1"),)
            ),
            [shared],
        )
        consumer2 = LogicalPlan(
            LogicalGroupBy(
                ("B", "C"), (Aggregate(AggFunc.SUM, ColumnRef("S"), "S1"),)
            ),
            [shared],
        )
        out1 = LogicalPlan(LogicalOutput("r1"), [consumer1])
        out2 = LogicalPlan(LogicalOutput("r2"), [consumer2])
        return LogicalPlan(LogicalSequence(2), [out1, out2])

    def test_optimize_hand_built_dag(self, abcd_catalog):
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        dag = self.hand_built_dag(abcd_catalog)
        result = optimize_plan(dag, abcd_catalog, config)
        assert isinstance(result, OptimizationResult)
        assert result.exploited_cse
        assert len(result.details.report.shared_groups) == 1

    def test_hand_built_equals_parsed(self, abcd_catalog):
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        by_hand = optimize_plan(
            self.hand_built_dag(abcd_catalog), abcd_catalog, config
        )
        parsed = optimize_script(S1, abcd_catalog, config)
        assert by_hand.cost == pytest.approx(parsed.cost)

    def test_prune_flag(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,B,C,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(B) AS SB FROM R0 GROUP BY A;\n"
            'OUTPUT R TO "o";'
        )
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        pruned = optimize_script(text, abcd_catalog, config, prune=True)
        unpruned = optimize_script(text, abcd_catalog, config, prune=False)
        assert pruned.cost < unpruned.cost


class TestResultObject:
    def test_fields(self, abcd_catalog):
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        result = optimize_script(S1, abcd_catalog, config)
        assert result.cost > 0
        assert result.plan is not None
        assert "Spool" in result.explain()
        assert "shared groups" in result.cse_summary()

    def test_schema_helpers(self):
        schema = Schema([Column("A", ColumnType.INT)])
        assert schema.names == ("A",)

    def test_default_config(self, abcd_catalog):
        # No config: library defaults apply.
        result = optimize_script(S1, abcd_catalog)
        assert result.plan is not None
