"""Property-based equivalence: windowed admission == one-at-a-time.

Hypothesis generates arbitrary arrival schedules — which scripts, from
which tenants, split across which windows — and the property holds
that every caller's outputs through streaming admission are
byte-identical (``canonical_bytes``) to submitting that script alone
through ``QueryService.execute``, while every vertex of every shared
window run launches exactly once (``serves`` attribution proves which
callers it fed).

The whole suite runs on a :class:`~repro.service.ManualClock`; the
only thread is the test's own.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.columns import ColumnType
from repro.scope.catalog import Catalog
from repro.service import (
    AdmissionConfig,
    AdmissionController,
    ManualClock,
    QueryService,
)
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import PAPER_SCRIPTS

WINDOW = 1.0

#: The generated corpus: the paper scripts plus a renamed S1 (dedup
#: fodder — identical canonical DAG) and a distinct small aggregate.
SCRIPTS = {
    "S1": PAPER_SCRIPTS["S1"],
    "S2": PAPER_SCRIPTS["S2"],
    "S4": PAPER_SCRIPTS["S4"],
    "S1x": PAPER_SCRIPTS["S1"].replace("R0", "Z0").replace("R1", "Z1")
                              .replace("R2", "Z2"),
    "AGG": """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A;
OUTPUT R TO "agg.out";
""",
}
NAMES = sorted(SCRIPTS)


def _make_catalog() -> Catalog:
    catalog = Catalog()
    columns = [(name, ColumnType.INT) for name in ("A", "B", "C", "D")]
    ndv = {"A": 7, "B": 5, "C": 6, "D": 50}
    catalog.register_file("test.log", columns, rows=2_000, ndv=ndv)
    catalog.register_file("test2.log", columns, rows=2_000, ndv=ndv)
    return catalog


CATALOG = _make_catalog()
CONFIG = OptimizerConfig(cost_params=CostParams(machines=4))
FILES = generate_for_catalog(CATALOG, seed=13)


@pytest.fixture(scope="module")
def baselines():
    """One-at-a-time reference outputs, canonical bytes per path."""
    service = QueryService(CATALOG, CONFIG)
    result = {}
    for name, text in SCRIPTS.items():
        run = service.execute(text, workers=0, files=FILES)
        result[name] = {
            path: data.canonical_bytes()
            for path, data in run.outputs.items()
        }
    return result


#: An arrival schedule: windows, each a non-empty list of
#: (script, tenant) arrivals.
schedules = st.lists(
    st.lists(
        st.tuples(st.sampled_from(NAMES), st.integers(0, 2)),
        min_size=1, max_size=5,
    ),
    min_size=1, max_size=3,
)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule=schedules)
def test_windowed_admission_equals_one_at_a_time(schedule, baselines):
    service = QueryService(CATALOG, CONFIG)
    clock = ManualClock()
    controller = AdmissionController(
        service, clock=clock, files=FILES, workers=1,
        config=AdmissionConfig(window=WINDOW),
    )
    tickets = []
    for window in schedule:
        for name, tenant in window:
            tickets.append((name, controller.submit_nowait(
                SCRIPTS[name], tenant=f"t{tenant}"
            )))
        clock.advance(WINDOW)
        flushed = controller.pump()
        # Dedup means at most one execution per distinct DAG; every
        # arrival in this window must nevertheless resolve.
        assert flushed <= len(window)
        assert all(t.done() for _, t in tickets)

    runs = []
    for name, ticket in tickets:
        result = ticket.result(timeout=0)
        # Byte-identical to the one-at-a-time submission of the same
        # script.
        want = baselines[name]
        assert set(result.outputs) == set(want)
        for path in want:
            assert result.outputs[path].canonical_bytes() == want[path], (
                f"{name}:{path} differs between admission and direct"
            )
        if not any(result.run is run for run in runs):
            runs.append(result.run)

    # Shared vertices launch exactly once per window run, and serve
    # only labels of that run.
    for run in runs:
        for vertex in run.stage_graph.vertices:
            stats = run.metrics.vertices[vertex.name]
            assert stats.launches == 1, (
                f"vertex {vertex.name} launched {stats.launches} times"
            )
        for vertex in run.shared_vertices():
            labels = {p.split("/", 1)[0] for p in vertex.serves}
            assert labels <= set(run.submit.labels)
            assert len(labels) > 1


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    order=st.permutations(NAMES),
    split=st.integers(0, len(NAMES)),
)
def test_any_grouping_of_the_corpus_is_equivalent(order, split, baselines):
    """Two windows cut anywhere through any permutation of the corpus:
    per-script outputs never depend on grouping or arrival order."""
    service = QueryService(CATALOG, CONFIG)
    clock = ManualClock()
    controller = AdmissionController(
        service, clock=clock, files=FILES, workers=1,
        config=AdmissionConfig(window=WINDOW),
    )
    tickets = []
    for window in (order[:split], order[split:]):
        if not window:
            clock.advance(WINDOW)
            assert controller.pump() == 0
            continue
        for name in window:
            tickets.append((name, controller.submit_nowait(SCRIPTS[name])))
        clock.advance(WINDOW)
        controller.pump()
    for name, ticket in tickets:
        result = ticket.result(timeout=0)
        for path, want in baselines[name].items():
            assert result.outputs[path].canonical_bytes() == want
