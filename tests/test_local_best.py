"""Tests for the related-work (local-best sharing) baseline.

The paper's Section I argument, quantified: sharing with locally optimal
properties beats no sharing, but the cost-based phase 2 beats both.
"""

import pytest

from repro.cse.pipeline import (
    optimize_conventional,
    optimize_local_best,
    optimize_with_cse,
)
from repro.exec import Cluster, PlanExecutor
from repro.naive import NaiveEvaluator
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.physical import PhysSpool
from repro.scope.compiler import compile_script
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import PAPER_SCRIPTS, S1


def all_three(text, catalog):
    config = OptimizerConfig(cost_params=CostParams(machines=4))
    logical = compile_script(text, catalog)
    return (
        optimize_conventional(logical, catalog, config),
        optimize_local_best(logical, catalog, config),
        optimize_with_cse(logical, catalog, config),
    )


class TestOrdering:
    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_cost_ordering(self, name, abcd_catalog):
        conventional, local, full = all_three(
            PAPER_SCRIPTS[name], abcd_catalog
        )
        assert local.cost <= conventional.cost * (1 + 1e-9)
        assert full.cost <= local.cost * (1 + 1e-9)

    def test_s1_local_best_strictly_between(self, abcd_catalog):
        """On S1 the local choice (a full consumer key pair) forces one
        consumer to re-shuffle the shared result: strictly worse than
        the cost-based choice, strictly better than no sharing."""
        conventional, local, full = all_three(S1, abcd_catalog)
        assert full.cost < local.cost < conventional.cost


class TestStructure:
    def test_local_best_shares_via_spool(self, abcd_catalog):
        _, local, _ = all_three(S1, abcd_catalog)
        assert local.plan.find_all(PhysSpool)

    def test_local_best_layout_differs_from_cost_based(self, abcd_catalog):
        _, local, full = all_three(S1, abcd_catalog)
        local_spool = local.plan.find_all(PhysSpool)[0]
        full_spool = full.plan.find_all(PhysSpool)[0]
        # Cost-based phase 2 picks the single-column {B}; the local
        # optimizer prefers a full consumer key pair.
        assert full_spool.props.partitioning.columns <= {"B"}
        assert len(local_spool.props.partitioning.columns) >= 2


class TestCorrectness:
    def test_local_best_plan_matches_oracle(self, abcd_catalog):
        _, local, _ = all_three(S1, abcd_catalog)
        files = generate_for_catalog(abcd_catalog, seed=41)
        cluster = Cluster(machines=4)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(local.plan)
        expected = NaiveEvaluator(files).run(
            compile_script(S1, abcd_catalog)
        )
        for path, want in expected.items():
            assert outputs[path].sorted_rows() == want
