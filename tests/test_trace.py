"""Tests for the optimizer trace facility."""

import dataclasses

import pytest

from repro.api import optimize_script
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.optimizer.trace import OptimizerTrace, render_trace
from repro.workloads.paper_scripts import S1


@pytest.fixture
def traced_result(abcd_catalog):
    config = OptimizerConfig(
        cost_params=CostParams(machines=4), trace=True
    )
    return optimize_script(S1, abcd_catalog, config)


class TestCollection:
    def test_disabled_by_default(self, abcd_catalog):
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        result = optimize_script(S1, abcd_catalog, config)
        assert result.details.engine.trace is None

    def test_rounds_traced_with_costs(self, traced_result):
        trace = traced_result.details.engine.trace
        rounds = trace.rounds()
        assert len(rounds) == traced_result.details.engine.stats.rounds
        assert all(e.cost is not None for e in rounds)
        # The winning round's cost matches the chosen phase-2 plan.
        best = min(e.cost for e in rounds)
        assert best == pytest.approx(traced_result.details.phase2_cost)

    def test_rules_traced(self, traced_result):
        trace = traced_result.details.engine.trace
        counts = trace.rule_counts()
        assert counts.get("split-groupby", 0) >= 1

    def test_groups_traced_per_requirement(self, traced_result):
        trace = traced_result.details.engine.trace
        groups = trace.groups()
        assert groups
        # Every traced group event carries the requirement it was
        # optimized under.
        assert all("part=" in e.detail for e in groups)


class TestRendering:
    def test_render_sections(self, traced_result):
        text = render_trace(traced_result.details.engine.trace)
        assert "transformation rules fired" in text
        assert "phase-2 rounds" in text
        assert "group optimizations" in text
        assert "split-groupby" in text

    def test_render_empty_trace(self):
        text = render_trace(OptimizerTrace())
        assert "(none)" in text

    def test_render_caps_group_listing(self, traced_result):
        trace = traced_result.details.engine.trace
        text = render_trace(trace, max_groups=2)
        assert "more" in text


class TestCliIntegration:
    def test_explain_trace_flag(self, tmp_path, abcd_catalog, capsys):
        from repro.cli import main
        from repro.scope.statistics import catalog_to_json

        script = tmp_path / "s.scope"
        script.write_text(S1)
        catalog_path = tmp_path / "c.json"
        catalog_path.write_text(catalog_to_json(abcd_catalog))
        assert main(["explain", str(script), "--catalog", str(catalog_path),
                     "--machines", "4", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "phase-2 rounds" in out
        assert "transformation rules fired" in out
