"""Acceptance differential: telemetry must never change results.

Every regression-corpus script, the paper scripts S1–S4, and the
large generated scripts LS1/LS2 executed through a
:class:`~repro.service.QueryService` *with* a
:class:`~repro.obs.MetricsCollector` attached must produce outputs
byte-identical (``canonical_bytes``) to the same execution with
telemetry disabled — at workers 1 and 4 and on both execution
backends.  The collector is a pure observer: it subscribes to the
EventBus and touches nothing on the execution path.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.obs import MetricsCollector
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.scope.statistics import catalog_from_json
from repro.service import ManualClock, QueryService
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.large_scripts import make_large_script
from repro.workloads.paper_scripts import PAPER_SCRIPTS

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS_SCRIPTS = sorted(CORPUS_DIR.glob("*.scope"))
MATRIX = [(1, "row"), (4, "row"), (1, "columnar"), (4, "columnar")]
MATRIX_IDS = [f"w{w}-{b}" for w, b in MATRIX]


def _config() -> OptimizerConfig:
    return OptimizerConfig(cost_params=CostParams(machines=4))


def _run_both_and_compare(texts, catalog, files, *, workers, backend):
    plain = QueryService(catalog, _config())
    measured = QueryService(catalog, _config(),
                            metrics=MetricsCollector(clock=ManualClock()))
    for text in texts:
        base = plain.execute(text, workers=workers, backend=backend,
                             files=files)
        run = measured.execute(text, workers=workers, backend=backend,
                               files=files)
        assert set(run.outputs) == set(base.outputs)
        for path in base.outputs:
            assert (run.outputs[path].canonical_bytes()
                    == base.outputs[path].canonical_bytes()), (
                f"telemetry changed output {path} "
                f"(workers={workers}, backend={backend})"
            )
    # The observer actually observed: executor counters flowed.
    snapshot = measured.metrics_snapshot()
    rows = snapshot["metrics"]["repro_exec_rows_total"]["samples"]
    assert rows, "collector saw no exec.counter events"
    assert not plain.bus.of_kind("exec.counter"), (
        "disabled-path bus must stay free of exec events"
    )


@pytest.fixture(scope="module")
def corpus_catalog():
    return catalog_from_json((CORPUS_DIR / "catalog.json").read_text())


@pytest.mark.parametrize("workers,backend", MATRIX, ids=MATRIX_IDS)
def test_corpus_with_metrics_matches_without(
        workers, backend, corpus_catalog):
    texts = [p.read_text() for p in CORPUS_SCRIPTS]
    files = generate_for_catalog(corpus_catalog, seed=3)
    _run_both_and_compare(texts, corpus_catalog, files,
                          workers=workers, backend=backend)


@pytest.mark.parametrize("workers,backend", MATRIX, ids=MATRIX_IDS)
def test_paper_scripts_with_metrics_matches_without(
        workers, backend, abcd_catalog):
    texts = [PAPER_SCRIPTS[name] for name in sorted(PAPER_SCRIPTS)]
    files = generate_for_catalog(abcd_catalog, seed=7)
    _run_both_and_compare(texts, abcd_catalog, files,
                          workers=workers, backend=backend)


@pytest.mark.parametrize("name", ["LS1", "LS2"])
@pytest.mark.parametrize("workers,backend", MATRIX, ids=MATRIX_IDS)
def test_large_scripts_with_metrics_matches_without(
        workers, backend, name):
    text, catalog, _spec = make_large_script(name)
    files = generate_for_catalog(catalog, seed=5, rows_override=120)
    _run_both_and_compare([text], catalog, files,
                          workers=workers, backend=backend)
