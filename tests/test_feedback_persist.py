"""Persistence tests for the learned-statistics feedback store.

The store snapshot is a versioned JSON file written atomically; a
controller with ``FeedbackConfig(persist_path=...)`` saves after every
capture and gate cycle and reloads on construction, so corrections
survive a service restart without re-learning.
"""

from __future__ import annotations

import json

import pytest

from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.service import QueryService
from repro.stats import FeedbackStore, FragmentObservation
from repro.stats.feedback import FeedbackConfig, FeedbackController
from repro.workloads.skew import SKEW_SCENARIOS


def _obs(fp, estimated, actual, paths=("a.log",)):
    return FragmentObservation(
        fingerprint=fp, estimated=estimated, actual=actual, paths=paths
    )


class TestStoreRoundTrip:
    def test_save_load_preserves_everything(self, tmp_path):
        store = FeedbackStore()
        store.record([_obs("f1", 100.0, 10), _obs("f1", 100.0, 30),
                      _obs("f2", 5.0, 500, paths=("a.log", "b.log"))])
        store.publish(store.candidates(2.0))
        path = str(tmp_path / "feedback.json")
        store.save(path)

        loaded = FeedbackStore.load(path)
        assert loaded.to_json() == store.to_json()
        assert loaded.version == store.version
        # Aggregates intact, not just raw counters.
        entry = loaded.fragment("f1")
        assert entry.observations == 2
        assert entry.mean_actual == 20.0
        assert entry.last_estimated == 100.0
        # Active corrections survive with their version.
        active = loaded.active()
        assert active.version == store.active().version
        assert active.rows_for("f2") == store.active().rows_for("f2")

    def test_save_is_versioned_json(self, tmp_path):
        store = FeedbackStore()
        store.record([_obs("f1", 10.0, 20)])
        path = tmp_path / "feedback.json"
        store.save(str(path))
        doc = json.loads(path.read_text())
        assert doc["format"] == FeedbackStore.FORMAT
        assert doc["fragments"][0]["fingerprint"] == "f1"
        assert not (tmp_path / "feedback.json.tmp").exists()

    def test_unknown_format_raises(self, tmp_path):
        path = tmp_path / "feedback.json"
        path.write_text(json.dumps({"format": 999, "fragments": []}))
        with pytest.raises(ValueError, match="format 999"):
            FeedbackStore.load(str(path))

    def test_missing_format_raises(self, tmp_path):
        path = tmp_path / "feedback.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="format None"):
            FeedbackStore.load(str(path))

    def test_empty_store_round_trips(self, tmp_path):
        path = str(tmp_path / "feedback.json")
        FeedbackStore().save(path)
        loaded = FeedbackStore.load(path)
        assert not loaded.fragments()
        assert not loaded.active()


def _scenario_config(persist_path):
    scenario = SKEW_SCENARIOS["filter_selectivity_skew"]
    feedback = dict(scenario.feedback)
    feedback["persist_path"] = persist_path
    return scenario, FeedbackConfig(**feedback)


class TestControllerPersistence:
    def test_learning_survives_restart(self, tmp_path):
        """Run a skew scenario to learn corrections, restart the
        service on the same persist path, and check the corrections are
        active without re-observing anything."""
        path = str(tmp_path / "feedback.json")
        scenario, config = _scenario_config(path)
        opt = OptimizerConfig(cost_params=CostParams(machines=4))

        service = QueryService(scenario.build_catalog(), opt,
                               feedback=config)
        files = scenario.generate_files()
        service.execute(scenario.script, workers=2, files=files)
        learned = service.feedback.store.active()
        assert learned, "scenario must publish at least one correction"

        restarted = QueryService(scenario.build_catalog(), opt,
                                 feedback=config)
        revived = restarted.feedback.store.active()
        assert revived.version == learned.version
        assert {c.fingerprint for c in revived.corrections()} == {
            c.fingerprint for c in learned.corrections()
        }
        for c in learned.corrections():
            assert revived.rows_for(c.fingerprint) == c.rows

    def test_no_file_until_first_observation(self, tmp_path):
        path = tmp_path / "feedback.json"
        scenario, config = _scenario_config(str(path))
        QueryService(scenario.build_catalog(),
                     OptimizerConfig(cost_params=CostParams(machines=4)),
                     feedback=config)
        assert not path.exists()

    def test_manual_controller_saves_on_step(self, tmp_path):
        path = tmp_path / "feedback.json"

        class _Bus:
            def publish(self, event):
                pass

        class _Service:
            bus = _Bus()

            def apply_corrections(self, store, passed):
                store.publish(passed)
                return []

        controller = FeedbackController(
            _Service(),
            FeedbackConfig(persist_path=str(path), qerror_threshold=2.0),
        )
        controller.store.record([_obs("f1", 100.0, 10)])
        controller.step()
        assert path.exists()
        assert FeedbackStore.load(str(path)).active().rows_for("f1") == 10.0
