"""Golden-text tests for the optimizer-trace and vertex-table renderers.

Both renderers are fed synthetic, fully deterministic inputs so the
expected text can live inline — unlike the plan snapshots these don't
need ``--update-golden`` plumbing.
"""

import textwrap

from repro.exec.metrics import ExecutionMetrics, VertexStats
from repro.optimizer.trace import OptimizerTrace, render_trace


def make_trace() -> OptimizerTrace:
    trace = OptimizerTrace()
    trace.rule_fired(3, "split-groupby", 2)
    trace.rule_fired(4, "split-groupby", 1)
    trace.rule_fired(4, "swap join inputs", 1)
    trace.group_optimized(3, "part=A", phase=1, cost=120.0)
    trace.group_optimized(4, "part=B", phase=2, cost=None)
    trace.group_optimized(5, "part=C", phase=2, cost=80.0)
    trace.round_evaluated(6, {3: "req(A)", 4: "req(B)"}, phase=2,
                          cost=200.0)
    trace.round_evaluated(6, {3: "req(C)"}, phase=2, cost=None)
    return trace


class TestRenderTraceGolden:
    def test_populated(self):
        expected = textwrap.dedent("""\
            === transformation rules fired ===
              split-groupby                2×
              swap join inputs             1×
            === phase-2 rounds (2) ===
              LCA #6: {#3→req(A), #4→req(B)} -> 200
              LCA #6: {#3→req(C)} -> infeasible
            === group optimizations (3, showing ≤40) ===
              phase 1 group #3 [part=A] -> 120
              phase 2 group #4 [part=B] -> no plan
              phase 2 group #5 [part=C] -> 80""")
        assert render_trace(make_trace()) == expected

    def test_empty(self):
        expected = textwrap.dedent("""\
            === transformation rules fired ===
              (none)
            === phase-2 rounds (0) ===
            === group optimizations (0, showing ≤40) ===""")
        assert render_trace(OptimizerTrace()) == expected

    def test_max_groups_truncation(self):
        expected_tail = textwrap.dedent("""\
            === group optimizations (3, showing ≤2) ===
              phase 1 group #3 [part=A] -> 120
              phase 2 group #4 [part=B] -> no plan
              ... 1 more""")
        text = render_trace(make_trace(), max_groups=2)
        assert text.endswith(expected_tail)

    def test_rule_counts_survive_spaces_in_rule_names(self):
        # ``rule_name`` is structured; display text with spaces must not
        # split into bogus count keys.
        counts = make_trace().rule_counts()
        assert counts == {"split-groupby": 2, "swap join inputs": 1}


class TestVertexTableGolden:
    def test_populated_including_missing_estimate(self):
        metrics = ExecutionMetrics()
        for stats in [
            VertexStats(vertex="V00:Extract", launches=1, tasks=2,
                        retries=1, rows_in=0, rows_out=1000,
                        estimated_rows=2000.0, wall_seconds=0.0042),
            VertexStats(vertex="V01:Sequence", launches=1, tasks=1,
                        rows_in=1000, rows_out=0, estimated_rows=0.0,
                        wall_seconds=0.0001),
        ]:
            metrics.vertices[stats.vertex] = stats
        expected = textwrap.dedent("""\
            vertex                       launch tasks retry     rows in    rows out est ratio       ms
            ------------------------------------------------------------------------------------------
            V00:Extract                       1     2     1           0       1,000      0.50      4.2
            V01:Sequence                      1     1     0       1,000           0       n/a      0.1""")
        assert metrics.vertex_table() == expected

    def test_empty_is_none(self):
        assert ExecutionMetrics().vertex_table() is None
