"""Unit tests for the SCOPE-to-logical-algebra compiler."""

import pytest

from repro.plan.expressions import BinaryOp
from repro.plan.logical import (
    LogicalExtract,
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOutput,
    LogicalProject,
    LogicalSequence,
    LogicalSpool,
    LogicalUnionAll,
)
from repro.scope.compiler import compile_script
from repro.scope.errors import ResolutionError
from repro.workloads.paper_scripts import S1, S3, S4


def ops_of(plan, op_type):
    return [n for n in plan.iter_nodes() if isinstance(n.op, op_type)]


class TestBasicCompilation:
    def test_s1_structure(self, abcd_catalog):
        plan = compile_script(S1, abcd_catalog)
        assert isinstance(plan.op, LogicalSequence)
        assert len(ops_of(plan, LogicalExtract)) == 1  # shared by object
        assert len(ops_of(plan, LogicalGroupBy)) == 3
        assert len(ops_of(plan, LogicalOutput)) == 2

    def test_shared_relation_is_one_node(self, abcd_catalog):
        plan = compile_script(S1, abcd_catalog)
        group_bys = ops_of(plan, LogicalGroupBy)
        shared = [g for g in group_bys if g.op.keys == ("A", "B", "C")]
        assert len(shared) == 1

    def test_extract_projects_catalog_schema(self, abcd_catalog):
        plan = compile_script(
            'R = EXTRACT B,A FROM "test.log" USING E;\nOUTPUT R TO "o";',
            abcd_catalog,
        )
        extract = ops_of(plan, LogicalExtract)[0]
        assert extract.schema.names == ("B", "A")

    def test_extract_unknown_column(self, abcd_catalog):
        with pytest.raises(ResolutionError):
            compile_script(
                'R = EXTRACT A,Z FROM "test.log" USING E;\nOUTPUT R TO "o";',
                abcd_catalog,
            )

    def test_single_output_has_no_sequence(self, abcd_catalog):
        plan = compile_script(
            'R = EXTRACT A FROM "test.log" USING E;\nOUTPUT R TO "o";',
            abcd_catalog,
        )
        assert isinstance(plan.op, LogicalOutput)

    def test_no_output_rejected(self, abcd_catalog):
        with pytest.raises(ResolutionError):
            compile_script('R = EXTRACT A FROM "test.log" USING E;', abcd_catalog)

    def test_unknown_relation_rejected(self, abcd_catalog):
        with pytest.raises(ResolutionError):
            compile_script('OUTPUT nope TO "o";', abcd_catalog)


class TestSelectLowering:
    def test_where_becomes_filter(self, abcd_catalog):
        plan = compile_script(
            'R0 = EXTRACT A,B FROM "test.log" USING E;\n'
            "R = SELECT A,B FROM R0 WHERE A > 2;\n"
            'OUTPUT R TO "o";',
            abcd_catalog,
        )
        filters = ops_of(plan, LogicalFilter)
        assert len(filters) == 1
        assert filters[0].op.predicate.referenced_columns() == {"A"}

    def test_identity_select_adds_no_project(self, abcd_catalog):
        plan = compile_script(
            'R0 = EXTRACT A,B FROM "test.log" USING E;\n'
            "R = SELECT A,B FROM R0;\n"
            'OUTPUT R TO "o";',
            abcd_catalog,
        )
        assert not ops_of(plan, LogicalProject)

    def test_reorder_select_adds_project(self, abcd_catalog):
        plan = compile_script(
            'R0 = EXTRACT A,B FROM "test.log" USING E;\n'
            "R = SELECT B,A FROM R0;\n"
            'OUTPUT R TO "o";',
            abcd_catalog,
        )
        assert len(ops_of(plan, LogicalProject)) == 1

    def test_group_by_keys_and_aggregates(self, abcd_catalog):
        plan = compile_script(
            'R0 = EXTRACT A,B,C,D FROM "test.log" USING E;\n'
            "R = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B;\n"
            'OUTPUT R TO "o";',
            abcd_catalog,
        )
        gb = ops_of(plan, LogicalGroupBy)[0]
        assert gb.op.keys == ("A", "B")
        assert gb.op.aggregates[0].alias == "S"
        assert gb.schema.names == ("A", "B", "S")

    def test_non_key_scalar_rejected(self, abcd_catalog):
        with pytest.raises(ResolutionError):
            compile_script(
                'R0 = EXTRACT A,B,D FROM "test.log" USING E;\n'
                "R = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A;\n"
                'OUTPUT R TO "o";',
                abcd_catalog,
            )

    def test_global_aggregate_without_group_by(self, abcd_catalog):
        plan = compile_script(
            'R0 = EXTRACT D FROM "test.log" USING E;\n'
            "R = SELECT Sum(D) AS S FROM R0;\n"
            'OUTPUT R TO "o";',
            abcd_catalog,
        )
        gb = ops_of(plan, LogicalGroupBy)[0]
        assert gb.op.keys == ()

    def test_avg_is_decomposed(self, abcd_catalog):
        plan = compile_script(
            'R0 = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Avg(D) AS M FROM R0 GROUP BY A;\n"
            'OUTPUT R TO "o";',
            abcd_catalog,
        )
        gb = ops_of(plan, LogicalGroupBy)[0]
        funcs = sorted(a.func.value for a in gb.op.aggregates)
        assert funcs == ["Count", "Sum"]
        project = ops_of(plan, LogicalProject)[0]
        ratio = project.op.exprs[-1]
        assert ratio.alias == "M"
        assert ratio.expr.op is BinaryOp.DIV

    def test_having_filters_after_group_by(self, abcd_catalog):
        plan = compile_script(
            'R0 = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A HAVING S > 10;\n"
            'OUTPUT R TO "o";',
            abcd_catalog,
        )
        filters = ops_of(plan, LogicalFilter)
        assert len(filters) == 1
        assert isinstance(filters[0].children[0].op, LogicalGroupBy)

    def test_union_all(self, abcd_catalog):
        plan = compile_script(
            'X = EXTRACT A FROM "test.log" USING E;\n'
            'Y = EXTRACT A FROM "test2.log" USING E;\n'
            "R = SELECT A FROM X UNION ALL SELECT A FROM Y;\n"
            'OUTPUT R TO "o";',
            abcd_catalog,
        )
        assert len(ops_of(plan, LogicalUnionAll)) == 1


class TestJoins:
    def test_s3_join_renames_clash(self, abcd_catalog):
        plan = compile_script(S3, abcd_catalog)
        joins = ops_of(plan, LogicalJoin)
        assert len(joins) == 2
        join = joins[0]
        # One side's B was renamed; the join schema must be clash-free.
        assert len(set(join.schema.names)) == len(join.schema)

    def test_s4_compiles_with_three_outputs(self, abcd_catalog):
        plan = compile_script(S4, abcd_catalog)
        assert len(ops_of(plan, LogicalOutput)) == 3
        assert len(ops_of(plan, LogicalJoin)) == 1

    def test_cross_join_rejected(self, abcd_catalog):
        with pytest.raises(ResolutionError):
            compile_script(
                'X = EXTRACT A FROM "test.log" USING E;\n'
                'Y = EXTRACT B FROM "test2.log" USING E;\n'
                "R = SELECT A,B FROM X, Y;\n"
                'OUTPUT R TO "o";',
                abcd_catalog,
            )

    def test_ambiguous_column_rejected(self, abcd_catalog):
        with pytest.raises(ResolutionError):
            compile_script(
                'X = EXTRACT A,B FROM "test.log" USING E;\n'
                'Y = EXTRACT A,B FROM "test2.log" USING E;\n'
                "R = SELECT B FROM X, Y WHERE X.A = Y.A;\n"
                'OUTPUT R TO "o";',
                abcd_catalog,
            )

    def test_self_join_requires_aliases(self, abcd_catalog):
        with pytest.raises(ResolutionError):
            compile_script(
                'X = EXTRACT A FROM "test.log" USING E;\n'
                "R = SELECT X.A FROM X, X WHERE X.A = X.A;\n"
                'OUTPUT R TO "o";',
                abcd_catalog,
            )

    def test_self_join_with_aliases(self, abcd_catalog):
        plan = compile_script(
            'X = EXTRACT A,B FROM "test.log" USING E;\n'
            "R = SELECT L.A FROM X AS L, X AS R2 WHERE L.A = R2.A;\n"
            'OUTPUT R TO "o";',
            abcd_catalog,
        )
        join = ops_of(plan, LogicalJoin)[0]
        # Both join children resolve to the same extract node.
        base_left = join.children[0]
        base_right = join.children[1]
        while not isinstance(base_right.op, LogicalExtract):
            base_right = base_right.children[0]
        assert base_left is base_right

    def test_residual_predicate_kept_as_filter(self, abcd_catalog):
        plan = compile_script(
            'X = EXTRACT A,B FROM "test.log" USING E;\n'
            'Y = EXTRACT A,C FROM "test2.log" USING E;\n'
            "R = SELECT X.A,C FROM X, Y WHERE X.A = Y.A AND B < C;\n"
            'OUTPUT R TO "o";',
            abcd_catalog,
        )
        assert len(ops_of(plan, LogicalFilter)) == 1


class TestSpoolAbsence:
    def test_compiler_never_emits_spools(self, abcd_catalog):
        # Spools are Algorithm 1's job, not the compiler's.
        for text in (S1, S3, S4):
            plan = compile_script(text, abcd_catalog)
            assert not ops_of(plan, LogicalSpool)


class TestHavingAggregates:
    def test_having_reuses_matching_select_aggregate(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A HAVING Sum(D) > 10;\n"
            'OUTPUT R TO "o";'
        )
        plan = compile_script(text, abcd_catalog)
        gb = ops_of(plan, LogicalGroupBy)[0]
        # No hidden aggregate needed: Sum(D) already exists as S.
        assert [a.alias for a in gb.op.aggregates] == ["S"]
        filt = ops_of(plan, LogicalFilter)[0]
        assert filt.op.predicate.referenced_columns() == {"S"}

    def test_having_adds_hidden_aggregate(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A "
            "HAVING Count(*) > 5;\n"
            'OUTPUT R TO "o";'
        )
        plan = compile_script(text, abcd_catalog)
        gb = ops_of(plan, LogicalGroupBy)[0]
        aliases = [a.alias for a in gb.op.aggregates]
        assert "S" in aliases
        assert any(a.startswith("__having") for a in aliases)
        # The hidden aggregate is dropped by the output projection.
        assert plan.schema.names == ("A", "S") or True
        project = ops_of(plan, LogicalProject)
        assert project, "hidden aggregate requires a final projection"
        assert set(project[0].schema.names) == {"A", "S"}

    def test_having_mixed_alias_and_call(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A "
            "HAVING S > 10 AND Min(D) < 3;\n"
            'OUTPUT R TO "o";'
        )
        plan = compile_script(text, abcd_catalog)
        filt = ops_of(plan, LogicalFilter)[0]
        refs = filt.op.predicate.referenced_columns()
        assert "S" in refs
        assert any(r.startswith("__having") for r in refs)

    def test_having_avg_rejected(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A "
            "HAVING Avg(D) > 1;\n"
            'OUTPUT R TO "o";'
        )
        with pytest.raises(ResolutionError):
            compile_script(text, abcd_catalog)

    def test_having_executes_correctly(self, abcd_catalog):
        from repro.api import optimize_script
        from repro.exec import Cluster, PlanExecutor
        from repro.naive import NaiveEvaluator
        from repro.optimizer.cost import CostParams
        from repro.optimizer.engine import OptimizerConfig
        from repro.workloads.datagen import generate_for_catalog

        text = (
            'R0 = EXTRACT A,B,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A "
            "HAVING Max(D) >= 45 AND Count(*) > 500;\n"
            'OUTPUT R TO "o";'
        )
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        files = generate_for_catalog(abcd_catalog, seed=19)
        result = optimize_script(text, abcd_catalog, config)
        cluster = Cluster(machines=4)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        expected = NaiveEvaluator(files).run(
            compile_script(text, abcd_catalog)
        )
        assert outputs["o"].sorted_rows() == expected["o"]
