"""Differential tests for the query service: cached == cold, batched == independent.

Two families, run over every regression-corpus script and the paper
scripts S1–S4 plus the large generated scripts LS1/LS2:

* **Cache differential** — the plan served from a warm cache must be
  *byte-identical* (under the canonical explain rendering) to the plan
  a cold service optimizes, and resubmission must not re-run the
  optimizer.
* **Batch differential** — executing a batch of scripts merged into one
  shared job must produce, per script, byte-identical outputs to
  executing each script independently on the same input data.

Plus the acceptance check of the PR: a batch of two scripts sharing a
subexpression (S1+S2 share their whole first aggregation) records
exactly one launch of the shared spool vertex in scheduler metrics.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.api import execute_script
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.optimizer.explain import explain_normalized
from repro.scope.statistics import catalog_from_json
from repro.service import QueryService
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.large_scripts import make_large_script
from repro.workloads.paper_scripts import PAPER_SCRIPTS

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS_SCRIPTS = sorted(CORPUS_DIR.glob("*.scope"))
MACHINES = 4


def _config() -> OptimizerConfig:
    return OptimizerConfig(cost_params=CostParams(machines=MACHINES))


def assert_cold_equals_warm(text: str, catalog) -> None:
    """One cold service vs a second service submitting twice."""
    cold = QueryService(catalog, _config()).submit(text)
    warm_service = QueryService(catalog, _config())
    warm_service.submit(text)
    warm = warm_service.submit(text)
    assert warm.cache_hit and not cold.cache_hit
    assert warm.fingerprint == cold.fingerprint
    assert explain_normalized(warm.result.plan) == explain_normalized(
        cold.result.plan
    ), "cache-hit plan differs from a cold optimization"
    assert warm_service.stats.optimizations == 1, (
        "resubmission must not re-run the optimizer"
    )


# ---------------------------------------------------------------------------
# Cache differential
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def corpus_catalog():
    return catalog_from_json((CORPUS_DIR / "catalog.json").read_text())


@pytest.mark.parametrize(
    "script_path", CORPUS_SCRIPTS, ids=[p.stem for p in CORPUS_SCRIPTS]
)
def test_corpus_cache_hit_plan_identical(script_path, corpus_catalog):
    assert_cold_equals_warm(script_path.read_text(), corpus_catalog)


@pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
def test_paper_cache_hit_plan_identical(name, abcd_catalog):
    assert_cold_equals_warm(PAPER_SCRIPTS[name], abcd_catalog)


@pytest.mark.parametrize("name", ["LS1", "LS2"])
def test_large_script_cache_hit_plan_identical(name):
    text, catalog, _spec = make_large_script(name)
    assert_cold_equals_warm(text, catalog)


def test_batched_cache_hit_plan_identical(abcd_catalog):
    texts = [PAPER_SCRIPTS["S1"], PAPER_SCRIPTS["S2"]]
    cold = QueryService(abcd_catalog, _config()).submit_many(texts)
    warm_service = QueryService(abcd_catalog, _config())
    warm_service.submit_many(texts)
    warm = warm_service.submit_many(texts)
    assert warm.cache_hit and not cold.cache_hit
    assert explain_normalized(warm.result.plan) == explain_normalized(
        cold.result.plan
    )


# ---------------------------------------------------------------------------
# Batch differential
# ---------------------------------------------------------------------------


def assert_batch_matches_independent(texts, catalog, files, workers=4):
    service = QueryService(catalog, _config())
    batch = service.execute_many(texts, workers=workers, files=files)
    for text, outputs in zip(texts, batch.outputs):
        solo = execute_script(text, catalog, _config(), files=files)
        assert set(outputs) == set(solo.outputs)
        for path in outputs:
            assert (
                outputs[path].canonical_bytes()
                == solo.outputs[path].canonical_bytes()
            ), f"batched output {path} differs from the independent run"


def test_corpus_batch_matches_independent_runs(corpus_catalog):
    texts = [p.read_text() for p in CORPUS_SCRIPTS]
    files = generate_for_catalog(corpus_catalog, seed=3)
    assert_batch_matches_independent(texts, corpus_catalog, files)


def test_paper_batch_matches_independent_runs(abcd_catalog):
    texts = [PAPER_SCRIPTS[name] for name in sorted(PAPER_SCRIPTS)]
    files = generate_for_catalog(abcd_catalog, seed=7)
    assert_batch_matches_independent(texts, abcd_catalog, files)


@pytest.mark.parametrize("name", ["LS1", "LS2"])
def test_large_script_single_batch_matches_independent(name):
    """A one-script batch still goes through merge/split — same outputs."""
    text, catalog, _spec = make_large_script(name)
    files = generate_for_catalog(catalog, seed=5, rows_override=120)
    assert_batch_matches_independent([text], catalog, files)


def test_sequential_batch_matches_scheduler_batch(abcd_catalog):
    texts = [PAPER_SCRIPTS["S1"], PAPER_SCRIPTS["S2"]]
    files = generate_for_catalog(abcd_catalog, seed=7)
    seq = QueryService(abcd_catalog, _config()).execute_many(
        texts, workers=0, files=files
    )
    sched = QueryService(abcd_catalog, _config()).execute_many(
        texts, workers=4, files=files
    )
    for a, b in zip(seq.outputs, sched.outputs):
        assert set(a) == set(b)
        for path in a:
            assert a[path].canonical_bytes() == b[path].canonical_bytes()


# ---------------------------------------------------------------------------
# Shared work executes once (PR acceptance criterion)
# ---------------------------------------------------------------------------


class TestSharedExecution:
    def test_s1_s2_share_one_spool_launch(self, abcd_catalog):
        """S1 and S2 state the same first aggregation over test.log;
        batching them must spool it once, serving both scripts."""
        service = QueryService(abcd_catalog, _config())
        files = generate_for_catalog(abcd_catalog, seed=7)
        run = service.execute_many(
            [PAPER_SCRIPTS["S1"], PAPER_SCRIPTS["S2"]],
            workers=4, files=files,
        )
        shared = run.shared_vertices()
        assert shared, "batch of S1+S2 must contain cross-script vertices"
        spools = [v for v in shared if v.is_spool]
        assert spools, "the shared subexpression must be spooled"
        for vertex in spools:
            labels = {p.split("/", 1)[0] for p in vertex.serves}
            assert labels == {"q0", "q1"}
            stats = run.metrics.vertices[vertex.name]
            assert stats.launches == 1, (
                f"shared vertex {vertex.name} launched {stats.launches} "
                "times; cross-script work must execute once"
            )

    def test_batched_extract_cost_below_independent_sum(self, abcd_catalog):
        """Sharing must show up in measured work: the batch reads the
        shared input once where independent runs read it twice."""
        texts = [PAPER_SCRIPTS["S1"], PAPER_SCRIPTS["S2"]]
        files = generate_for_catalog(abcd_catalog, seed=7)
        batch = QueryService(abcd_catalog, _config()).execute_many(
            texts, workers=4, files=files
        )
        independent = sum(
            execute_script(t, abcd_catalog, _config(),
                           files=files).metrics.rows_extracted
            for t in texts
        )
        assert batch.metrics.rows_extracted < independent
