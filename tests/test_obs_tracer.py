"""Unit tests for the span tracer (`repro.obs.tracer`)."""

import pytest

from repro.obs import NULL_TRACER, EventBus, ObsEvent, Span, Tracer
from repro.obs.tracer import _NULL_SPAN, _NULL_SPAN_CONTEXT


class FakeClock:
    """Deterministic monotonic clock: each call advances by ``step``."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


@pytest.fixture
def tracer():
    return Tracer(clock=FakeClock())


class TestSpanNesting:
    def test_root_span(self, tracer):
        with tracer.span("run") as span:
            assert tracer.current is span
        assert tracer.root is span
        assert tracer.roots == [span]
        assert tracer.current is None

    def test_nested_spans_form_a_tree(self, tracer):
        with tracer.span("run"):
            with tracer.span("parse"):
                pass
            with tracer.span("optimize.phase1"):
                with tracer.span("optimize.round"):
                    pass
        root = tracer.root
        assert [c.name for c in root.children] == ["parse",
                                                   "optimize.phase1"]
        assert [c.name for c in root.children[1].children] == [
            "optimize.round"
        ]

    def test_durations_come_from_the_injected_clock(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.root
        inner = outer.children[0]
        assert outer.start < inner.start < inner.end < outer.end
        assert outer.duration == pytest.approx(3.0)
        assert inner.duration == pytest.approx(1.0)

    def test_attrs_at_open_and_via_set(self, tracer):
        with tracer.span("compile", operators=7) as span:
            span.set(cost=42.0)
        assert tracer.root.attrs == {"operators": 7, "cost": 42.0}

    def test_exception_records_error_attr_and_pops_stack(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("run"):
                with tracer.span("execute"):
                    raise ValueError("boom")
        assert tracer.current is None
        execute = tracer.root.find("execute")
        assert execute.attrs["error"] == "ValueError"
        assert tracer.root.attrs["error"] == "ValueError"

    def test_record_span_nests_under_active_span(self, tracer):
        with tracer.span("execute"):
            vertex = tracer.record_span("scheduler.vertex/V00", 1.0, 2.0,
                                        tasks=1)
            tracer.record_span("task/0", 1.0, 2.0, parent=vertex)
        v = tracer.root.find("scheduler.vertex/V00")
        assert v is not None
        assert v.attrs == {"tasks": 1}
        assert [c.name for c in v.children] == ["task/0"]

    def test_record_span_without_parent_is_a_root(self, tracer):
        tracer.record_span("orphan", 0.0, 1.0)
        assert [s.name for s in tracer.roots] == ["orphan"]


class TestSpanQueries:
    def test_find_is_preorder(self):
        root = Span("a")
        root.children = [Span("b"), Span("b", {"second": True})]
        assert root.find("b") is root.children[0]
        assert root.find("missing") is None

    def test_walk_yields_preorder(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        assert [s.name for s in tracer.root.walk()] == ["a", "b", "c", "d"]


class TestStructure:
    def test_structure_excludes_volatile_attrs(self):
        a = Span("v", {"rows_out": 5, "wall_seconds": 0.123})
        b = Span("v", {"rows_out": 5, "wall_seconds": 9.876})
        assert a.structure() == b.structure()

    def test_structure_sorts_siblings(self):
        left = Span("root")
        left.children = [Span("b"), Span("a")]
        right = Span("root")
        right.children = [Span("a"), Span("b")]
        assert left.structure() == right.structure()

    def test_structure_distinguishes_semantic_attrs(self):
        a = Span("v", {"rows_out": 5})
        b = Span("v", {"rows_out": 6})
        assert a.structure() != b.structure()


class TestEvents:
    def test_emit_publishes_to_the_bus(self, tracer):
        tracer.emit("exec.config", workers=4, machines=25)
        events = tracer.bus.of_kind("exec.config")
        assert len(events) == 1
        assert events[0].get("workers") == 4
        assert events[0].as_dict() == {"kind": "exec.config",
                                       "workers": 4, "machines": 25}

    def test_bus_filters_by_type_and_kind(self):
        bus = EventBus()
        bus.publish(ObsEvent.make("a", x=1))
        bus.publish(ObsEvent.make("b", x=2))
        assert len(bus) == 2
        assert [e.kind for e in bus.of_type(ObsEvent)] == ["a", "b"]
        assert [e.get("x") for e in bus.of_kind("b")] == [2]

    def test_subscribers_see_published_events(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        event = ObsEvent.make("k", v=1)
        bus.publish(event)
        assert seen == [event]


class TestNullTracer:
    def test_is_disabled(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.roots == ()
        assert NULL_TRACER.current is None
        assert NULL_TRACER.root is None

    def test_span_returns_shared_singletons(self):
        ctx = NULL_TRACER.span("anything", attr=1)
        assert ctx is _NULL_SPAN_CONTEXT
        with ctx as span:
            assert span is _NULL_SPAN
            assert span.set(foo="bar") is span
        assert span.attrs == {}

    def test_record_span_and_emit_are_noops(self):
        assert NULL_TRACER.record_span("x", 0.0, 1.0) is _NULL_SPAN
        assert NULL_TRACER.emit("kind", a=1) is None
        assert NULL_TRACER.now() == 0.0

    def test_exceptions_propagate_through_null_spans(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("x"):
                raise RuntimeError()
