"""Tests for COUNT(DISTINCT x) and its dedup-then-count rewrite."""

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, PlanExecutor
from repro.naive import NaiveEvaluator
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.logical import LogicalGroupBy
from repro.scope.compiler import compile_script
from repro.scope.errors import ResolutionError
from repro.scope.parser import parse
from repro.workloads.datagen import generate_for_catalog

SCRIPT = """
X = EXTRACT A,B,D FROM "test.log" USING E;
C = SELECT A,Count(DISTINCT B) AS NB FROM X GROUP BY A;
OUTPUT C TO "c";
"""


class TestParsing:
    def test_distinct_flag_on_call(self):
        query = parse(
            "R = SELECT Count(DISTINCT B) AS N FROM X;"
        ).statements[0].queries[0]
        call = query.items[0].expr
        assert call.distinct
        assert call.func == "Count"

    def test_plain_call_not_distinct(self):
        query = parse("R = SELECT Count(B) AS N FROM X;").statements[0]
        assert not query.queries[0].items[0].expr.distinct


class TestRewrite:
    def test_two_group_by_stages(self, abcd_catalog):
        plan = compile_script(SCRIPT, abcd_catalog)
        group_bys = [
            n for n in plan.iter_nodes() if isinstance(n.op, LogicalGroupBy)
        ]
        assert len(group_bys) == 2
        dedup = next(g for g in group_bys if not g.op.aggregates)
        counting = next(g for g in group_bys if g.op.aggregates)
        assert set(dedup.op.keys) == {"A", "B"}
        assert counting.op.keys == ("A",)
        assert counting.op.aggregates[0].alias == "NB"

    def test_mixed_aggregates_rejected(self, abcd_catalog):
        bad = SCRIPT.replace(
            "Count(DISTINCT B) AS NB",
            "Count(DISTINCT B) AS NB,Sum(D) AS S",
        )
        with pytest.raises(ResolutionError):
            compile_script(bad, abcd_catalog)

    def test_distinct_sum_rejected(self, abcd_catalog):
        bad = SCRIPT.replace("Count(DISTINCT B)", "Sum(DISTINCT B)")
        with pytest.raises(ResolutionError):
            compile_script(bad, abcd_catalog)

    def test_distinct_over_grouping_key_rejected(self, abcd_catalog):
        bad = SCRIPT.replace("Count(DISTINCT B)", "Count(DISTINCT A)")
        with pytest.raises(ResolutionError):
            compile_script(bad, abcd_catalog)

    def test_distinct_over_expression_rejected(self, abcd_catalog):
        bad = SCRIPT.replace("Count(DISTINCT B)", "Count(DISTINCT B + 1)")
        with pytest.raises(ResolutionError):
            compile_script(bad, abcd_catalog)


class TestExecution:
    def run(self, script, abcd_catalog, exploit_cse=True):
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        files = generate_for_catalog(abcd_catalog, seed=13)
        result = optimize_script(script, abcd_catalog, config,
                                 exploit_cse=exploit_cse)
        cluster = Cluster(machines=4)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        expected = NaiveEvaluator(files).run(
            compile_script(script, abcd_catalog)
        )
        return outputs, expected

    @pytest.mark.parametrize("exploit_cse", [False, True])
    def test_grouped_distinct_count(self, abcd_catalog, exploit_cse):
        outputs, expected = self.run(SCRIPT, abcd_catalog, exploit_cse)
        assert outputs["c"].sorted_rows() == expected["c"]

    def test_global_distinct_count(self, abcd_catalog):
        script = (
            'X = EXTRACT A,B FROM "test.log" USING E;\n'
            "G = SELECT Count(DISTINCT A) AS NA FROM X;\n"
            'OUTPUT G TO "g";'
        )
        outputs, expected = self.run(script, abcd_catalog)
        assert outputs["g"].sorted_rows() == expected["g"]
        # With ndv(A)=7 in the fixture catalog, the count is exactly 7.
        assert outputs["g"].sorted_rows()[0][0] == 7

    def test_distinct_count_over_shared_relation(self, abcd_catalog):
        """The dedup stage is itself a shareable aggregation."""
        script = (
            'X = EXTRACT A,B,D FROM "test.log" USING E;\n'
            "R = SELECT A,B,Sum(D) AS S FROM X GROUP BY A,B;\n"
            "C1 = SELECT A,Count(DISTINCT B) AS NB FROM R GROUP BY A;\n"
            "C2 = SELECT B,Sum(S) AS T FROM R GROUP BY B;\n"
            'OUTPUT C1 TO "c1";\nOUTPUT C2 TO "c2";'
        )
        outputs, expected = self.run(script, abcd_catalog)
        for path in ("c1", "c2"):
            assert outputs[path].sorted_rows() == expected[path]
