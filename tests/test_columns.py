"""Unit tests for columns and schemas."""

import pytest

from repro.plan.columns import Column, ColumnType, Schema


def make_schema(*names):
    return Schema(Column(n) for n in names)


class TestColumn:
    def test_default_type_is_int(self):
        assert Column("A").ctype is ColumnType.INT

    def test_renamed_keeps_type(self):
        col = Column("A", ColumnType.STRING)
        renamed = col.renamed("B")
        assert renamed.name == "B"
        assert renamed.ctype is ColumnType.STRING

    def test_columns_are_hashable_and_comparable(self):
        assert Column("A") == Column("A")
        assert len({Column("A"), Column("A"), Column("B")}) == 2

    def test_type_widths(self):
        assert ColumnType.INT.width_bytes == 8
        assert ColumnType.FLOAT.width_bytes == 8
        assert ColumnType.STRING.width_bytes == 24


class TestSchema:
    def test_positional_and_name_lookup(self):
        schema = make_schema("A", "B", "C")
        assert schema[0].name == "A"
        assert schema["B"].name == "B"
        assert schema.position("C") == 2

    def test_contains_accepts_names_and_columns(self):
        schema = make_schema("A", "B")
        assert "A" in schema
        assert Column("B") in schema
        assert "Z" not in schema

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            make_schema("A", "A")

    def test_project_preserves_requested_order(self):
        schema = make_schema("A", "B", "C")
        projected = schema.project(["C", "A"])
        assert projected.names == ("C", "A")

    def test_project_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_schema("A").project(["B"])

    def test_concat(self):
        left = make_schema("A", "B")
        right = make_schema("C")
        assert left.concat(right).names == ("A", "B", "C")

    def test_concat_with_clash_rejected(self):
        with pytest.raises(ValueError):
            make_schema("A").concat(make_schema("A"))

    def test_row_width(self):
        schema = Schema(
            [Column("A", ColumnType.INT), Column("S", ColumnType.STRING)]
        )
        assert schema.row_width_bytes() == 8 + 24

    def test_equality_and_hash(self):
        assert make_schema("A", "B") == make_schema("A", "B")
        assert hash(make_schema("A")) == hash(make_schema("A"))
        assert make_schema("A", "B") != make_schema("B", "A")
