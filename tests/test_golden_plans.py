"""Golden-plan snapshots for the paper's Figure 3/4 scripts.

Each scenario's optimized plan is rendered with
:func:`repro.optimizer.explain.explain_normalized` (shape, properties
and schemas — no row/cost estimates) and compared byte-for-byte against
the snapshot in ``tests/golden/``.  A diff means the optimizer changed
which plan it picks for a paper scenario — sometimes intentional, never
silent.  Refresh the snapshots with::

    pytest tests/test_golden_plans.py --update-golden
"""

from __future__ import annotations

import pathlib

import pytest

from repro.api import optimize_script
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.optimizer.explain import explain_normalized
from repro.workloads.paper_scripts import S1, S3, make_catalog

from tests.test_propagation import (
    CROSS_JOIN_SCRIPT,
    FIG3C_SCRIPT,
    INDEPENDENT_SCRIPT,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Figure 3: (a) = S1's shared aggregation fan-out, (b) = S3's two
#: independent pipelines, (c) = consumers joined with each other.
#: Figure 4: (a) = S3's two LCAs, (b) = one LCA over dependent shared
#: groups (cross joins).  Figure 5: independent shared groups.
SCENARIOS = {
    "fig3a_s1_cse": (S1, True),
    "fig3a_s1_conventional": (S1, False),
    "fig3b_s3_cse": (S3, True),
    "fig3c_join_of_consumers_cse": (FIG3C_SCRIPT, True),
    "fig4b_cross_joins_cse": (CROSS_JOIN_SCRIPT, True),
    "fig5_independent_cse": (INDEPENDENT_SCRIPT, True),
}


def optimize_scenario(script, exploit_cse):
    config = OptimizerConfig(cost_params=CostParams(machines=25))
    result = optimize_script(script, make_catalog(), config,
                             exploit_cse=exploit_cse)
    return explain_normalized(result.plan)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_plan(name, update_golden):
    script, exploit_cse = SCENARIOS[name]
    rendered = optimize_scenario(script, exploit_cse)
    golden_path = GOLDEN_DIR / f"{name}.txt"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(rendered)
        pytest.skip(f"updated {golden_path}")
    assert golden_path.exists(), (
        f"missing snapshot {golden_path}; run with --update-golden"
    )
    expected = golden_path.read_text()
    assert rendered == expected, (
        f"plan shape for {name} changed; if intentional, refresh with "
        f"`pytest tests/test_golden_plans.py --update-golden`\n"
        f"--- expected ---\n{expected}\n--- got ---\n{rendered}"
    )


def test_normalized_output_is_deterministic():
    first = optimize_scenario(S1, True)
    second = optimize_scenario(S1, True)
    assert first == second
