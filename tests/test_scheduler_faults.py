"""Fault tolerance of the task scheduler.

Seeded fault injection kills task attempts at a configurable rate; the
scheduler must retry them transparently — identical outputs, spools
still materialized once — and fail *structurally* (an
:class:`ExecutionError` naming the vertex) once a task exhausts its
retry budget.  The plan-corruption scenarios of
``test_failure_injection`` are folded in at the end: real invariant
violations must never be retried into silent success.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import optimize_script
from repro.exec import (
    Cluster,
    ExecutionError,
    FaultInjection,
    InjectedFault,
    PlanExecutor,
    RetryPolicy,
    TaskScheduler,
    VertexFailedError,
)
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.physical import PhysRepartition, PhysSpool
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import PAPER_SCRIPTS, S1
from tests.test_failure_injection import rewrite

MACHINES = 4


_cache = {}


@pytest.fixture
def s1_plan(abcd_catalog):
    if "plan" not in _cache:
        config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
        _cache["plan"] = optimize_script(
            S1, abcd_catalog, config, exploit_cse=True
        ).plan
    return _cache["plan"]


@pytest.fixture
def s1_files(abcd_catalog):
    if "files" not in _cache:
        _cache["files"] = generate_for_catalog(abcd_catalog, seed=23)
    return _cache["files"]


def _make_cluster(files):
    cluster = Cluster(machines=MACHINES)
    for path, rows in files.items():
        cluster.load_file(path, rows)
    return cluster


def run_scheduled(plan, files, workers=4, rate=0.0, seed=0, max_retries=3,
                  validate=True):
    scheduler = TaskScheduler(
        _make_cluster(files),
        workers=workers,
        validate=validate,
        faults=FaultInjection(rate=rate, seed=seed),
        retry=RetryPolicy(max_retries=max_retries, backoff=0.0),
    )
    outputs = scheduler.execute(plan)
    return outputs, scheduler.metrics


class TestInjectedFaultsConverge:
    @pytest.mark.parametrize("rate", [0.1, 0.3, 0.5])
    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_outputs_unchanged_under_injection(self, name, rate,
                                               abcd_catalog):
        config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
        plan = optimize_script(
            PAPER_SCRIPTS[name], abcd_catalog, config, exploit_cse=True
        ).plan
        files = generate_for_catalog(abcd_catalog, seed=23)
        clean, _ = run_scheduled(plan, files)
        faulty, metrics = run_scheduled(
            plan, files, rate=rate, seed=42, max_retries=12
        )
        for path in clean:
            assert (
                clean[path].canonical_bytes()
                == faulty[path].canonical_bytes()
            ), f"{name} rate={rate}: injected faults changed {path}"
        # Spools still materialize exactly once even when retried.
        for stats in metrics.vertices.values():
            assert stats.launches == 1

    def test_high_rate_actually_retries(self, s1_plan, s1_files):
        _outputs, metrics = run_scheduled(
            s1_plan, s1_files, rate=0.5, seed=42, max_retries=12
        )
        assert metrics.task_retries > 0
        assert metrics.task_retries == sum(
            s.retries for s in metrics.vertices.values()
        )

    def test_retries_deterministic_across_worker_counts(self, s1_plan,
                                                        s1_files):
        """The fault coin depends on (seed, vertex, part, attempt) only,
        never on scheduling order, so worker count can't change it."""
        summaries = set()
        retries = set()
        for workers in (1, 2, 8):
            _outputs, metrics = run_scheduled(
                s1_plan, s1_files, workers=workers, rate=0.3, seed=7,
                max_retries=12,
            )
            summaries.add(metrics.summary())
            retries.add(metrics.task_retries)
        assert len(summaries) == 1
        assert len(retries) == 1

    def test_sequential_executor_is_never_injected(self, s1_plan, s1_files):
        """Injection lives in the scheduler; PlanExecutor has no hook."""
        executor = PlanExecutor(_make_cluster(s1_files), validate=True)
        outputs = executor.execute(s1_plan)
        assert outputs


class TestRetryExhaustion:
    def test_certain_failure_raises_structured_error(self, s1_plan,
                                                     s1_files):
        with pytest.raises(VertexFailedError) as err:
            run_scheduled(s1_plan, s1_files, rate=1.0, seed=0, max_retries=2)
        assert err.value.vertex.startswith("V")
        assert err.value.attempts == 3  # initial try + 2 retries
        assert err.value.vertex in str(err.value)
        assert isinstance(err.value, ExecutionError)
        assert isinstance(err.value.__cause__, InjectedFault)

    def test_zero_retry_budget(self, s1_plan, s1_files):
        with pytest.raises(VertexFailedError) as err:
            run_scheduled(s1_plan, s1_files, rate=1.0, seed=0, max_retries=0)
        assert err.value.attempts == 1

    def test_pool_resources_released_after_failure(self, s1_plan, s1_files):
        """A failed run must not leak worker threads or wedge a retry."""
        for _ in range(3):
            with pytest.raises(VertexFailedError):
                run_scheduled(s1_plan, s1_files, rate=1.0, max_retries=1)
        outputs, _ = run_scheduled(s1_plan, s1_files, rate=0.0)
        assert outputs


class TestFaultInjectionUnit:
    def test_coin_is_deterministic(self):
        faults = FaultInjection(rate=0.5, seed=9)
        flips = [faults.should_fail("V01", 2, a) for a in range(20)]
        assert flips == [faults.should_fail("V01", 2, a) for a in range(20)]
        assert any(flips) and not all(flips)

    def test_coin_varies_by_vertex_part_attempt(self):
        faults = FaultInjection(rate=0.5, seed=9)
        outcomes = {
            (v, p, a): faults.should_fail(v, p, a)
            for v in ("V00", "V01")
            for p in (None, 0, 1)
            for a in range(4)
        }
        assert len(set(outcomes.values())) == 2  # both True and False occur

    def test_rate_bounds(self):
        never = FaultInjection(rate=0.0, seed=1)
        always = FaultInjection(rate=1.0, seed=1)
        assert not any(never.should_fail("V00", None, a) for a in range(50))
        assert all(always.should_fail("V00", None, a) for a in range(50))

    def test_backoff_schedule_is_exponential(self):
        retry = RetryPolicy(max_retries=4, backoff=0.01)
        delays = [retry.delay(a) for a in range(5)]
        assert delays[0] == 0.0
        assert delays[1:] == [0.01, 0.02, 0.04, 0.08]


class TestCorruptionsUnderScheduler:
    """The invariant-violation scenarios of ``test_failure_injection``,
    replayed on the scheduler: validation failures are *not* retryable —
    they must surface as ExecutionError, not converge via retries."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_wrong_repartition_columns_detected(self, s1_plan, s1_files,
                                                workers):
        def corrupt(node):
            if isinstance(node.op, PhysRepartition):
                other = ("A",) if "A" not in node.op.columns else ("C",)
                return dataclasses.replace(
                    node, op=PhysRepartition(other, node.op.merge_sort)
                )
            return None

        bad = rewrite(s1_plan, corrupt)
        with pytest.raises(ExecutionError) as err:
            run_scheduled(bad, s1_files, workers=workers, max_retries=5)
        # Invariant violations fail the vertex on the FIRST attempt —
        # they are deterministic, so retrying would only repeat them.
        if isinstance(err.value, VertexFailedError):
            assert err.value.attempts == 1
            assert not isinstance(err.value.__cause__, InjectedFault)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_misclaimed_partitioning_detected(self, s1_plan, s1_files,
                                              workers):
        def corrupt(node):
            if isinstance(node.op, PhysRepartition):
                return dataclasses.replace(node.children[0],
                                           props=node.props)
            return None

        bad = rewrite(s1_plan, corrupt)
        with pytest.raises(ExecutionError):
            run_scheduled(bad, s1_files, workers=workers, max_retries=5)

    def test_corruption_detected_even_with_faults_active(self, s1_plan,
                                                         s1_files):
        """Injected faults retry; real corruption still fails the job."""

        def corrupt(node):
            if isinstance(node.op, PhysRepartition):
                return dataclasses.replace(node.children[0],
                                           props=node.props)
            return None

        bad = rewrite(s1_plan, corrupt)
        with pytest.raises(ExecutionError):
            run_scheduled(bad, s1_files, rate=0.2, seed=3, max_retries=8)

    def test_spool_corruption_names_the_spool_vertex(self, s1_plan,
                                                     s1_files):
        """An error raised inside a spool fragment fails that vertex."""

        def corrupt(node):
            if isinstance(node.op, PhysSpool):
                # Claim a sort order spooled data does not have.
                from repro.plan.properties import SortOrder

                props = dataclasses.replace(
                    node.props, sort_order=SortOrder(("D", "A"))
                )
                return dataclasses.replace(node, props=props)
            return None

        bad = rewrite(s1_plan, corrupt)
        with pytest.raises(ExecutionError):
            run_scheduled(bad, s1_files, max_retries=5)
