"""Unit tests for the SCOPE lexer and parser."""

import pytest

from repro.scope.ast import (
    EBin,
    ECall,
    ELit,
    ERef,
    ExtractStmt,
    OutputStmt,
    SelectStmt,
)
from repro.scope.errors import LexError, ParseError
from repro.scope.lexer import TokenKind, tokenize
from repro.scope.parser import parse
from repro.workloads.paper_scripts import PAPER_SCRIPTS


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Select SELECT")
        assert all(t.value == "SELECT" for t in tokens[:-1])
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])

    def test_identifiers_case_sensitive(self):
        tokens = tokenize("Foo foo")
        assert [t.value for t in tokens[:-1]] == ["Foo", "foo"]

    def test_string_with_backslashes(self):
        tokens = tokenize(r'"...\test.log"')
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].value == r"...\test.log"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_comment_to_end_of_line(self):
        tokens = tokenize("A // comment ; with stuff\nB")
        assert [t.value for t in tokens[:-1]] == ["A", "B"]

    def test_two_char_symbols(self):
        values = [t.value for t in tokenize("<= >= <> < > =")[:-1]]
        assert values == ["<=", ">=", "<>", "<", ">", "="]

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].value == "42"
        assert tokens[1].value == "3.5"

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("A @ B")

    def test_positions(self):
        tokens = tokenize("A\n  B")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestParser:
    def test_parses_all_paper_scripts(self):
        for name, text in PAPER_SCRIPTS.items():
            script = parse(text)
            assert script.statements, name

    def test_extract_statement(self):
        script = parse('R = EXTRACT A,B FROM "f.log" USING LogExtractor;')
        stmt = script.statements[0]
        assert isinstance(stmt, ExtractStmt)
        assert stmt.columns == ("A", "B")
        assert stmt.path == "f.log"
        assert stmt.extractor == "LogExtractor"

    def test_select_with_group_by(self):
        script = parse("R = SELECT A, Sum(D) AS S FROM R0 GROUP BY A;")
        stmt = script.statements[0]
        assert isinstance(stmt, SelectStmt)
        query = stmt.queries[0]
        assert query.group_by == (ERef("A"),)
        agg = query.items[1]
        assert isinstance(agg.expr, ECall)
        assert agg.alias == "S"

    def test_qualified_references(self):
        script = parse("R = SELECT R1.B, A FROM R1, R2 WHERE R1.B = R2.B;")
        query = script.statements[0].queries[0]
        assert query.items[0].expr == ERef("B", qualifier="R1")
        where = query.where
        assert isinstance(where, EBin)
        assert where.op == "="

    def test_from_alias(self):
        script = parse("R = SELECT X.A FROM T AS X, T AS Y WHERE X.A = Y.A;")
        query = script.statements[0].queries[0]
        assert query.from_rels[0].binding == "X"
        assert query.from_rels[1].binding == "Y"

    def test_union_all(self):
        script = parse(
            "R = SELECT A FROM X UNION ALL SELECT A FROM Y;"
        )
        assert len(script.statements[0].queries) == 2

    def test_output_statement(self):
        script = parse('OUTPUT R TO "result.out";')
        stmt = script.statements[0]
        assert isinstance(stmt, OutputStmt)
        assert stmt.source == "R"
        assert stmt.path == "result.out"

    def test_where_having(self):
        script = parse(
            "R = SELECT A, Count(*) AS C FROM X WHERE D > 3 "
            "GROUP BY A HAVING C > 10;"
        )
        query = script.statements[0].queries[0]
        assert query.where is not None
        assert query.having is not None
        assert query.items[1].expr == ECall("Count", None)

    def test_expression_precedence(self):
        script = parse("R = SELECT A FROM X WHERE A + 1 * 2 = 3 AND B < 4 OR C > 5;")
        where = script.statements[0].queries[0].where
        # Top level must be OR.
        assert isinstance(where, EBin) and where.op == "OR"
        left = where.left
        assert isinstance(left, EBin) and left.op == "AND"
        # A + (1 * 2)
        arith = left.left.left
        assert isinstance(arith, EBin) and arith.op == "+"
        assert isinstance(arith.right, EBin) and arith.right.op == "*"

    def test_parenthesized_expressions(self):
        script = parse("R = SELECT A FROM X WHERE (A + 1) * 2 = 6;")
        where = script.statements[0].queries[0].where
        assert isinstance(where.left, EBin) and where.left.op == "*"

    def test_literal_types(self):
        script = parse('R = SELECT A FROM X WHERE A = 2 AND B = 2.5 AND C = "s";')
        conj = script.statements[0].queries[0].where
        values = []

        def collect(node):
            if isinstance(node, EBin):
                if node.op == "AND":
                    collect(node.left)
                    collect(node.right)
                elif isinstance(node.right, ELit):
                    values.append(node.right.value)

        collect(conj)
        assert values == [2, 2.5, "s"]

    @pytest.mark.parametrize(
        "bad",
        [
            "R = ;",
            "R = SELECT FROM X;",
            "R = SELECT A FROM;",
            'OUTPUT TO "x";',
            "R = EXTRACT FROM \"f\" USING E;",
            "R = SELECT A FROM X",  # missing semicolon
            "",
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as info:
            parse("R = SELECT A FROM X WHERE ;")
        assert "1:" in str(info.value)
