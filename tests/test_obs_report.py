"""Cardinality-feedback (q-error) and hotspot reports."""

import math
import textwrap

import pytest

from repro.exec.metrics import ExecutionMetrics, VertexStats
from repro.obs import (
    cardinality_rows,
    cardinality_table,
    hotspot_table,
    hotspots,
    profile_report,
    qerror,
)


class TestQError:
    def test_symmetric(self):
        assert qerror(100.0, 50) == pytest.approx(2.0)
        assert qerror(50.0, 100) == pytest.approx(2.0)

    def test_perfect_estimate_is_one(self):
        assert qerror(100.0, 100) == pytest.approx(1.0)

    def test_missing_estimate_over_zero_rows_is_not_a_match(self):
        # Regression: the sentinel used to read as q-error 1.0, letting
        # never-estimated fragments masquerade as perfectly estimated
        # ones in feedback aggregation.  A missing estimate carries no
        # information either way.
        assert qerror(0.0, 0) is None

    def test_missing_estimate_is_none_not_an_error(self):
        assert qerror(0.0, 17) is None
        assert qerror(-1.0, 17) is None

    def test_missing_estimate_excluded_from_feedback_aggregation(self):
        from repro.stats.store import FeedbackStore, FragmentObservation

        store = FeedbackStore()
        store.record([FragmentObservation(
            fingerprint="f" * 64, estimated=0.0, actual=0,
        )])
        # The sentinel never becomes a correction candidate, at any
        # threshold — there is no estimate to correct.
        assert store.candidates(qerror_threshold=1.0) == []

    def test_predicted_rows_never_materialized_is_inf(self):
        assert qerror(100.0, 0) == math.inf

    def test_never_nan(self):
        for est, act in [(0.0, 0), (0.0, 5), (5.0, 0), (5.0, 5)]:
            err = qerror(est, act)
            assert err is None or not math.isnan(err)


@pytest.fixture
def metrics():
    m = ExecutionMetrics()
    for stats in [
        VertexStats(vertex="V00:Extract", estimated_rows=1000.0,
                    rows_out=100, simulated_makespan=500.0),
        VertexStats(vertex="V01:HashAgg", estimated_rows=50.0,
                    rows_out=100, simulated_makespan=1500.0),
        VertexStats(vertex="V02:Output", estimated_rows=10.0,
                    rows_out=0, simulated_makespan=0.0),
        VertexStats(vertex="V03:Sequence", estimated_rows=0.0,
                    rows_out=7, simulated_makespan=2000.0),
    ]:
        m.vertices[stats.vertex] = stats
    return m


class TestCardinalityRows:
    def test_ordering_inf_then_finite_desc_then_missing(self, metrics):
        rows = cardinality_rows(metrics)
        assert [r.vertex for r in rows] == [
            "V02:Output",     # inf
            "V00:Extract",    # q-error 10
            "V01:HashAgg",    # q-error 2
            "V03:Sequence",   # estimate missing
        ]
        assert math.isinf(rows[0].qerror)
        assert rows[1].qerror == pytest.approx(10.0)
        assert rows[3].qerror is None and rows[3].estimate_missing

    def test_table_golden(self, metrics):
        expected = textwrap.dedent("""\
            vertex                         estimated      actual   q-error
            --------------------------------------------------------------
            V02:Output                            10           0       inf
            V00:Extract                        1,000         100     10.00
            V01:HashAgg                           50         100      2.00
            V03:Sequence                         n/a           7       n/a""")
        assert cardinality_table(metrics) == expected

    def test_table_top_caps_and_counts_rest(self, metrics):
        text = cardinality_table(metrics, top=2)
        assert "V01:HashAgg" not in text
        assert "... 2 more" in text

    def test_table_empty(self):
        text = cardinality_table(ExecutionMetrics())
        assert "no per-vertex statistics" in text


class TestHotspots:
    def test_ranked_by_makespan_share(self, metrics):
        spots = hotspots(metrics, k=2)
        assert [s.vertex for s in spots] == ["V03:Sequence", "V01:HashAgg"]
        assert spots[0].share == pytest.approx(0.5)
        assert spots[1].share == pytest.approx(0.375)

    def test_zero_total_gives_zero_shares(self):
        m = ExecutionMetrics()
        m.vertices["V00:X"] = VertexStats(vertex="V00:X")
        assert hotspots(m)[0].share == 0.0

    def test_table_golden(self, metrics):
        expected = textwrap.dedent("""\
            vertex                            makespan   share
            --------------------------------------------------
            V03:Sequence                         2,000   50.0%
            V01:HashAgg                          1,500   37.5%""")
        assert hotspot_table(metrics, 2) == expected

    def test_table_empty(self):
        assert "no per-vertex statistics" in hotspot_table(
            ExecutionMetrics()
        )


class TestProfileReport:
    def test_combines_both_sections(self, metrics):
        text = profile_report(metrics, top=3)
        assert "cardinality feedback" in text
        assert "top 3 hotspots" in text
        assert "V02:Output" in text and "V03:Sequence" in text
