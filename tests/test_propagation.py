"""Tests for Algorithm 3: shared-group propagation and LCA identification.

Reproduces the scenarios of Figure 3 (single shared group; two shared
groups; LCA above the lowest common ancestor) and the independence
analysis of Section VIII-A / Figure 5.
"""

import pytest

from repro.cse.fingerprint import identify_common_subexpressions
from repro.cse.propagation import compute_shared_reach, propagate_shared_groups
from repro.optimizer.memo import Memo
from repro.plan.logical import (
    LogicalGroupBy,
    LogicalJoin,
    LogicalSequence,
    LogicalSpool,
)
from repro.scope.compiler import compile_script
from repro.workloads.paper_scripts import S1, S3

# Figure 3(b) / Figure 4(b): the joins cross the two pipelines, so the
# consumer paths of both shared groups only converge at the root.
CROSS_JOIN_SCRIPT = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) AS S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) AS S2 FROM R GROUP BY B,A;
T0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
T = SELECT A,B,C,Sum(D) AS S FROM T0 GROUP BY A,B,C;
T1 = SELECT B,C,Sum(S) AS S1 FROM T GROUP BY B,C;
T2 = SELECT B,A,Sum(S) AS S2 FROM T GROUP BY B,A;
F1 = SELECT R1.B,R1.C,T1.S1 FROM R1,T1 WHERE R1.B=T1.B;
F2 = SELECT R2.B,R2.A,T2.S2 FROM R2,T2 WHERE R2.B=T2.B;
OUTPUT F1 TO "result1.out";
OUTPUT F2 TO "result2.out";
"""

# Figure 5: two shared groups whose consumers go straight to outputs —
# independent, same LCA (the root).
INDEPENDENT_SCRIPT = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) AS S2 FROM R GROUP BY B,C;
T0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
T = SELECT A,B,C,Sum(D) AS S FROM T0 GROUP BY A,B,C;
T1 = SELECT A,B,Sum(S) AS S1 FROM T GROUP BY A,B;
T2 = SELECT B,C,Sum(S) AS S2 FROM T GROUP BY B,C;
OUTPUT R1 TO "r1.out";
OUTPUT R2 TO "r2.out";
OUTPUT T1 TO "t1.out";
OUTPUT T2 TO "t2.out";
"""

# Figure 3(c): one shared group whose consumers ALSO feed a join; the
# join is the lowest common ancestor, but the direct outputs of R1/R2
# bypass it, so the LCA per Definition 2 is the root.
FIG3C_SCRIPT = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) AS S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) AS S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C FROM R1,R2 WHERE R1.B=R2.B;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT RR TO "result3.out";
"""


def prepared_memo(text, catalog):
    memo = Memo.from_logical_plan(compile_script(text, catalog))
    identify_common_subexpressions(memo)
    return memo


def spool_gid_over_keys(memo, keys):
    """The shared spool group sitting above the GB with ``keys``."""
    for group in memo.live_groups():
        if isinstance(group.initial_expr.op, LogicalSpool):
            child = memo.group(group.initial_expr.children[0])
            op = child.initial_expr.op
            if isinstance(op, LogicalGroupBy) and op.keys == keys:
                return group.gid
    raise AssertionError(f"no spool over GB{keys}")


def group_of(memo, op_type):
    return [g for g in memo.live_groups() if isinstance(g.initial_expr.op, op_type)]


class TestFigure3a:
    """S1: single shared group; LCA is the Sequence root."""

    def test_lca_is_root(self, abcd_catalog):
        memo = prepared_memo(S1, abcd_catalog)
        result = propagate_shared_groups(memo)
        spool = spool_gid_over_keys(memo, ("A", "B", "C"))
        assert result.lca[spool] == memo.root
        assert isinstance(
            memo.group(memo.root).initial_expr.op, LogicalSequence
        )

    def test_consumers_are_the_two_group_bys(self, abcd_catalog):
        memo = prepared_memo(S1, abcd_catalog)
        result = propagate_shared_groups(memo)
        spool = spool_gid_over_keys(memo, ("A", "B", "C"))
        consumer_keys = {
            memo.group(gid).initial_expr.op.keys
            for gid in result.consumers[spool]
        }
        assert consumer_keys == {("A", "B"), ("B", "C")}

    def test_shared_below_annotations(self, abcd_catalog):
        """Figure 3(a): every group above the spool knows about it."""
        memo = prepared_memo(S1, abcd_catalog)
        result = propagate_shared_groups(memo)
        spool = spool_gid_over_keys(memo, ("A", "B", "C"))
        for gid, infos in result.shared_below.items():
            names = {s.grp_no for s in infos}
            if gid == memo.root:
                assert names == {spool}
                assert infos[0].all_found()


class TestFigure4a:
    """S3: two shared groups whose LCAs are the two joins."""

    def test_each_spool_has_its_own_join_lca(self, abcd_catalog):
        memo = prepared_memo(S3, abcd_catalog)
        result = propagate_shared_groups(memo)
        assert len(result.lca) == 2
        join_gids = {g.gid for g in group_of(memo, LogicalJoin)}
        lcas = set(result.lca.values())
        assert lcas <= join_gids | {
            p
            for j in join_gids
            for p in memo.parents_of(j)
        }
        assert len(lcas) == 2
        assert memo.root not in lcas

    def test_lca_to_shared_mapping(self, abcd_catalog):
        memo = prepared_memo(S3, abcd_catalog)
        result = propagate_shared_groups(memo)
        for lca_gid, shared in result.lca_to_shared.items():
            assert len(shared) == 1


class TestFigure3bAnd4b:
    """Cross joins: both shared groups share the root as LCA and are
    NOT independent."""

    def test_single_root_lca_for_both(self, abcd_catalog):
        memo = prepared_memo(CROSS_JOIN_SCRIPT, abcd_catalog)
        result = propagate_shared_groups(memo)
        assert len(result.lca) == 2
        assert set(result.lca.values()) == {memo.root}
        assert sorted(result.lca_to_shared[memo.root]) == sorted(result.lca)

    def test_not_independent(self, abcd_catalog):
        memo = prepared_memo(CROSS_JOIN_SCRIPT, abcd_catalog)
        result = propagate_shared_groups(memo)
        sets = result.independent_sets[memo.root]
        assert len(sets) == 1
        assert len(sets[0]) == 2


class TestFigure5Independence:
    def test_independent_shared_groups(self, abcd_catalog):
        memo = prepared_memo(INDEPENDENT_SCRIPT, abcd_catalog)
        result = propagate_shared_groups(memo)
        assert set(result.lca.values()) == {memo.root}
        sets = result.independent_sets[memo.root]
        assert len(sets) == 2
        assert all(len(s) == 1 for s in sets)


class TestFigure3c:
    """LCA is not the lowest common ancestor when paths bypass it."""

    def test_lca_is_root_not_join(self, abcd_catalog):
        memo = prepared_memo(FIG3C_SCRIPT, abcd_catalog)
        result = propagate_shared_groups(memo)
        spool = spool_gid_over_keys(memo, ("A", "B", "C"))
        # The join is a common ancestor of both consumers, but R1 and R2
        # are also output directly — those paths bypass the join, so the
        # LCA of the GB(A,B,C) spool must be the root.
        assert result.lca[spool] == memo.root


class TestSharedReach:
    def test_reach_includes_nested_shared(self, abcd_catalog):
        memo = prepared_memo(FIG3C_SCRIPT, abcd_catalog)
        reach = compute_shared_reach(memo)
        shared = {g.gid for g in memo.shared_groups()}
        assert reach[memo.root] == frozenset(shared)
        for gid in shared:
            assert gid in reach[gid]

    def test_leaf_reach_is_empty(self, abcd_catalog):
        memo = prepared_memo(S1, abcd_catalog)
        reach = compute_shared_reach(memo)
        extract = next(
            g.gid for g in memo.live_groups() if not g.initial_expr.children
        )
        assert reach[extract] == frozenset()
