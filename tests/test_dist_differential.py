"""Differential harness: process runtime vs thread runtime.

Every regression-corpus script and every paper script (S1–S4, LS1,
LS2) is executed twice per backend — once on the in-process
:class:`TaskScheduler` and once on the multiprocess
:class:`ProcessScheduler` (forked workers, wire-format exchanges
spilled to disk) — at worker counts 2 and 4.  The two runtimes must be
*byte-identical* on canonically sorted outputs, must agree on every
deterministic counter and on the operator invocation census, must
launch every vertex (spool producers in particular) exactly once, and
the process runtime must remove its spill directory on success.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, ProcessScheduler, TaskScheduler
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.scope.statistics import catalog_from_json
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.large_scripts import make_large_script
from repro.workloads.paper_scripts import PAPER_SCRIPTS

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS_SCRIPTS = sorted(CORPUS_DIR.glob("*.scope"))
MACHINES = 4
BACKENDS = ("row", "columnar")
#: Worker counts every differential test runs at.  The CI stress job
#: widens this via REPRO_SCHED_WORKERS (e.g. "8" or "2,8").
WORKER_COUNTS = (2, 4)
if os.environ.get("REPRO_SCHED_WORKERS"):
    WORKER_COUNTS = tuple(sorted({
        *WORKER_COUNTS,
        *(int(w) for w in
          os.environ["REPRO_SCHED_WORKERS"].split(",") if w.strip()),
    }))

#: Deterministic counters that must agree exactly between the thread
#: and process runtimes.  ``simulated_makespan`` is *included*: both
#: runtimes schedule the same tasks over the same partitions, so even
#: the critical-path model must match.  (``worker_deaths`` is included
#: too — it must be zero on both sides of a clean run.)
COUNTERS = (
    "rows_extracted",
    "rows_shuffled",
    "rows_broadcast",
    "rows_spooled",
    "spool_reads",
    "rows_output",
    "rows_sorted",
    "rows_filtered",
    "max_partition_rows",
    "simulated_makespan",
    "worker_deaths",
)


def _make_cluster(files, machines=MACHINES):
    cluster = Cluster(machines=machines)
    for path, rows in files.items():
        cluster.load_file(path, rows)
    return cluster


def run_differential(plan, files, workers, backend, machines=MACHINES):
    """Execute ``plan`` on both runtimes; return outputs and metrics."""
    thread = TaskScheduler(
        _make_cluster(files, machines), workers=workers, validate=True,
        backend=backend,
    )
    thread_outputs = thread.execute(plan)
    process = ProcessScheduler(
        _make_cluster(files, machines), workers=workers, validate=True,
        backend=backend,
    )
    process_outputs = process.execute(plan)
    # Success must leave nothing behind: the run-scoped spill directory
    # is torn down after the manifest commits.
    assert not os.path.exists(process.spill.path), (
        "spill directory survived a successful run"
    )
    return thread_outputs, process_outputs, thread.metrics, process.metrics


def assert_equivalent(thread_outputs, process_outputs, thread_metrics,
                      process_metrics, label):
    assert set(thread_outputs) == set(process_outputs), label
    for path in thread_outputs:
        assert (
            thread_outputs[path].canonical_bytes()
            == process_outputs[path].canonical_bytes()
        ), f"{label}: output {path} differs between runtimes"
    for counter in COUNTERS:
        assert getattr(thread_metrics, counter) == getattr(
            process_metrics, counter
        ), f"{label}: counter {counter} diverged"
    assert (
        thread_metrics.operator_invocations
        == process_metrics.operator_invocations
    ), f"{label}: operator invocation counts diverged"
    assert process_metrics.vertices, (
        f"{label}: process runtime recorded no vertices"
    )
    assert set(thread_metrics.vertices) == set(process_metrics.vertices), (
        f"{label}: vertex sets diverged"
    )
    for name, stats in process_metrics.vertices.items():
        assert stats.launches == 1, (
            f"{label}: vertex {name} launched {stats.launches} times"
        )
        assert stats.tasks == thread_metrics.vertices[name].tasks, (
            f"{label}: vertex {name} task count diverged"
        )
    # The whole deterministic label surface — counters, operator census,
    # per-vertex rows — must be equal, not merely the named counters.
    assert thread_metrics.to_labels() == process_metrics.to_labels(), (
        f"{label}: metric labels diverged between runtimes"
    )


# ---------------------------------------------------------------------------
# Regression corpus
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def corpus_env():
    catalog = catalog_from_json((CORPUS_DIR / "catalog.json").read_text())
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    files = generate_for_catalog(catalog, seed=3)
    return catalog, config, files


_corpus_plans = {}


def corpus_plan(corpus_env, script_path):
    if script_path.name not in _corpus_plans:
        catalog, config, _files = corpus_env
        result = optimize_script(
            script_path.read_text(), catalog, config, exploit_cse=True,
        )
        _corpus_plans[script_path.name] = result.plan
    return _corpus_plans[script_path.name]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "script_path", CORPUS_SCRIPTS, ids=[p.stem for p in CORPUS_SCRIPTS]
)
def test_corpus_process_matches_thread(script_path, backend, workers,
                                       corpus_env):
    plan = corpus_plan(corpus_env, script_path)
    _catalog, _config, files = corpus_env
    assert_equivalent(
        *run_differential(plan, files, workers, backend),
        label=f"{script_path.stem} backend={backend} workers={workers}",
    )


# ---------------------------------------------------------------------------
# Paper scripts S1–S4
# ---------------------------------------------------------------------------


_paper_plans = {}


def paper_plan(abcd_catalog, name, exploit_cse):
    key = (name, exploit_cse)
    if key not in _paper_plans:
        config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
        result = optimize_script(
            PAPER_SCRIPTS[name], abcd_catalog, config,
            exploit_cse=exploit_cse,
        )
        _paper_plans[key] = result.plan
    return _paper_plans[key]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("exploit_cse", [False, True],
                         ids=["conventional", "cse"])
@pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
def test_paper_process_matches_thread(name, exploit_cse, backend, workers,
                                      abcd_catalog):
    plan = paper_plan(abcd_catalog, name, exploit_cse)
    files = generate_for_catalog(abcd_catalog, seed=7)
    assert_equivalent(
        *run_differential(plan, files, workers, backend),
        label=(f"{name} cse={exploit_cse} backend={backend} "
               f"workers={workers}"),
    )


# ---------------------------------------------------------------------------
# Large scripts LS1 / LS2
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", ["LS1", "LS2"])
def test_large_script_process_matches_thread(name, backend):
    """The big DAGs (34 and 151 vertices) stay runtime-identical.

    Data volume is capped; the point here is graph shape (hundreds of
    operators, deep spool nesting, many exchange boundaries crossing
    the wire), not rows.
    """
    text, catalog, _spec = make_large_script(name)
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    result = optimize_script(text, catalog, config, exploit_cse=True)
    files = generate_for_catalog(catalog, seed=5, rows_override=120)
    assert_equivalent(
        *run_differential(result.plan, files, 4, backend),
        label=f"{name} backend={backend}",
    )
