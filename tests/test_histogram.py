"""Tests for equi-depth histograms and histogram-based selectivity."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.cardinality import CardinalityEstimator
from repro.plan.columns import ColumnType
from repro.plan.expressions import (
    BinaryExpr,
    BinaryOp,
    ColumnRef,
    Literal,
)
from repro.plan.logical import LogicalExtract, LogicalFilter
from repro.scope.catalog import Catalog
from repro.scope.histogram import Histogram
from repro.scope.statistics import catalog_from_json, catalog_to_json, register_data


class TestConstruction:
    def test_equi_depth_buckets(self):
        hist = Histogram.from_values(list(range(100)), n_buckets=4)
        assert len(hist) == 4
        assert all(b.rows == 25 for b in hist.buckets)
        assert hist.total_rows == 100

    def test_equal_values_never_split(self):
        values = [1] * 50 + [2] * 50
        hist = Histogram.from_values(values, n_buckets=10)
        for bucket in hist.buckets:
            if bucket.low == bucket.high:
                assert bucket.distinct == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Histogram.from_values([])

    def test_roundtrip(self):
        hist = Histogram.from_values([random.Random(0).random()
                                      for _ in range(500)])
        restored = Histogram.from_list(hist.to_list())
        assert restored.total_rows == hist.total_rows
        assert len(restored) == len(hist)
        for op in (BinaryOp.LT, BinaryOp.GT):
            assert restored.selectivity(op, 0.5) == pytest.approx(
                hist.selectivity(op, 0.5)
            )


class TestSelectivity:
    def uniform(self):
        return Histogram.from_values(list(range(1000)), n_buckets=20)

    def test_lt_matches_uniform_fraction(self):
        hist = self.uniform()
        for value, expected in ((250, 0.25), (500, 0.5), (900, 0.9)):
            assert hist.selectivity(BinaryOp.LT, value) == pytest.approx(
                expected, abs=0.02
            )

    def test_gt_complements_le(self):
        hist = self.uniform()
        for value in (100, 555, 999):
            le = hist.selectivity(BinaryOp.LE, value)
            gt = hist.selectivity(BinaryOp.GT, value)
            assert le + gt == pytest.approx(1.0, abs=1e-9)

    def test_eq_uses_bucket_density(self):
        hist = self.uniform()
        assert hist.selectivity(BinaryOp.EQ, 500) == pytest.approx(
            1 / 1000, rel=0.5
        )

    def test_out_of_range(self):
        hist = self.uniform()
        assert hist.selectivity(BinaryOp.LT, -5) == 0.0
        assert hist.selectivity(BinaryOp.GT, 2000) == 0.0
        assert hist.selectivity(BinaryOp.EQ, 5000) == 0.0

    def test_skewed_distribution(self):
        """90% of the mass at one value — the magic-constant estimator
        would be off by a factor of ~3; the histogram is near-exact."""
        values = [0] * 900 + list(range(1, 101))
        hist = Histogram.from_values(values)
        assert hist.selectivity(BinaryOp.GT, 0) == pytest.approx(0.1, abs=0.02)

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(st.integers(0, 100), min_size=1, max_size=300),
        probe=st.integers(-10, 110),
    )
    def test_matches_true_fraction(self, values, probe):
        """Histogram LT estimates track the true fraction closely."""
        hist = Histogram.from_values(values)
        true = sum(1 for v in values if v < probe) / len(values)
        estimate = hist.selectivity(BinaryOp.LT, probe)
        assert estimate == pytest.approx(true, abs=0.15)


class TestEstimatorIntegration:
    def make_catalog_with_data(self, rows):
        catalog = Catalog()
        register_data(catalog, "data.log", rows)
        return catalog

    def estimated_rows(self, catalog, predicate):
        stats = catalog.lookup("data.log")
        estimator = CardinalityEstimator(catalog, machines=4)
        extract = LogicalExtract(stats.file_id, "data.log", "E", stats.schema)
        base = estimator.derive(extract, [], stats.schema)
        out = estimator.derive(
            LogicalFilter(predicate), [base], stats.schema
        )
        return out.rows

    def test_range_predicate_uses_histogram(self):
        rng = random.Random(3)
        rows = [{"A": rng.randrange(1000)} for _ in range(2000)]
        catalog = self.make_catalog_with_data(rows)
        pred = BinaryExpr(BinaryOp.GT, ColumnRef("A"), Literal(900))
        true_count = sum(1 for r in rows if r["A"] > 900)
        assert self.estimated_rows(catalog, pred) == pytest.approx(
            true_count, rel=0.15
        )

    def test_without_histogram_falls_back_to_default(self):
        catalog = Catalog()
        catalog.register_file("data.log", [("A", ColumnType.INT)],
                              rows=3000, ndv={"A": 1000})
        pred = BinaryExpr(BinaryOp.GT, ColumnRef("A"), Literal(900))
        assert self.estimated_rows(catalog, pred) == pytest.approx(1000.0)

    def test_mirrored_literal_comparison(self):
        rows = [{"A": i % 100} for i in range(1000)]
        catalog = self.make_catalog_with_data(rows)
        # 50 < A  ≡  A > 50 — about 49% of the rows.
        pred = BinaryExpr(BinaryOp.LT, Literal(50), ColumnRef("A"))
        assert self.estimated_rows(catalog, pred) == pytest.approx(
            490, rel=0.1
        )

    def test_histograms_survive_json_roundtrip(self):
        rows = [{"A": i % 50} for i in range(500)]
        catalog = self.make_catalog_with_data(rows)
        restored = catalog_from_json(catalog_to_json(catalog))
        pred = BinaryExpr(BinaryOp.GE, ColumnRef("A"), Literal(25))
        original = self.estimated_rows(catalog, pred)
        roundtripped = self.estimated_rows(restored, pred)
        assert roundtripped == pytest.approx(original, rel=1e-6)
