"""EventBus thread-safety: subscribe while publishers are running.

Regression for the copy-on-write subscriber snapshot: before it, a
``subscribe`` during a concurrent ``publish`` mutated the list being
iterated and could raise or skip subscribers.  The test hammers the
bus with publisher threads while subscribers attach mid-stream; every
subscriber must observe a contiguous *suffix* of the event stream from
the moment it attached, with nothing lost and nothing duplicated.
"""

from __future__ import annotations

import threading

from repro.obs.bus import EventBus, ObsEvent

PUBLISHERS = 4
EVENTS_PER_PUBLISHER = 500
SUBSCRIBERS = 8


def test_subscribe_under_concurrent_publishes():
    bus = EventBus()
    received = [[] for _ in range(SUBSCRIBERS)]
    start = threading.Barrier(PUBLISHERS + 1)

    def publisher(index: int) -> None:
        start.wait()
        for i in range(EVENTS_PER_PUBLISHER):
            bus.publish(ObsEvent.make("tick", source=index, seq=i))

    threads = [threading.Thread(target=publisher, args=(p,))
               for p in range(PUBLISHERS)]
    for t in threads:
        t.start()
    start.wait()
    for sink in received:
        bus.subscribe(sink.append)      # attach mid-stream
    for t in threads:
        t.join()

    total = PUBLISHERS * EVENTS_PER_PUBLISHER
    assert len(bus.events) == total
    for sink in received:
        # No duplicates, and per-publisher sequence numbers are a
        # contiguous suffix: once attached the subscriber missed
        # nothing that was published after.
        assert len(sink) == len(set(id(e) for e in sink))
        by_source = {}
        for event in sink:
            by_source.setdefault(event.get("source"), []).append(
                event.get("seq"))
        for seqs in by_source.values():
            assert seqs == sorted(seqs)
            assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))


def test_publish_from_inside_a_subscriber():
    """Subscribers may publish re-entrantly (the collector pattern)."""
    bus = EventBus()
    seen = []

    def echo(event):
        if isinstance(event, ObsEvent) and event.kind == "ping":
            bus.publish(ObsEvent.make("pong"))

    bus.subscribe(echo)
    bus.subscribe(seen.append)
    bus.publish(ObsEvent.make("ping"))
    kinds = [e.kind for e in bus.events]
    assert kinds == ["ping", "pong"]
    assert [e.kind for e in seen] == ["pong", "ping"]


def test_of_kind_snapshot_is_stable_under_concurrent_publish():
    bus = EventBus()
    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            bus.publish(ObsEvent.make("noise"))

    thread = threading.Thread(target=hammer)
    thread.start()
    try:
        for _ in range(200):
            events = bus.of_kind("noise")
            assert all(e.kind == "noise" for e in events)
    finally:
        stop.set()
        thread.join()
