"""Tests for cardinality estimation."""

import pytest

from repro.optimizer.cardinality import CardinalityEstimator, Stats, annotate_memo
from repro.optimizer.memo import Memo
from repro.plan.expressions import (
    Aggregate,
    AggFunc,
    BinaryExpr,
    BinaryOp,
    ColumnRef,
    Literal,
    NamedExpr,
)
from repro.plan.logical import (
    GroupByMode,
    LogicalExtract,
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalProject,
    LogicalUnionAll,
)
from repro.scope.compiler import compile_script
from repro.workloads.paper_scripts import S1


@pytest.fixture
def estimator(abcd_catalog):
    return CardinalityEstimator(abcd_catalog, machines=4)


@pytest.fixture
def base_stats(abcd_catalog, estimator):
    stats = abcd_catalog.lookup("test.log")
    op = LogicalExtract(stats.file_id, "test.log", "E", stats.schema)
    return op, estimator.derive(op, [], stats.schema)


class TestLeafAndFilter:
    def test_extract_uses_catalog(self, base_stats):
        _, stats = base_stats
        assert stats.rows == 4000
        assert stats.ndv_of("A") == 7

    def test_equality_filter_selectivity(self, base_stats, estimator):
        op, stats = base_stats
        pred = BinaryExpr(BinaryOp.EQ, ColumnRef("A"), Literal(3))
        out = estimator.derive(LogicalFilter(pred), [stats], op.schema)
        assert out.rows == pytest.approx(4000 / 7)

    def test_and_multiplies(self, base_stats, estimator):
        op, stats = base_stats
        pred = BinaryExpr(
            BinaryOp.AND,
            BinaryExpr(BinaryOp.EQ, ColumnRef("A"), Literal(1)),
            BinaryExpr(BinaryOp.EQ, ColumnRef("B"), Literal(1)),
        )
        out = estimator.derive(LogicalFilter(pred), [stats], op.schema)
        assert out.rows == pytest.approx(4000 / 35)

    def test_range_filter_default_selectivity(self, base_stats, estimator):
        op, stats = base_stats
        pred = BinaryExpr(BinaryOp.GT, ColumnRef("D"), Literal(10))
        out = estimator.derive(LogicalFilter(pred), [stats], op.schema)
        assert out.rows == pytest.approx(4000 / 3)

    def test_filter_caps_ndv_at_rows(self, base_stats, estimator):
        op, stats = base_stats
        pred = BinaryExpr(BinaryOp.EQ, ColumnRef("D"), Literal(1))
        out = estimator.derive(LogicalFilter(pred), [stats], op.schema)
        assert out.ndv_of("D") <= out.rows


class TestGroupBy:
    def agg(self):
        return (Aggregate(AggFunc.SUM, ColumnRef("D"), "S"),)

    def test_full_group_count(self, base_stats, estimator):
        op, stats = base_stats
        gb = LogicalGroupBy(("A", "B"), self.agg())
        out = estimator.derive(gb, [stats], gb.derive_schema([op.schema]))
        assert out.rows == pytest.approx(35)  # 7 × 5

    def test_group_count_capped_by_rows(self, base_stats, estimator):
        op, stats = base_stats
        gb = LogicalGroupBy(("D",), self.agg())
        # ndv(D)=50 < rows → 50 groups; never above input rows.
        out = estimator.derive(gb, [stats], gb.derive_schema([op.schema]))
        assert out.rows == 50

    def test_local_mode_bounded_by_groups_times_machines(
        self, base_stats, estimator
    ):
        op, stats = base_stats
        gb = LogicalGroupBy(("A", "B"), self.agg(), GroupByMode.LOCAL)
        out = estimator.derive(gb, [stats], gb.derive_schema([op.schema]))
        assert out.rows == pytest.approx(35 * 4)

    def test_local_mode_never_exceeds_input(self, abcd_catalog):
        estimator = CardinalityEstimator(abcd_catalog, machines=10_000)
        stats = abcd_catalog.lookup("test.log")
        op = LogicalExtract(stats.file_id, "test.log", "E", stats.schema)
        base = estimator.derive(op, [], stats.schema)
        gb = LogicalGroupBy(("A", "B"), self.agg(), GroupByMode.LOCAL)
        out = estimator.derive(gb, [base], gb.derive_schema([op.schema]))
        assert out.rows == base.rows

    def test_scalar_aggregate_single_row(self, base_stats, estimator):
        op, stats = base_stats
        gb = LogicalGroupBy((), self.agg())
        out = estimator.derive(gb, [stats], gb.derive_schema([op.schema]))
        assert out.rows == 1


class TestJoinProjectUnion:
    def test_join_uses_max_ndv(self, base_stats, estimator):
        op, stats = base_stats
        join = LogicalJoin(("A",), ("A",))
        # Join a relation with itself (schemas would clash; fake the
        # right side with renamed stats).
        right = Stats(stats.rows, dict(stats.ndv), stats.width)
        schema = op.schema  # schema content is irrelevant to row counts
        out = estimator._join(join, stats, right, schema)
        assert out.rows == pytest.approx(4000 * 4000 / 7)

    def test_project_passthrough_keeps_ndv(self, base_stats, estimator):
        op, stats = base_stats
        project = LogicalProject(
            (NamedExpr(ColumnRef("A"), "X"), NamedExpr(ColumnRef("B"), "B"))
        )
        out = estimator.derive(project, [stats],
                               project.derive_schema([op.schema]))
        assert out.ndv_of("X") == stats.ndv_of("A")

    def test_union_sums_rows(self, base_stats, estimator):
        op, stats = base_stats
        union = LogicalUnionAll(2)
        out = estimator.derive(union, [stats, stats], op.schema)
        assert out.rows == 8000


class TestAnnotation:
    def test_annotate_memo_fills_all_reachable(self, abcd_catalog):
        memo = Memo.from_logical_plan(compile_script(S1, abcd_catalog))
        annotate_memo(memo, CardinalityEstimator(abcd_catalog, machines=4))
        for gid in memo.reachable_from_root():
            assert memo.group(gid).stats is not None

    def test_stats_scaled_ndv_damping(self):
        stats = Stats(1000, {"A": 900}, 8.0)
        scaled = stats.scaled(0.01)
        assert scaled.rows == 10
        assert scaled.ndv_of("A") == 10
