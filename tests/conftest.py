"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.columns import ColumnType
from repro.scope.catalog import Catalog
from repro.verify import set_default_verify


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden plan snapshots under tests/golden/ "
        "instead of comparing against them",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")


@pytest.fixture(autouse=True, scope="session")
def _verify_every_optimized_plan():
    """Statically verify every plan any test optimizes *or serves*.

    Flipping the global default routes the whole suite through
    ``repro.verify`` — a planner bug anywhere surfaces as a named
    invariant violation instead of a downstream result mismatch.  The
    switch is resolved through :func:`repro.verify.verify_enabled`, so
    it covers both freshly optimized plans and plans returned from the
    service's plan cache (``QueryService`` re-checks cache hits via
    :func:`repro.verify.maybe_check_plan`).
    """
    set_default_verify(True)
    yield
    set_default_verify(False)


@pytest.fixture
def abcd_catalog() -> Catalog:
    """A catalog with the paper's ``test.log``/``test2.log`` at test scale."""
    catalog = Catalog()
    columns = [(name, ColumnType.INT) for name in ("A", "B", "C", "D")]
    ndv = {"A": 7, "B": 5, "C": 6, "D": 50}
    catalog.register_file("test.log", columns, rows=4_000, ndv=ndv)
    catalog.register_file("test2.log", columns, rows=4_000, ndv=ndv)
    return catalog


@pytest.fixture
def small_config() -> OptimizerConfig:
    """Optimizer configuration for a 4-machine test cluster."""
    return OptimizerConfig(cost_params=CostParams(machines=4))
