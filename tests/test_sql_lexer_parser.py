"""Unit tests for the SQL frontend's lexer and parser."""

from __future__ import annotations

import pytest

from repro.sql import parse_sql, print_script, print_statement
from repro.sql.ast import (
    CTE,
    EBin,
    ECall,
    ELit,
    ENot,
    ERef,
    Star,
)
from repro.sql.errors import SqlLexError, SqlParseError
from repro.sql.lexer import tokenize
from repro.scope.lexer import TokenKind


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [(t.kind, t.value) for t in tokenize("select Select SELECT")]
        assert kinds[:3] == [(TokenKind.KEYWORD, "SELECT")] * 3

    def test_identifiers_case_sensitive(self):
        toks = tokenize("CustSk custsk")
        assert [t.value for t in toks[:2]] == ["CustSk", "custsk"]

    def test_not_equal_normalized(self):
        toks = tokenize("a != b <> c")
        symbols = [t.value for t in toks if t.kind is TokenKind.SYMBOL]
        assert symbols == ["<>", "<>"]

    def test_line_comments_and_strings(self):
        toks = tokenize("-- header\nSELECT 'out.txt' -- trailing\n")
        assert [t.kind for t in toks[:-1]] == [
            TokenKind.KEYWORD, TokenKind.STRING,
        ]
        assert toks[1].value == "out.txt"

    def test_unterminated_string(self):
        with pytest.raises(SqlLexError, match="unterminated string"):
            tokenize("SELECT 'oops")

    def test_unexpected_character_position(self):
        with pytest.raises(SqlLexError) as exc:
            tokenize("SELECT a\nFROM @t")
        assert exc.value.line == 2
        assert exc.value.column == 6


class TestParser:
    def test_minimal_select(self):
        script = parse_sql("SELECT A FROM t;")
        (stmt,) = script.statements
        assert stmt.ctes == ()
        assert stmt.into is None
        (core,) = stmt.body.branches
        assert core.items[0].expr == ERef("A")
        assert core.from_rels[0].name == "t"

    def test_full_clause_order(self):
        script = parse_sql(
            "SELECT a, SUM(b) AS total FROM t AS x "
            "JOIN u AS y ON x.k = y.k "
            "WHERE a > 1 GROUP BY a HAVING SUM(b) > 2;"
        )
        (core,) = script.statements[0].body.branches
        assert core.items[1].alias == "total"
        assert core.joins[0].kind == "inner"
        assert core.joins[0].condition == EBin(
            "=", ERef("k", qualifier="x"), ERef("k", qualifier="y")
        )
        assert core.where == EBin(">", ERef("a"), ELit(1))
        assert core.group_by == (ERef("a"),)
        assert core.having == EBin(">", ECall("SUM", ERef("b")), ELit(2))

    def test_left_outer_join(self):
        script = parse_sql("SELECT a FROM t LEFT OUTER JOIN u ON t.k = u.k;")
        assert script.statements[0].body.branches[0].joins[0].kind == "left"

    def test_bare_alias_without_as(self):
        script = parse_sql("SELECT a cnt FROM t x;")
        (core,) = script.statements[0].body.branches
        assert core.items[0].alias == "cnt"
        assert core.from_rels[0].alias == "x"

    def test_star(self):
        (core,) = parse_sql("SELECT * FROM t;").statements[0].body.branches
        assert isinstance(core.items[0].expr, Star)

    def test_star_must_be_alone(self):
        with pytest.raises(SqlParseError, match="only select item"):
            parse_sql("SELECT *, a FROM t;")

    def test_count_star_and_distinct(self):
        (core,) = parse_sql(
            "SELECT COUNT(*) AS n, COUNT(DISTINCT a) AS d FROM t;"
        ).statements[0].body.branches
        assert core.items[0].expr == ECall("COUNT", None)
        assert core.items[1].expr == ECall("COUNT", ERef("a"), True)

    def test_not_and_precedence(self):
        (core,) = parse_sql(
            "SELECT a FROM t WHERE NOT a = 1 AND b = 2 OR c = 3;"
        ).statements[0].body.branches
        assert core.where == EBin(
            "OR",
            EBin(
                "AND",
                ENot(EBin("=", ERef("a"), ELit(1))),
                EBin("=", ERef("b"), ELit(2)),
            ),
            EBin("=", ERef("c"), ELit(3)),
        )

    def test_arithmetic_precedence(self):
        (core,) = parse_sql(
            "SELECT a + b * 2 AS v FROM t;"
        ).statements[0].body.branches
        assert core.items[0].expr == EBin(
            "+", ERef("a"), EBin("*", ERef("b"), ELit(2))
        )

    def test_union_all(self):
        body = parse_sql(
            "SELECT a FROM t UNION ALL SELECT a FROM u;"
        ).statements[0].body
        assert len(body.branches) == 2

    def test_cte_and_into(self):
        script = parse_sql(
            "WITH x AS (SELECT a FROM t), y AS (SELECT a FROM x) "
            "SELECT a FROM y INTO 'report.out';"
        )
        stmt = script.statements[0]
        assert [c.name for c in stmt.ctes] == ["x", "y"]
        assert stmt.into == "report.out"

    def test_order_by_limit(self):
        body = parse_sql(
            "SELECT a FROM t ORDER BY a, t.b LIMIT 5;"
        ).statements[0].body
        assert body.order_by == (ERef("a"), ERef("b", qualifier="t"))
        assert body.limit == 5

    def test_order_by_asc_accepted(self):
        body = parse_sql("SELECT a FROM t ORDER BY a ASC;").statements[0].body
        assert body.order_by == (ERef("a"),)
        assert body.limit is None

    def test_multiple_statements(self):
        script = parse_sql("SELECT a FROM t; SELECT b FROM u;")
        assert len(script.statements) == 2


class TestParseErrors:
    """Each restriction rejects with a pointed, located message."""

    @pytest.mark.parametrize("text, pattern", [
        ("SELECT a FROM t LIMIT 3;",
         "LIMIT requires an ORDER BY"),
        ("SELECT a FROM t ORDER BY a DESC;",
         "descending ORDER BY is not supported"),
        ("SELECT a FROM t UNION ALL SELECT a FROM u ORDER BY a;",
         "wrap the union in a CTE"),
        ("SELECT a FROM t UNION ALL SELECT a FROM u LIMIT 2;",
         "wrap the union in a CTE"),
        ("WITH x AS (SELECT a FROM t ORDER BY a) SELECT a FROM x;",
         "ORDER BY without LIMIT"),
        ("SELECT a WHERE b = 1;", "expected FROM"),
        ("SELECT FROM t;", "expected expression"),
        ("SELECT a FROM t INTO out;", "expected output path string"),
        ("", "empty script"),
        ("SELECT a FROM t WHERE ;", "expected expression"),
    ])
    def test_rejected(self, text, pattern):
        with pytest.raises(SqlParseError, match=pattern):
            parse_sql(text)

    def test_error_carries_position_and_source(self):
        text = "SELECT a\nFROM t\nLIMIT 3;"
        with pytest.raises(SqlParseError) as exc:
            parse_sql(text)
        assert exc.value.line == 3
        assert exc.value.source == text


class TestPrinterRoundTrip:
    """Spot checks; the exhaustive property lives in test_sql_property."""

    @pytest.mark.parametrize("text", [
        "SELECT a FROM t;",
        "SELECT DISTINCT a, b FROM t;",
        "SELECT COUNT(*) AS n FROM t WHERE NOT a = 1;",
        "SELECT a FROM t AS x LEFT JOIN u AS y ON x.k = y.k;",
        "WITH c AS (SELECT a, SUM(b) AS s FROM t GROUP BY a) "
        "SELECT s FROM c UNION ALL SELECT a FROM c;",
        "SELECT a FROM t ORDER BY a LIMIT 7 INTO 'x.out';",
        "SELECT a FROM t; SELECT b FROM u;",
    ])
    def test_round_trip(self, text):
        first = parse_sql(text)
        printed = print_script(first)
        assert parse_sql(printed) == first
        # And the canonical form is a fixed point.
        assert print_script(parse_sql(printed)) == printed

    def test_print_statement_canonical_spelling(self):
        stmt = parse_sql(
            "select a cnt from t x inner join u on x.k = u.k;"
        ).statements[0]
        assert print_statement(stmt) == (
            "SELECT a AS cnt FROM t AS x JOIN u ON (x.k = u.k)"
        )
