"""Differential execution harness: vertex scheduler vs sequential executor.

Every regression-corpus script and every paper script (S1–S4, LS1, LS2)
is optimized in both modes and executed twice — once on the sequential
recursive :class:`PlanExecutor` and once on the task-parallel
:class:`TaskScheduler` — at worker counts 1 and 4.  The two executions
must be *byte-identical* on canonically sorted outputs, the scheduler
must launch every vertex (spool producers in particular) exactly once,
and the deterministic work counters must agree between both paths.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.api import optimize_script
from repro.exec import (
    Cluster,
    PlanExecutor,
    TaskScheduler,
    build_stage_graph,
)
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.scope.statistics import catalog_from_json
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.large_scripts import make_large_script
from repro.workloads.paper_scripts import PAPER_SCRIPTS
from tests.test_execution_equivalence import EXPECTED_INPUT_FILES

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS_SCRIPTS = sorted(CORPUS_DIR.glob("*.scope"))
MACHINES = 4
#: Worker counts every differential test runs at.  The CI stress job
#: widens this via REPRO_SCHED_WORKERS (e.g. "8" or "2,8,16").
WORKER_COUNTS = (1, 4)
if os.environ.get("REPRO_SCHED_WORKERS"):
    WORKER_COUNTS = tuple(sorted({
        *WORKER_COUNTS,
        *(int(w) for w in
          os.environ["REPRO_SCHED_WORKERS"].split(",") if w.strip()),
    }))

#: Deterministic counters that must agree exactly between the
#: sequential executor and the scheduler.  ``simulated_makespan`` is
#: excluded: per-partition tasks charge each slice's compute separately
#: (a sum) where the sequential executor charges the slowest partition
#: (a max), so the critical-path model legitimately differs.
COUNTERS = (
    "rows_extracted",
    "rows_shuffled",
    "rows_broadcast",
    "rows_spooled",
    "spool_reads",
    "rows_output",
    "rows_sorted",
    "rows_filtered",
    "max_partition_rows",
)


def _make_cluster(files, machines=MACHINES):
    cluster = Cluster(machines=machines)
    for path, rows in files.items():
        cluster.load_file(path, rows)
    return cluster


def run_differential(plan, files, workers, machines=MACHINES):
    """Execute ``plan`` both ways; return (seq, sched outputs, metrics)."""
    sequential = PlanExecutor(_make_cluster(files, machines), validate=True)
    seq_outputs = sequential.execute(plan)
    scheduler = TaskScheduler(
        _make_cluster(files, machines), workers=workers, validate=True
    )
    sched_outputs = scheduler.execute(plan)
    return seq_outputs, sched_outputs, sequential.metrics, scheduler.metrics


def assert_equivalent(seq_outputs, sched_outputs, seq_metrics,
                      sched_metrics, label):
    assert set(seq_outputs) == set(sched_outputs), label
    for path in seq_outputs:
        assert (
            seq_outputs[path].canonical_bytes()
            == sched_outputs[path].canonical_bytes()
        ), f"{label}: output {path} differs between executors"
    for counter in COUNTERS:
        assert getattr(seq_metrics, counter) == getattr(
            sched_metrics, counter
        ), f"{label}: counter {counter} diverged"
    assert (
        seq_metrics.operator_invocations
        == sched_metrics.operator_invocations
    ), f"{label}: operator invocation counts diverged"
    assert sched_metrics.vertices, f"{label}: scheduler recorded no vertices"
    for name, stats in sched_metrics.vertices.items():
        assert stats.launches == 1, (
            f"{label}: vertex {name} launched {stats.launches} times"
        )


# ---------------------------------------------------------------------------
# Regression corpus
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def corpus_env():
    catalog = catalog_from_json((CORPUS_DIR / "catalog.json").read_text())
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    files = generate_for_catalog(catalog, seed=3)
    return catalog, config, files


_corpus_plans = {}


def corpus_plan(corpus_env, script_path, exploit_cse):
    key = (script_path.name, exploit_cse)
    if key not in _corpus_plans:
        catalog, config, _files = corpus_env
        result = optimize_script(
            script_path.read_text(), catalog, config,
            exploit_cse=exploit_cse,
        )
        _corpus_plans[key] = result.plan
    return _corpus_plans[key]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("exploit_cse", [False, True],
                         ids=["conventional", "cse"])
@pytest.mark.parametrize(
    "script_path", CORPUS_SCRIPTS, ids=[p.stem for p in CORPUS_SCRIPTS]
)
def test_corpus_scheduler_matches_sequential(script_path, exploit_cse,
                                             workers, corpus_env):
    plan = corpus_plan(corpus_env, script_path, exploit_cse)
    _catalog, _config, files = corpus_env
    assert_equivalent(
        *run_differential(plan, files, workers),
        label=f"{script_path.stem} cse={exploit_cse} workers={workers}",
    )


# ---------------------------------------------------------------------------
# Paper scripts S1–S4
# ---------------------------------------------------------------------------


_paper_plans = {}


def paper_plan(abcd_catalog, name, exploit_cse):
    key = (name, exploit_cse)
    if key not in _paper_plans:
        config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
        result = optimize_script(
            PAPER_SCRIPTS[name], abcd_catalog, config,
            exploit_cse=exploit_cse,
        )
        _paper_plans[key] = result.plan
    return _paper_plans[key]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("exploit_cse", [False, True],
                         ids=["conventional", "cse"])
@pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
def test_paper_scheduler_matches_sequential(name, exploit_cse, workers,
                                            abcd_catalog):
    plan = paper_plan(abcd_catalog, name, exploit_cse)
    files = generate_for_catalog(abcd_catalog, seed=7)
    assert_equivalent(
        *run_differential(plan, files, workers),
        label=f"{name} cse={exploit_cse} workers={workers}",
    )


# ---------------------------------------------------------------------------
# Large scripts LS1 / LS2
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["LS1", "LS2"])
def test_large_script_scheduler_matches_sequential(name):
    """The big DAGs (34 and 151 vertices) stay differential-identical.

    Data volume is capped; the point here is graph shape (hundreds of
    operators, deep spool nesting), not rows.
    """
    text, catalog, _spec = make_large_script(name)
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    result = optimize_script(text, catalog, config, exploit_cse=True)
    files = generate_for_catalog(catalog, seed=5, rows_override=120)
    assert_equivalent(
        *run_differential(result.plan, files, workers=4),
        label=f"{name} workers=4",
    )


# ---------------------------------------------------------------------------
# Exactly-once semantics of spools under the scheduler
# ---------------------------------------------------------------------------


class TestSpoolLaunchCounts:
    """The extract-once assertions of test_execution_equivalence, lifted
    from operator counters to the scheduler's vertex launch counts."""

    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_spool_vertices_launch_exactly_once(self, name, abcd_catalog):
        plan = paper_plan(abcd_catalog, name, exploit_cse=True)
        graph = build_stage_graph(plan)
        spool_names = {v.name for v in graph.spool_vertices()}
        assert spool_names, f"{name}: CSE plan must contain spool vertices"
        files = generate_for_catalog(abcd_catalog, seed=7)
        scheduler = TaskScheduler(_make_cluster(files), workers=4,
                                  validate=True)
        scheduler.execute(plan)
        for spool in spool_names:
            stats = scheduler.metrics.vertices[spool]
            assert stats.launches == 1, (
                f"{name}: spool vertex {spool} materialized "
                f"{stats.launches} times"
            )
            assert stats.tasks == 1, (
                f"{name}: spool vertex {spool} must not be partition-split"
            )

    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_extract_once_under_scheduler(self, name, abcd_catalog):
        plan = paper_plan(abcd_catalog, name, exploit_cse=True)
        files = generate_for_catalog(abcd_catalog, seed=7)
        scheduler = TaskScheduler(_make_cluster(files), workers=4,
                                  validate=True)
        scheduler.execute(plan)
        metrics = scheduler.metrics
        assert (
            metrics.operator_invocations["Extract"]
            == EXPECTED_INPUT_FILES[name]
        ), f"{name}: scheduler re-extracted a shared input"
        extract_vertices = [
            v for v in build_stage_graph(plan).vertices
            if "Extract" in v.op_names
        ]
        assert len(extract_vertices) >= 1
        for vertex in extract_vertices:
            assert metrics.vertices[vertex.name].launches == 1

    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_spool_invocations_match_spool_reads(self, name, abcd_catalog):
        plan = paper_plan(abcd_catalog, name, exploit_cse=True)
        files = generate_for_catalog(abcd_catalog, seed=7)
        scheduler = TaskScheduler(_make_cluster(files), workers=4,
                                  validate=True)
        scheduler.execute(plan)
        metrics = scheduler.metrics
        assert (
            metrics.operator_invocations.get("Spool", 0)
            == metrics.spool_reads
        )


# ---------------------------------------------------------------------------
# Stage-graph structure
# ---------------------------------------------------------------------------


class TestStageGraphStructure:
    def test_spools_cut_into_own_vertices(self, abcd_catalog):
        plan = paper_plan(abcd_catalog, "S2", exploit_cse=True)
        graph = build_stage_graph(plan)
        spools = graph.spool_vertices()
        assert len(spools) == 1
        # S2 shares one scan across three consumers.
        assert len(spools[0].consumers) == 3

    def test_dependencies_are_acyclic_and_complete(self, abcd_catalog):
        for name in sorted(PAPER_SCRIPTS):
            graph = build_stage_graph(
                paper_plan(abcd_catalog, name, exploit_cse=True)
            )
            by_vid = {v.vid: v for v in graph.vertices}
            for vertex in graph.vertices:
                for dep in vertex.deps:
                    assert dep in by_vid
                    assert vertex.vid in by_vid[dep].consumers
            # Kahn's algorithm must consume every vertex (acyclicity).
            pending = {v.vid: len(v.deps) for v in graph.vertices}
            ready = [vid for vid, n in pending.items() if n == 0]
            seen = 0
            while ready:
                vid = ready.pop()
                seen += 1
                for consumer in by_vid[vid].consumers:
                    pending[consumer] -= 1
                    if pending[consumer] == 0:
                        ready.append(consumer)
            assert seen == len(graph.vertices), f"{name}: cycle in stage graph"

    def test_render_mentions_every_vertex(self, abcd_catalog):
        graph = build_stage_graph(
            paper_plan(abcd_catalog, "S4", exploit_cse=True)
        )
        text = graph.render()
        for vertex in graph.vertices:
            assert vertex.name in text
