"""Integration tests on the retail workload (joins + CSE + histograms)."""

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, PlanExecutor
from repro.naive import NaiveEvaluator
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.physical import PhysSpool
from repro.scope.compiler import compile_script
from repro.workloads.retail import (
    REPORT_SCRIPT,
    generate_retail_data,
    make_retail_catalog,
)

MACHINES = 4


@pytest.fixture(scope="module")
def retail():
    catalog, data = make_retail_catalog(seed=5)
    return catalog, data


@pytest.fixture
def warehouse_catalog():
    """The same schema at warehouse scale (estimation only).

    At the few-thousand-row execution scale recomputing the shared join
    is genuinely cheaper than materializing it — the cost-based sharing
    decision correctly skips the spool there — so the sharing assertions
    use production-sized statistics.
    """
    from repro.plan.columns import ColumnType
    from repro.scope.catalog import Catalog

    catalog = Catalog()
    catalog.register_file(
        "sales.log",
        [(c, ColumnType.INT)
         for c in ("OrderId", "CustId", "ProdId", "Qty", "Price")],
        rows=200_000_000,
        ndv={"OrderId": 200_000_000, "CustId": 50_000, "ProdId": 200,
             "Qty": 100, "Price": 5_000},
    )
    catalog.register_file(
        "customers.log",
        [(c, ColumnType.INT) for c in ("CustId", "Segment", "Nation")],
        rows=50_000,
        ndv={"CustId": 50_000, "Segment": 5, "Nation": 30},
    )
    catalog.register_file(
        "products.log",
        [(c, ColumnType.INT) for c in ("ProdId", "Category", "Cost")],
        rows=200,
        ndv={"ProdId": 200, "Category": 50, "Cost": 100},
    )
    return catalog


def optimize(catalog, exploit_cse=True):
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    return optimize_script(REPORT_SCRIPT, catalog, config,
                           exploit_cse=exploit_cse)


class TestSharing:
    def test_shared_groups_found(self, retail):
        catalog, _data = retail
        result = optimize(catalog)
        report = result.details.report
        # Enriched is explicitly shared; the duplicated per-customer
        # revenue query is found by fingerprints and merged.
        assert len(report.shared_groups) >= 2
        assert report.merged, "the textual duplicate must be merged"

    def test_cse_cheaper_at_warehouse_scale(self, warehouse_catalog):
        base = optimize(warehouse_catalog, exploit_cse=False)
        ext = optimize(warehouse_catalog, exploit_cse=True)
        assert ext.cost < base.cost

    def test_big_shared_intermediate_materialized(self, warehouse_catalog):
        result = optimize(warehouse_catalog)
        assert result.plan.find_all(PhysSpool)

    def test_tiny_data_recomputes_instead_of_spooling(self, retail):
        """At execution scale the cost-based sharing decision correctly
        refuses to materialize the cheap intermediates, and the result
        is never worse than the conventional plan."""
        catalog, _data = retail
        base = optimize(catalog, exploit_cse=False)
        ext = optimize(catalog, exploit_cse=True)
        assert ext.cost <= base.cost * (1 + 1e-9)


class TestCorrectness:
    @pytest.mark.parametrize("exploit_cse", [False, True])
    def test_all_reports_match_oracle(self, retail, exploit_cse):
        catalog, data = retail
        result = optimize(catalog, exploit_cse=exploit_cse)
        cluster = Cluster(machines=MACHINES)
        for path, rows in data.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        expected = NaiveEvaluator(data).run(
            compile_script(REPORT_SCRIPT, catalog)
        )
        assert set(outputs) == set(expected)
        for path, want in expected.items():
            assert outputs[path].sorted_rows() == want, path

    def test_sorted_report_is_ordered(self, retail):
        catalog, data = retail
        result = optimize(catalog)
        cluster = Cluster(machines=MACHINES)
        for path, rows in data.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        segments = [
            row["Segment"]
            for part in outputs["by_segment.out"].partitions
            for row in part
        ]
        assert segments == sorted(segments)

    def test_left_join_keeps_discontinued_products(self, retail):
        catalog, data = retail
        expected = NaiveEvaluator(data).run(
            compile_script(REPORT_SCRIPT, catalog)
        )
        nations = expected["by_nation.out"]
        # Discontinued products appear with a NULL category.
        assert any(row[1] is None for row in nations)


class TestHistogramDrivenEstimation:
    def test_big_orders_selectivity_from_histogram(self, retail):
        """``Qty > 40`` over the skewed exponential distribution is far
        from the 1/3 magic constant; the histogram estimate must track
        the true fraction."""
        catalog, data = retail
        true_fraction = sum(
            1 for row in data["sales.log"] if row["Qty"] > 40
        ) / len(data["sales.log"])
        hist = catalog.lookup("sales.log").histograms["Qty"]
        from repro.plan.expressions import BinaryOp

        estimate = hist.selectivity(BinaryOp.GT, 40)
        assert estimate == pytest.approx(true_fraction, abs=0.03)
        assert abs(estimate - 1 / 3) > 0.15  # the default would be way off
