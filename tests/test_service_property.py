"""Property-based tests (hypothesis) for the query service.

Two randomized properties the service must hold for *every* workload:

* **Shared-extract-once** — for a random pair of scripts built around a
  forced shared subexpression (same extract + aggregation core, random
  downstream consumers), batching them executes the shared Extract
  exactly once and every spool vertex launches exactly once, while the
  per-script outputs stay byte-identical to independent runs.
* **Never-stale** — under a random interleaving of submissions and
  statistics updates, a submission never returns a plan optimized
  against superseded statistics: every served plan's cache key carries
  the *current* per-file statistics versions, and its Extract
  cardinality estimates equal the catalog rows at serve time.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import execute_script
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.columns import ColumnType
from repro.plan.physical import PhysExtract
from repro.scope.catalog import Catalog
from repro.service import QueryService
from repro.workloads.datagen import generate_rows

MACHINES = 3

#: The forced shared subexpression both scripts of a pair start from.
SHARED_CORE = (
    'R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;\n'
    "R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;\n"
)

#: Downstream consumers over the shared core's output columns A,B,C,S.
_CONSUMERS = (
    "SELECT A,Sum(S) AS T FROM R GROUP BY A",
    "SELECT B,Sum(S) AS T FROM R GROUP BY B",
    "SELECT A,B,Sum(S) AS T FROM R GROUP BY A,B",
    "SELECT B,C,Max(S) AS T FROM R GROUP BY B,C",
    "SELECT A,B,C,S FROM R WHERE A > 1",
    "SELECT A,B,C,S FROM R WHERE S > 10",
    "SELECT C,Count(*) AS N FROM R GROUP BY C",
)


def small_catalog(rows: int = 240) -> Catalog:
    catalog = Catalog()
    catalog.register_file(
        "test.log",
        [(c, ColumnType.INT) for c in ("A", "B", "C", "D")],
        rows=rows,
        ndv={"A": 4, "B": 3, "C": 5, "D": 40},
    )
    return catalog


def _config() -> OptimizerConfig:
    return OptimizerConfig(cost_params=CostParams(machines=MACHINES))


def _files(catalog: Catalog, seed: int) -> dict:
    stats = catalog.lookup("test.log")
    return {
        "test.log": generate_rows(
            stats.schema.names,
            stats.rows,
            {c: stats.ndv_of(c) for c in stats.schema.names},
            seed=seed,
        )
    }


@st.composite
def script_pairs(draw):
    """Two scripts sharing SHARED_CORE with random distinct consumers."""
    scripts = []
    for i in range(2):
        n = draw(st.integers(1, 2))
        picks = draw(
            st.lists(st.sampled_from(_CONSUMERS), min_size=n, max_size=n,
                     unique=True)
        )
        body = SHARED_CORE
        for j, consumer in enumerate(picks):
            body += f"X{j} = {consumer};\n"
            body += f'OUTPUT X{j} TO "s{i}_out{j}.res";\n'
        scripts.append(body)
    return scripts


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(pair=script_pairs(), seed=st.integers(0, 3))
def test_batched_shared_extract_runs_once(pair, seed):
    """Batching a pair with a forced shared core extracts once, spools
    once, and still matches the independent runs byte for byte."""
    catalog = small_catalog()
    files = _files(catalog, seed)
    service = QueryService(catalog, _config())
    run = service.execute_many(pair, workers=2, files=files)

    assert run.metrics.operator_invocations["Extract"] == 1, (
        f"shared Extract executed more than once\n{pair[0]}\n---\n{pair[1]}"
    )
    for vertex in run.stage_graph.spool_vertices():
        assert run.metrics.vertices[vertex.name].launches == 1

    for text, outputs in zip(pair, run.outputs):
        solo = execute_script(text, catalog, _config(), files=files)
        assert set(outputs) == set(solo.outputs)
        for path in outputs:
            assert (
                outputs[path].canonical_bytes()
                == solo.outputs[path].canonical_bytes()
            ), f"batched {path} diverged\n{text}"


#: Scripts of the never-stale workload: two touch test.log, one doesn't.
_WORKLOAD = {
    "agg": SHARED_CORE + 'OUTPUT R TO "r.out";',
    "filter": (
        'E = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;\n'
        "F = SELECT A,B,C,D FROM E WHERE A > 2;\n"
        'OUTPUT F TO "f.out";'
    ),
    "other": (
        'E = EXTRACT A,B FROM "other.log" USING LogExtractor;\n'
        "G = SELECT A,Count(*) AS N FROM E GROUP BY A;\n"
        'OUTPUT G TO "g.out";'
    ),
}

_OPS = tuple(_WORKLOAD) + ("update:test.log", "update:other.log")


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(st.sampled_from(_OPS), min_size=2, max_size=12),
    rows0=st.integers(100, 999),
)
def test_cache_never_serves_stale_plans(ops, rows0):
    """Any interleaving of submits and stats updates stays fresh."""
    catalog = small_catalog(rows=rows0)
    catalog.register_file(
        "other.log", [(c, ColumnType.INT) for c in ("A", "B")],
        rows=rows0, ndv={"A": 4, "B": 3},
    )
    service = QueryService(catalog, _config())
    versions = {"test.log": 0, "other.log": 0}
    rows_now = {"test.log": rows0, "other.log": rows0}

    for step, op in enumerate(ops):
        if op.startswith("update:"):
            path = op.split(":", 1)[1]
            rows_now[path] = rows0 + step + 1
            versions[path] += 1
            service.update_statistics(path, rows=rows_now[path])
            continue
        sub = service.submit(_WORKLOAD[op])
        # The served plan must be keyed on the *current* versions of
        # exactly the files it reads ...
        for path, version in sub.key.stats_versions:
            assert version == versions[path], (
                f"step {step}: {op} served under stale version of {path}"
            )
        # ... and must embed the current statistics, not superseded
        # ones: Extract estimates mirror catalog rows at optimize time.
        for node in sub.result.plan.iter_nodes():
            if isinstance(node.op, PhysExtract):
                assert node.rows == rows_now[node.op.path], (
                    f"step {step}: {op} plan estimates "
                    f"{node.rows} rows for {node.op.path}, catalog has "
                    f"{rows_now[node.op.path]} — stale plan served"
                )
    service.cache.stats.check_consistent(len(service.cache))
