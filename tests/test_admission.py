"""Deterministic admission-controller tests (manual clock, no sleeps).

Every time-driven assertion in this module runs on a
:class:`~repro.service.ManualClock`: the test advances time explicitly
and pumps the controller on its own thread, so window semantics,
fairness, backpressure and single-flight dedup are checked with zero
timing dependence.  The ``-- no sleeps --`` property is itself part of
the contract (ISSUE 6): none of these tests may call ``time.sleep`` or
assert on wall-clock durations.
"""

from __future__ import annotations

import pytest

from repro.obs.bus import EventBus
from repro.service import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRejected,
    ManualClock,
    QueryService,
)
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import PAPER_SCRIPTS

S1 = PAPER_SCRIPTS["S1"]
S2 = PAPER_SCRIPTS["S2"]
S3 = PAPER_SCRIPTS["S3"]
S4 = PAPER_SCRIPTS["S4"]

#: S1 with every relation renamed — identical canonical DAG, so the
#: admission dedup must fold it onto S1's queue slot.
S1_RENAMED = S1.replace("R0", "Z0").replace("R1", "Z1").replace("R2", "Z2")

#: A script distinct from every paper script (different grouping).
B_SCRIPT = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A;
OUTPUT R TO "b.out";
"""

WINDOW = 1.0


@pytest.fixture
def service(abcd_catalog, small_config) -> QueryService:
    return QueryService(abcd_catalog, small_config)


@pytest.fixture
def shared_files(abcd_catalog):
    return generate_for_catalog(abcd_catalog, seed=3)


@pytest.fixture
def clock() -> ManualClock:
    return ManualClock()


def make_controller(service, clock, files, *, workers=0, **cfg):
    config = AdmissionConfig(window=cfg.pop("window", WINDOW), **cfg)
    return AdmissionController(service, clock=clock, files=files,
                               workers=workers, config=config)


# ---------------------------------------------------------------------------
# Window semantics
# ---------------------------------------------------------------------------


class TestWindowSemantics:
    def test_no_flush_before_the_deadline(self, service, clock,
                                          shared_files):
        ctl = make_controller(service, clock, shared_files)
        ticket = ctl.submit_nowait(S1)
        assert ctl.pump() == 0
        clock.advance(WINDOW / 2)
        assert ctl.pump() == 0
        assert not ticket.done()
        assert ctl.queue_depth() == 1

    def test_flush_on_window_expiry(self, service, clock, shared_files):
        ctl = make_controller(service, clock, shared_files)
        t1 = ctl.submit_nowait(S1, tenant="alice")
        t2 = ctl.submit_nowait(S2, tenant="bob")
        clock.advance(WINDOW)
        assert ctl.pump() == 2
        for ticket in (t1, t2):
            result = ticket.result(timeout=0)
            assert result.trigger == "window"
            assert result.group_size == 2
        assert ctl.queue_depth() == 0
        assert t1.result(timeout=0).window_id == t2.result(
            timeout=0).window_id

    def test_flush_on_script_threshold_is_synchronous(self, service, clock,
                                                      shared_files):
        """The threshold flush happens *inside* submit_nowait — no
        clock advance, no pump."""
        ctl = make_controller(service, clock, shared_files,
                              script_threshold=2)
        t1 = ctl.submit_nowait(S1)
        assert not t1.done()
        t2 = ctl.submit_nowait(S2)
        assert t1.done() and t2.done()
        assert t1.result(timeout=0).trigger == "threshold"

    def test_flush_on_row_threshold(self, service, clock, shared_files):
        # Each abcd script reads >= 4000 catalog rows; a threshold of
        # 5000 lets one script in and trips on the second.
        ctl = make_controller(service, clock, shared_files,
                              row_threshold=5_000)
        t1 = ctl.submit_nowait(S1)
        assert not t1.done()
        t2 = ctl.submit_nowait(S2)
        assert t1.done() and t2.done()
        assert t2.result(timeout=0).trigger == "threshold"

    def test_empty_window_is_a_noop(self, service, clock, shared_files):
        ctl = make_controller(service, clock, shared_files)
        assert ctl.pump() == 0
        clock.advance(10 * WINDOW)
        assert ctl.pump() == 0
        assert not service.bus.of_kind("service.admission.window_flush")
        assert ctl.stats.flushes == 0

    def test_window_opens_at_first_arrival(self, service, clock,
                                           shared_files):
        """The deadline is first-arrival + window, not pump-time."""
        ctl = make_controller(service, clock, shared_files)
        clock.advance(5.0)           # idle time does not count
        ticket = ctl.submit_nowait(S1)
        clock.advance(WINDOW * 0.9)
        assert ctl.pump() == 0
        clock.advance(WINDOW * 0.1)
        assert ctl.pump() == 1
        assert ticket.done()

    def test_next_window_opens_fresh_after_flush(self, service, clock,
                                                 shared_files):
        ctl = make_controller(service, clock, shared_files)
        ctl.submit_nowait(S1)
        clock.advance(WINDOW)
        assert ctl.pump() == 1
        later = ctl.submit_nowait(S2)
        assert ctl.pump() == 0     # new window, fresh deadline
        clock.advance(WINDOW)
        assert ctl.pump() == 1
        assert later.result(timeout=0).window_id == 1

    def test_force_flush_ignores_the_deadline(self, service, clock,
                                              shared_files):
        ctl = make_controller(service, clock, shared_files)
        ticket = ctl.submit_nowait(S1)
        assert ctl.flush() == 1
        assert ticket.result(timeout=0).trigger == "force"

    def test_max_batch_overflow_rolls_into_next_window(self, service,
                                                       clock,
                                                       shared_files):
        ctl = make_controller(service, clock, shared_files, max_batch=2)
        tickets = [ctl.submit_nowait(text, tenant=f"t{i}")
                   for i, text in enumerate((S1, S2, S3))]
        clock.advance(WINDOW)
        # The deadline fires, the first flush takes max_batch=2 and the
        # leftover opens a fresh window...
        assert ctl.pump() == 2
        assert [t.done() for t in tickets] == [True, True, False]
        # ...which flushes one window later.
        clock.advance(WINDOW)
        assert ctl.pump() == 1
        assert tickets[2].result(timeout=0).window_id == 1


# ---------------------------------------------------------------------------
# Fairness
# ---------------------------------------------------------------------------


SCRIPT_POOL = [S1, S2, S3, S4]


class TestFairness:
    def test_flooding_tenant_cannot_starve_another(self, service, clock,
                                                   shared_files):
        """Tenant A floods 4 distinct scripts; B's single script must
        ride the *first* window despite A's backlog (max_batch=2)."""
        ctl = make_controller(service, clock, shared_files, max_batch=2)
        a_tickets = [ctl.submit_nowait(text, tenant="A")
                     for text in SCRIPT_POOL]
        b_ticket = ctl.submit_nowait(B_SCRIPT, tenant="B")
        clock.advance(WINDOW)
        assert ctl.pump() == 2
        assert b_ticket.done(), "tenant B starved beyond one window"
        assert a_tickets[0].done()      # round-robin: one from each
        assert not any(t.done() for t in a_tickets[1:])

    def test_round_robin_rotation_persists_across_windows(self, service,
                                                          clock,
                                                          shared_files):
        """With max_batch=1 the drain pointer must rotate A, B, A, B —
        not restart at A every window."""
        ctl = make_controller(service, clock, shared_files, max_batch=1)
        a1 = ctl.submit_nowait(S1, tenant="A")
        a2 = ctl.submit_nowait(S2, tenant="A")
        b1 = ctl.submit_nowait(S3, tenant="B")
        b2 = ctl.submit_nowait(S4, tenant="B")
        order = []
        for _ in range(4):
            clock.advance(WINDOW)
            assert ctl.pump() == 1
            for name, ticket in (("a1", a1), ("a2", a2), ("b1", b1),
                                 ("b2", b2)):
                if ticket.done() and name not in order:
                    order.append(name)
        assert order == ["a1", "b1", "a2", "b2"]

    def test_weighted_draining(self, service, clock, shared_files):
        """A tenant with weight 3 takes three slots per rotation
        visit."""
        ctl = make_controller(service, clock, shared_files, max_batch=4,
                              tenant_weights={"heavy": 3})
        heavy = [ctl.submit_nowait(text, tenant="heavy")
                 for text in (S1, S2, S3)]
        light = [ctl.submit_nowait(text, tenant="light")
                 for text in (S4, B_SCRIPT)]
        clock.advance(WINDOW)
        assert ctl.pump() == 4
        assert all(t.done() for t in heavy)
        assert light[0].done() and not light[1].done()


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_full_queue_rejects_with_typed_error(self, service, clock,
                                                 shared_files):
        ctl = make_controller(service, clock, shared_files, max_pending=2)
        ctl.submit_nowait(S1)
        ctl.submit_nowait(S2)
        with pytest.raises(AdmissionRejected) as info:
            ctl.submit_nowait(S3, tenant="late")
        assert info.value.tenant == "late"
        assert info.value.queue_depth == 2
        assert info.value.max_pending == 2
        assert info.value.reason == "queue full"
        assert ctl.stats.rejected == 1
        rejects = service.bus.of_kind("service.admission.reject")
        assert len(rejects) == 1
        assert rejects[0].get("tenant") == "late"

    def test_drained_queue_accepts_again(self, service, clock,
                                         shared_files):
        ctl = make_controller(service, clock, shared_files, max_pending=1)
        ctl.submit_nowait(S1)
        with pytest.raises(AdmissionRejected):
            ctl.submit_nowait(S2)
        clock.advance(WINDOW)
        ctl.pump()
        ticket = ctl.submit_nowait(S2)      # accepted now
        clock.advance(WINDOW)
        ctl.pump()
        assert ticket.done()
        assert ctl.stats.accepted == 2
        assert ctl.stats.rejected == 1

    def test_dedup_does_not_consume_a_queue_slot(self, service, clock,
                                                 shared_files):
        """An identical in-window script joins the existing slot even
        when the queue is at capacity."""
        ctl = make_controller(service, clock, shared_files, max_pending=1)
        first = ctl.submit_nowait(S1)
        joined = ctl.submit_nowait(S1_RENAMED, tenant="other")
        assert ctl.queue_depth() == 1
        clock.advance(WINDOW)
        ctl.pump()
        assert first.done() and joined.done()


# ---------------------------------------------------------------------------
# Single-flight dedup
# ---------------------------------------------------------------------------


class TestSingleFlight:
    def test_identical_scripts_optimize_and_execute_once(self, service,
                                                         clock,
                                                         shared_files):
        ctl = make_controller(service, clock, shared_files)
        t1 = ctl.submit_nowait(S1, tenant="alice")
        t2 = ctl.submit_nowait(S1, tenant="bob")
        assert ctl.queue_depth() == 1
        clock.advance(WINDOW)
        assert ctl.pump() == 1
        r1, r2 = t1.result(timeout=0), t2.result(timeout=0)
        assert not r1.deduped and r2.deduped
        assert r1.outputs is r2.outputs     # literally the same result
        assert r2.tenant == "bob"           # attribution is per caller
        assert service.stats.optimizations == 1
        assert ctl.stats.deduped == 1
        assert ctl.stats.executed_scripts == 1

    def test_renamed_script_folds_onto_the_original(self, service, clock,
                                                    shared_files):
        """Dedup identity is the canonical DAG, not the text."""
        ctl = make_controller(service, clock, shared_files)
        ctl.submit_nowait(S1)
        ctl.submit_nowait(S1_RENAMED)
        assert ctl.queue_depth() == 1

    def test_different_flags_do_not_dedup(self, service, clock,
                                          shared_files):
        """exploit_cse is part of the compatibility key: the same
        script under different optimizer flags must not share a plan
        *or* a merged group."""
        ctl = make_controller(service, clock, shared_files)
        a = ctl.submit_nowait(S1, exploit_cse=True)
        b = ctl.submit_nowait(S1, exploit_cse=False)
        assert ctl.queue_depth() == 2
        clock.advance(WINDOW)
        assert ctl.pump() == 2
        assert a.result(timeout=0).group_size == 1
        assert b.result(timeout=0).group_size == 1
        assert ctl.stats.groups == 2


# ---------------------------------------------------------------------------
# Results, labels and shared execution
# ---------------------------------------------------------------------------


class TestResults:
    def test_outputs_match_direct_execution(self, service, clock,
                                            shared_files):
        ctl = make_controller(service, clock, shared_files, workers=2)
        tickets = {name: ctl.submit_nowait(PAPER_SCRIPTS[name],
                                           tenant=name)
                   for name in ("S1", "S2", "S3")}
        clock.advance(WINDOW)
        ctl.pump()
        for name, ticket in tickets.items():
            result = ticket.result(timeout=0)
            direct = service.execute(PAPER_SCRIPTS[name], workers=0,
                                     files=shared_files)
            assert set(result.outputs) == set(direct.outputs)
            for path in result.outputs:
                assert (result.outputs[path].canonical_bytes()
                        == direct.outputs[path].canonical_bytes()), (
                    f"{name}:{path} differs from direct execution"
                )

    def test_shared_vertices_launch_once_per_window(self, service, clock,
                                                    shared_files):
        """S1+S2 share their first aggregation; admission must execute
        the shared spool exactly once, serving both callers."""
        ctl = make_controller(service, clock, shared_files, workers=2)
        t1 = ctl.submit_nowait(S1, tenant="alice")
        t2 = ctl.submit_nowait(S2, tenant="bob")
        clock.advance(WINDOW)
        ctl.pump()
        run = t1.result(timeout=0).run
        assert run is t2.result(timeout=0).run
        shared = run.shared_vertices()
        assert shared, "S1+S2 window must contain cross-script vertices"
        for vertex in shared:
            assert run.metrics.vertices[vertex.name].launches == 1
        spools = [v for v in shared if v.is_spool]
        assert spools, "the shared subexpression must be spooled"
        labels = {p.split("/", 1)[0]
                  for v in spools for p in v.serves}
        # The spool serves both scripts' (canonical) label namespaces;
        # tenant attribution travels on the ScriptResult.
        assert len(labels) == 2
        assert labels <= set(run.submit.labels)
        assert {t1.result(timeout=0).tenant,
                t2.result(timeout=0).tenant} == {"alice", "bob"}
        assert ctl.stats.shared_vertices == len(shared)

    def test_labels_are_canonical_and_tenant_independent(self, service,
                                                         clock,
                                                         shared_files):
        """Merged-batch labels are fingerprint-ordered ``q0..qn`` —
        tenant names (even ones holding the '/' path separator) never
        leak into the execution namespace, two scripts from one tenant
        in one window get distinct labels, and a later window with the
        same scripts from *different* tenants hits the plan cache."""
        ctl = make_controller(service, clock, shared_files)
        t1 = ctl.submit_nowait(S1, tenant="team/alpha")
        t2 = ctl.submit_nowait(S2, tenant="team/alpha")
        clock.advance(WINDOW)
        assert ctl.pump() == 2
        r1, r2 = t1.result(timeout=0), t2.result(timeout=0)
        assert {r1.label, r2.label} == {"q0", "q1"}
        assert r1.tenant == r2.tenant == "team/alpha"
        assert r1.run.submit.cache_hit is False
        # Both callers still get their own script's outputs.
        assert set(r1.outputs) == {"result1.out", "result2.out"}
        assert set(r2.outputs) == {
            "result1.out", "result2.out", "result3.out"}
        # Same window content from other tenants, opposite arrival
        # order: the canonical labels make it a plan-cache hit.
        t3 = ctl.submit_nowait(S2, tenant="other")
        t4 = ctl.submit_nowait(S1, tenant="elsewhere")
        clock.advance(WINDOW)
        assert ctl.pump() == 2
        r3 = t3.result(timeout=0)
        assert r3.run.submit.cache_hit is True
        assert {r3.label, t4.result(timeout=0).label} == {"q0", "q1"}

    def test_result_attribution_fields(self, service, clock, shared_files):
        ctl = make_controller(service, clock, shared_files)
        ticket = ctl.submit_nowait(S1, tenant="me")
        clock.advance(WINDOW)
        ctl.pump()
        result = ticket.result(timeout=0)
        assert result.tenant == "me"
        assert result.window_id == 0
        assert result.fingerprint == ticket.fingerprint
        assert len(result.fingerprint) == 64
        assert result.run.submit.cache_hit is False
        # Resubmitting the same window content hits the plan cache.
        again = ctl.submit_nowait(S1, tenant="me")
        clock.advance(WINDOW)
        ctl.pump()
        assert again.result(timeout=0).run.submit.cache_hit is True


# ---------------------------------------------------------------------------
# Failure routing and ticket protocol
# ---------------------------------------------------------------------------


class TestFailureRouting:
    def test_execution_error_reaches_every_caller(self, service, clock,
                                                  shared_files,
                                                  monkeypatch):
        ctl = make_controller(service, clock, shared_files)
        boom = RuntimeError("injected execution failure")

        def explode(*args, **kwargs):
            raise boom

        monkeypatch.setattr(service, "execute_many", explode)
        t1 = ctl.submit_nowait(S1, tenant="alice")
        t2 = ctl.submit_nowait(S1, tenant="bob")       # deduped
        clock.advance(WINDOW)
        ctl.pump()
        for ticket in (t1, t2):
            with pytest.raises(RuntimeError, match="injected"):
                ticket.result(timeout=0)
        assert ctl.stats.failed_groups == 1
        # The controller keeps serving after a failed group.
        monkeypatch.undo()
        t3 = ctl.submit_nowait(S2)
        clock.advance(WINDOW)
        assert ctl.pump() == 1
        assert t3.result(timeout=0).outputs

    def test_unresolved_ticket_times_out(self, service, clock,
                                         shared_files):
        ctl = make_controller(service, clock, shared_files)
        ticket = ctl.submit_nowait(S1)
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0)


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class TestObsIntegration:
    def test_event_stream_tells_the_whole_story(self, abcd_catalog,
                                                small_config,
                                                clock):
        bus = EventBus()
        service = QueryService(abcd_catalog, small_config, bus=bus)
        files = generate_for_catalog(abcd_catalog, seed=3)
        ctl = make_controller(service, clock, files)
        ctl.submit_nowait(S1, tenant="alice")
        ctl.submit_nowait(S1, tenant="bob")
        clock.advance(WINDOW)
        ctl.pump()

        enqueues = bus.of_kind("service.admission.enqueue")
        assert len(enqueues) == 1
        assert enqueues[0].get("tenant") == "alice"
        assert enqueues[0].get("queue_depth") == 1

        dedups = bus.of_kind("service.admission.dedup")
        assert len(dedups) == 1
        assert dedups[0].get("joined_tenant") == "alice"

        [group] = bus.of_kind("service.admission.group")
        assert group.get("group_size") == 1
        assert group.get("tenants") == ("alice",)

        [flush] = bus.of_kind("service.admission.window_flush")
        assert flush.get("window") == 0
        assert flush.get("trigger") == "window"
        assert flush.get("scripts") == 1
        assert flush.get("groups") == 1
        assert flush.get("queue_depth") == 0

        depths = [e.get("depth")
                  for e in bus.of_kind("service.admission.queue_depth")]
        assert depths == [1, 1, 0]   # enqueue, dedup, flush

    def test_stats_snapshot_shape(self, service, clock, shared_files):
        ctl = make_controller(service, clock, shared_files)
        ctl.submit_nowait(S1)
        clock.advance(WINDOW)
        ctl.pump()
        snap = ctl.stats_snapshot()
        assert snap["submits"] == snap["accepted"] == 1
        assert snap["flushes"] == snap["windows"] == 1
        assert snap["queue_depth"] == 0
        assert snap["rejected"] == snap["deduped"] == 0
        assert snap["max_queue_depth"] == 1


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"window": -1.0},
        {"max_pending": 0},
        {"max_batch": 0},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionConfig(**kwargs)
