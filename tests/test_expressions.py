"""Unit tests for scalar and aggregate expressions."""

import pytest

from repro.plan.expressions import (
    AggFunc,
    Aggregate,
    BinaryExpr,
    BinaryOp,
    ColumnRef,
    Literal,
    NotExpr,
    conjuncts,
    equi_join_keys,
)


def col(name):
    return ColumnRef(name)


def eq(a, b):
    return BinaryExpr(BinaryOp.EQ, a, b)


class TestScalarEvaluation:
    def test_column_ref(self):
        assert col("A").evaluate({"A": 3}) == 3

    def test_literal(self):
        assert Literal(7).evaluate({}) == 7

    @pytest.mark.parametrize(
        "op,expected",
        [
            (BinaryOp.ADD, 7),
            (BinaryOp.SUB, 3),
            (BinaryOp.MUL, 10),
            (BinaryOp.DIV, 2.5),
        ],
    )
    def test_arithmetic(self, op, expected):
        expr = BinaryExpr(op, col("A"), col("B"))
        assert expr.evaluate({"A": 5, "B": 2}) == expected

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (BinaryOp.EQ, 1, 1, True),
            (BinaryOp.NE, 1, 2, True),
            (BinaryOp.LT, 1, 2, True),
            (BinaryOp.LE, 2, 2, True),
            (BinaryOp.GT, 3, 2, True),
            (BinaryOp.GE, 1, 2, False),
        ],
    )
    def test_comparisons(self, op, a, b, expected):
        expr = BinaryExpr(op, col("A"), col("B"))
        assert expr.evaluate({"A": a, "B": b}) == expected

    def test_boolean_logic(self):
        pred = BinaryExpr(
            BinaryOp.AND,
            BinaryExpr(BinaryOp.OR, col("X"), col("Y")),
            NotExpr(col("Z")),
        )
        assert pred.evaluate({"X": 0, "Y": 1, "Z": 0}) is True
        assert pred.evaluate({"X": 0, "Y": 0, "Z": 0}) is False
        assert pred.evaluate({"X": 1, "Y": 1, "Z": 1}) is False

    def test_referenced_columns(self):
        expr = BinaryExpr(BinaryOp.ADD, col("A"), BinaryExpr(
            BinaryOp.MUL, col("B"), Literal(2)))
        assert expr.referenced_columns() == {"A", "B"}


class TestAggregates:
    def run_agg(self, agg, values, column="D"):
        state = agg.init_state()
        for value in values:
            state = agg.accumulate(state, {column: value})
        return agg.finalize(state)

    def test_sum(self):
        agg = Aggregate(AggFunc.SUM, col("D"), "S")
        assert self.run_agg(agg, [1, 2, 3]) == 6

    def test_sum_ignores_nulls(self):
        agg = Aggregate(AggFunc.SUM, col("D"), "S")
        assert self.run_agg(agg, [1, None, 3]) == 4

    def test_sum_of_nothing_is_null(self):
        agg = Aggregate(AggFunc.SUM, col("D"), "S")
        assert self.run_agg(agg, []) is None

    def test_count_star(self):
        agg = Aggregate(AggFunc.COUNT, None, "C")
        assert self.run_agg(agg, [5, None, 7]) == 3

    def test_count_column_skips_nulls(self):
        agg = Aggregate(AggFunc.COUNT, col("D"), "C")
        assert self.run_agg(agg, [5, None, 7]) == 2

    def test_min_max(self):
        assert self.run_agg(Aggregate(AggFunc.MIN, col("D"), "m"), [4, 1, 9]) == 1
        assert self.run_agg(Aggregate(AggFunc.MAX, col("D"), "m"), [4, 1, 9]) == 9

    def test_avg(self):
        agg = Aggregate(AggFunc.AVG, col("D"), "a")
        assert self.run_agg(agg, [2, 4]) == 3.0

    def test_decomposition_mapping(self):
        assert AggFunc.SUM.merge_func is AggFunc.SUM
        assert AggFunc.COUNT.merge_func is AggFunc.SUM
        assert AggFunc.MIN.merge_func is AggFunc.MIN
        assert AggFunc.MAX.merge_func is AggFunc.MAX

    def test_avg_cannot_split_directly(self):
        with pytest.raises(ValueError):
            AggFunc.AVG.partial_func
        with pytest.raises(ValueError):
            AggFunc.AVG.merge_func


class TestPredicateHelpers:
    def test_conjuncts_flattens_ands(self):
        pred = BinaryExpr(
            BinaryOp.AND,
            eq(col("A"), col("B")),
            BinaryExpr(BinaryOp.AND, eq(col("C"), col("D")), col("E")),
        )
        assert len(conjuncts(pred)) == 3

    def test_equi_join_keys(self):
        pred = BinaryExpr(
            BinaryOp.AND, eq(col("A"), col("X")), eq(col("B"), col("Y"))
        )
        assert equi_join_keys(pred) == (("A", "B"), ("X", "Y"))

    def test_equi_join_keys_rejects_non_equality(self):
        pred = BinaryExpr(BinaryOp.LT, col("A"), col("X"))
        assert equi_join_keys(pred) is None
