"""Unit tests for per-operator delivered-property derivation."""

import pytest

from repro.plan.columns import Column, Schema
from repro.plan.expressions import (
    Aggregate,
    AggFunc,
    BinaryExpr,
    BinaryOp,
    ColumnRef,
    Literal,
    NamedExpr,
)
from repro.plan.logical import GroupByMode
from repro.plan.physical import (
    PhysExtract,
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysMerge,
    PhysMergeJoin,
    PhysPassThrough,
    PhysProject,
    PhysRangeRepartition,
    PhysRepartition,
    PhysSort,
    PhysSpool,
    PhysStreamAgg,
    PhysTopN,
)
from repro.plan.properties import (
    Partitioning,
    PartitionKind,
    PhysicalProps,
    SortOrder,
)

HASH_B_SORTED = PhysicalProps(
    Partitioning.hashed({"B"}), SortOrder.of("B", "A")
)
RANDOM = PhysicalProps()


class TestExchanges:
    def test_repartition_delivers_hash(self):
        props = PhysRepartition(("A", "B")).derive_props([RANDOM])
        assert props.partitioning == Partitioning.hashed({"A", "B"})
        assert not props.sort_order.is_sorted

    def test_repartition_merge_sort_preserved_when_input_sorted(self):
        op = PhysRepartition(("B",), merge_sort=SortOrder.of("B", "A"))
        props = op.derive_props([HASH_B_SORTED])
        assert props.sort_order == SortOrder.of("B", "A")

    def test_repartition_merge_sort_dropped_when_input_unsorted(self):
        op = PhysRepartition(("B",), merge_sort=SortOrder.of("B", "A"))
        props = op.derive_props([RANDOM])
        assert not props.sort_order.is_sorted

    def test_merge_delivers_serial(self):
        props = PhysMerge().derive_props([HASH_B_SORTED])
        assert props.partitioning.kind is PartitionKind.SERIAL

    def test_range_repartition_delivers_range(self):
        props = PhysRangeRepartition(("B", "A")).derive_props([RANDOM])
        assert props.partitioning == Partitioning.ranged(("B", "A"))


class TestComputeOperators:
    def test_filter_preserves_everything(self):
        pred = BinaryExpr(BinaryOp.GT, ColumnRef("A"), Literal(1))
        assert PhysFilter(pred).derive_props([HASH_B_SORTED]) == HASH_B_SORTED

    def test_sort_overrides_order_keeps_partitioning(self):
        props = PhysSort(SortOrder.of("A")).derive_props([HASH_B_SORTED])
        assert props.partitioning == HASH_B_SORTED.partitioning
        assert props.sort_order == SortOrder.of("A")

    def test_project_renames_partitioning_columns(self):
        exprs = (
            NamedExpr(ColumnRef("B"), "Bee"),
            NamedExpr(ColumnRef("A"), "A"),
        )
        props = PhysProject(exprs).derive_props([HASH_B_SORTED])
        assert props.partitioning == Partitioning.hashed({"Bee"})
        assert props.sort_order == SortOrder.of("Bee", "A")

    def test_project_dropping_partition_column_degrades(self):
        exprs = (NamedExpr(ColumnRef("A"), "A"),)
        props = PhysProject(exprs).derive_props([HASH_B_SORTED])
        assert props.partitioning.kind is PartitionKind.RANDOM
        assert not props.sort_order.is_sorted

    def test_project_computed_column_breaks_survival(self):
        exprs = (
            NamedExpr(BinaryExpr(BinaryOp.ADD, ColumnRef("B"), Literal(1)),
                      "B"),
        )
        props = PhysProject(exprs).derive_props([HASH_B_SORTED])
        assert props.partitioning.kind is PartitionKind.RANDOM

    def test_project_renames_range_partitioning(self):
        ranged = PhysicalProps(Partitioning.ranged(("B",)),
                               SortOrder.of("B"))
        exprs = (NamedExpr(ColumnRef("B"), "K"),)
        props = PhysProject(exprs).derive_props([ranged])
        assert props.partitioning == Partitioning.ranged(("K",))


class TestAggregates:
    AGGS = (Aggregate(AggFunc.SUM, ColumnRef("D"), "S"),)

    def test_stream_agg_delivers_key_order(self):
        op = PhysStreamAgg(("B", "A"), self.AGGS, GroupByMode.FULL)
        props = op.derive_props([HASH_B_SORTED])
        assert props.sort_order == SortOrder.of("B", "A")
        assert props.partitioning == Partitioning.hashed({"B"})

    def test_agg_drops_partitioning_on_aggregated_columns(self):
        child = PhysicalProps(Partitioning.hashed({"D"}), SortOrder())
        op = PhysHashAgg(("A",), self.AGGS, GroupByMode.LOCAL)
        props = op.derive_props([child])
        assert props.partitioning.kind is PartitionKind.RANDOM

    def test_hash_agg_destroys_order(self):
        op = PhysHashAgg(("B",), self.AGGS, GroupByMode.FULL)
        props = op.derive_props([HASH_B_SORTED])
        assert not props.sort_order.is_sorted

    def test_topn_full_is_serial_and_sorted(self):
        op = PhysTopN(5, ("A",), GroupByMode.FULL)
        props = op.derive_props([HASH_B_SORTED])
        assert props.partitioning.kind is PartitionKind.SERIAL
        assert props.sort_order == SortOrder.of("A")

    def test_topn_local_keeps_partitioning(self):
        op = PhysTopN(5, ("A",), GroupByMode.LOCAL)
        props = op.derive_props([HASH_B_SORTED])
        assert props.partitioning == HASH_B_SORTED.partitioning


class TestJoinsAndSharing:
    def test_merge_join_delivers_left_layout(self):
        left = PhysicalProps(Partitioning.hashed({"K"}), SortOrder.of("K"))
        right = PhysicalProps(Partitioning.hashed({"J"}), SortOrder.of("J"))
        op = PhysMergeJoin(("K",), ("J",))
        props = op.derive_props([left, right])
        assert props.partitioning == left.partitioning
        assert props.sort_order == SortOrder.of("K")

    def test_hash_join_destroys_order(self):
        left = PhysicalProps(Partitioning.hashed({"K"}), SortOrder.of("K"))
        right = PhysicalProps(Partitioning.hashed({"J"}), SortOrder())
        props = PhysHashJoin(("K",), ("J",)).derive_props([left, right])
        assert props.partitioning == left.partitioning
        assert not props.sort_order.is_sorted

    def test_spool_and_passthrough_are_transparent(self):
        assert PhysSpool().derive_props([HASH_B_SORTED]) == HASH_B_SORTED
        assert PhysPassThrough().derive_props([HASH_B_SORTED]) == HASH_B_SORTED

    def test_extract_delivers_nothing(self):
        schema = Schema([Column("A")])
        props = PhysExtract(1, "f", "E", schema).derive_props([])
        assert props.partitioning.kind is PartitionKind.RANDOM
        assert not props.sort_order.is_sorted
