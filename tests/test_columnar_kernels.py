"""Unit tests for the columnar backend's vectorized kernels.

The generated kernels must reproduce the row backend's expression
semantics *exactly* — NULL comparisons are false, NULL arithmetic is
NULL, AND/OR genuinely short-circuit, truthiness coerces like
``bool()`` — because the differential harness compares byte-identical
outputs.  So every test here cross-checks a compiled kernel against
``Expr.evaluate`` row by row.
"""

from __future__ import annotations

import pytest

from repro.exec.columnar import (
    ColumnBatch,
    aggregate_groups,
    compile_select_kernel,
    compile_value_kernel,
)
from repro.plan.expressions import (
    Aggregate,
    AggFunc,
    BinaryExpr,
    BinaryOp,
    ColumnRef,
    Literal,
    NotExpr,
)


def col(name):
    return ColumnRef(name)


def lit(value):
    return Literal(value)


def binop(op, left, right):
    return BinaryExpr(op, left, right)


#: A table exercising NULLs, zeros, negatives, floats and unicode.
ROWS = [
    {"A": 3, "B": 0, "S": "x"},
    {"A": None, "B": 2, "S": "naïve-✓"},
    {"A": -1, "B": None, "S": ""},
    {"A": 0, "B": 5, "S": "x"},
    {"A": 7, "B": 7, "S": None},
    {"A": 2, "B": -3, "S": "naïve-✓"},
]
BATCH = ColumnBatch.from_rows(("A", "B", "S"), ROWS)


def assert_matches_row_semantics(expr, rows=ROWS, batch=BATCH):
    """The compiled kernels agree with ``Expr.evaluate`` on every row."""
    expected_values = [expr.evaluate(row) for row in rows]
    value_kernel = compile_value_kernel(expr)
    assert value_kernel(batch.columns, len(batch)) == expected_values
    expected_selection = [
        i for i, v in enumerate(expected_values) if bool(v)
    ]
    select_kernel = compile_select_kernel(expr)
    assert select_kernel(batch.columns, len(batch)) == expected_selection


class TestComparisonAndArithmetic:
    @pytest.mark.parametrize("op", [
        BinaryOp.EQ, BinaryOp.NE, BinaryOp.LT, BinaryOp.LE,
        BinaryOp.GT, BinaryOp.GE,
    ])
    def test_null_comparison_is_false(self, op):
        assert_matches_row_semantics(binop(op, col("A"), col("B")))

    @pytest.mark.parametrize("op", [
        BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL,
    ])
    def test_null_arithmetic_is_null(self, op):
        expr = binop(op, col("A"), col("B"))
        values = compile_value_kernel(expr)(BATCH.columns, len(BATCH))
        assert values[1] is None and values[2] is None  # NULL operands
        assert_matches_row_semantics(expr)

    def test_comparison_against_literal(self):
        assert_matches_row_semantics(binop(BinaryOp.GT, col("A"), lit(1)))

    def test_string_equality_unicode(self):
        assert_matches_row_semantics(
            binop(BinaryOp.EQ, col("S"), lit("naïve-✓"))
        )

    def test_literal_value_kernel_fast_path(self):
        values = compile_value_kernel(lit(42))(BATCH.columns, len(BATCH))
        assert values == [42] * len(BATCH)


class TestBooleanLogic:
    def test_and_short_circuit_protects_division(self):
        # Row semantics: B <> 0 AND A / B > 1 never divides by zero
        # because AND short-circuits.  The generated kernel must too.
        expr = binop(
            BinaryOp.AND,
            binop(BinaryOp.NE, col("B"), lit(0)),
            binop(BinaryOp.GT,
                  binop(BinaryOp.DIV, col("A"), col("B")), lit(0)),
        )
        assert_matches_row_semantics(expr)

    def test_or_short_circuit(self):
        expr = binop(
            BinaryOp.OR,
            binop(BinaryOp.EQ, col("B"), lit(0)),
            binop(BinaryOp.GT,
                  binop(BinaryOp.DIV, col("A"), col("B")), lit(0)),
        )
        # B == 0 rows must not evaluate the division.
        assert_matches_row_semantics(expr)

    def test_not(self):
        assert_matches_row_semantics(
            NotExpr(binop(BinaryOp.EQ, col("A"), col("B")))
        )

    def test_not_of_null_comparison(self):
        # NULL = NULL is false, so NOT of it is true — rows with NULLs
        # pass through NOT(=) filters.
        expr = NotExpr(binop(BinaryOp.EQ, col("A"), lit(None)))
        assert_matches_row_semantics(expr)

    def test_nested_boolean_tree(self):
        expr = binop(
            BinaryOp.OR,
            binop(BinaryOp.AND,
                  binop(BinaryOp.GE, col("A"), lit(0)),
                  binop(BinaryOp.LT, col("B"), lit(6))),
            NotExpr(binop(BinaryOp.EQ, col("S"), lit("x"))),
        )
        assert_matches_row_semantics(expr)


class TestKernelCompilation:
    def test_kernels_are_cached_per_expression(self):
        expr = binop(BinaryOp.GT, col("A"), lit(1))
        assert compile_select_kernel(expr) is compile_select_kernel(expr)
        assert compile_value_kernel(expr) is compile_value_kernel(expr)

    def test_generated_source_is_attached(self):
        expr = binop(BinaryOp.AND,
                     binop(BinaryOp.GT, col("A"), lit(1)),
                     binop(BinaryOp.LT, col("B"), lit(9)))
        source = compile_select_kernel(expr).__source__
        assert "for i in range(n):" in source
        # AND compiles to a nested if, not a boolean operator.
        assert "if " in source and " and " not in source

    def test_empty_batch(self):
        empty = ColumnBatch.from_rows(("A", "B", "S"), [])
        expr = binop(BinaryOp.GT, col("A"), lit(1))
        assert compile_select_kernel(expr)(empty.columns, 0) == []
        assert compile_value_kernel(expr)(empty.columns, 0) == []


class TestAggregateGroups:
    GROUPS = [[0, 2, 4], [1, 3], [5], []]

    def _expected(self, agg, values):
        # ``accumulate`` folds row dicts; rebuild rows from the column.
        rows = [{"A": v} for v in (values or [])]
        out = []
        for indices in self.GROUPS:
            state = agg.init_state()
            for i in indices:
                state = agg.accumulate(state, rows[i] if rows else {})
            out.append(agg.finalize(state))
        return out

    @pytest.mark.parametrize("func", list(AggFunc))
    def test_matches_row_accumulate_chain(self, func):
        agg = Aggregate(func, col("A"), "out")
        values = [row["A"] for row in ROWS]
        assert aggregate_groups(agg, values, self.GROUPS) == \
            self._expected(agg, values)

    def test_count_star_counts_nulls(self):
        agg = Aggregate(AggFunc.COUNT, None, "n")
        assert aggregate_groups(agg, None, self.GROUPS) == [3, 2, 1, 0]

    def test_count_arg_skips_nulls(self):
        agg = Aggregate(AggFunc.COUNT, col("A"), "n")
        values = [row["A"] for row in ROWS]
        assert aggregate_groups(agg, values, self.GROUPS) == [3, 1, 1, 0]

    def test_all_null_group_sums_to_null(self):
        agg = Aggregate(AggFunc.SUM, col("A"), "s")
        assert aggregate_groups(agg, [None, None], [[0, 1]]) == [None]

    def test_avg_preserves_float_fold_order(self):
        agg = Aggregate(AggFunc.AVG, col("A"), "a")
        values = [0.1, 0.2, 0.3]
        expected = self._expected(agg, values + [None] * 3)
        assert aggregate_groups(agg, values + [None] * 3,
                                self.GROUPS) == expected
