"""Tests for SELECT DISTINCT and sorted (ORDER BY) outputs."""

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, PlanExecutor
from repro.naive import NaiveEvaluator
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.logical import LogicalGroupBy, LogicalOutput
from repro.plan.physical import PhysMerge, PhysOutput
from repro.scope.compiler import compile_script
from repro.scope.errors import ResolutionError
from repro.scope.parser import parse
from repro.workloads.datagen import generate_for_catalog

DISTINCT_SCRIPT = (
    'R0 = EXTRACT A,B,D FROM "test.log" USING E;\n'
    "R = SELECT DISTINCT A,B FROM R0 WHERE D > 10;\n"
    'OUTPUT R TO "o";'
)

SORTED_OUTPUT_SCRIPT = (
    'R0 = EXTRACT A,B,D FROM "test.log" USING E;\n'
    "S = SELECT A,Sum(D) AS T FROM R0 GROUP BY A;\n"
    'OUTPUT S TO "sorted.out" ORDER BY T, A;'
)


class TestParsing:
    def test_distinct_flag(self):
        script = parse("R = SELECT DISTINCT A,B FROM X;")
        assert script.statements[0].queries[0].distinct

    def test_output_order_by(self):
        script = parse('OUTPUT R TO "f" ORDER BY A, B;')
        stmt = script.statements[0]
        assert tuple(r.name for r in stmt.order_by) == ("A", "B")

    def test_plain_output_has_no_order(self):
        script = parse('OUTPUT R TO "f";')
        assert script.statements[0].order_by == ()


class TestCompilation:
    def test_distinct_lowers_to_group_by(self, abcd_catalog):
        plan = compile_script(DISTINCT_SCRIPT, abcd_catalog)
        group_bys = [
            n for n in plan.iter_nodes() if isinstance(n.op, LogicalGroupBy)
        ]
        assert len(group_bys) == 1
        assert group_bys[0].op.keys == ("A", "B")
        assert group_bys[0].op.aggregates == ()

    def test_distinct_with_group_by_rejected(self, abcd_catalog):
        with pytest.raises(ResolutionError):
            compile_script(
                'R0 = EXTRACT A,D FROM "test.log" USING E;\n'
                "R = SELECT DISTINCT A,Sum(D) AS S FROM R0 GROUP BY A;\n"
                'OUTPUT R TO "o";',
                abcd_catalog,
            )

    def test_output_order_columns_resolved(self, abcd_catalog):
        plan = compile_script(SORTED_OUTPUT_SCRIPT, abcd_catalog)
        output = next(
            n for n in plan.iter_nodes() if isinstance(n.op, LogicalOutput)
        )
        assert output.op.sort_columns == ("T", "A")

    def test_output_order_unknown_column_rejected(self, abcd_catalog):
        with pytest.raises(ResolutionError):
            compile_script(
                'R0 = EXTRACT A FROM "test.log" USING E;\n'
                'OUTPUT R0 TO "f" ORDER BY Z;',
                abcd_catalog,
            )


class TestExecution:
    def run(self, script, catalog, exploit_cse=True):
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        files = generate_for_catalog(catalog, seed=5)
        result = optimize_script(script, catalog, config,
                                 exploit_cse=exploit_cse)
        cluster = Cluster(machines=4)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        executor = PlanExecutor(cluster, validate=True)
        outputs = executor.execute(result.plan)
        expected = NaiveEvaluator(files).run(compile_script(script, catalog))
        return result, outputs, expected

    def test_distinct_matches_oracle(self, abcd_catalog):
        _res, outputs, expected = self.run(DISTINCT_SCRIPT, abcd_catalog)
        assert outputs["o"].sorted_rows() == expected["o"]
        # No duplicates in the result.
        rows = outputs["o"].sorted_rows()
        assert len(rows) == len(set(rows))

    def test_distinct_is_split_like_any_aggregation(self, abcd_catalog):
        result, _outputs, _expected = self.run(DISTINCT_SCRIPT, abcd_catalog)
        # The distinct group-by participates in the local/final split and
        # produces a valid, property-checked plan (executed above).
        assert result.plan is not None

    def test_sorted_output_is_globally_sorted(self, abcd_catalog):
        _res, outputs, expected = self.run(SORTED_OUTPUT_SCRIPT, abcd_catalog)
        data = outputs["sorted.out"]
        assert data.sorted_rows() == expected["sorted.out"]
        # Globally sorted = concatenating partitions in index order
        # yields the total order (one serial stream, or range-partitioned
        # parallel streams).
        stream = [row for part in data.partitions for row in part]
        keys = [(row["T"], row["A"]) for row in stream]
        assert keys == sorted(keys)

    def test_sorted_output_child_is_serial_or_range(self, abcd_catalog):
        result, _outputs, _expected = self.run(SORTED_OUTPUT_SCRIPT,
                                               abcd_catalog)
        output = next(
            n
            for n in result.plan.iter_nodes()
            if isinstance(n.op, PhysOutput) and n.op.sort_columns
        )
        child = output.children[0]
        assert child.props.partitioning.kind.value in ("serial", "range")
        assert child.props.sort_order.columns[:1] == ("T",)

    def test_sorted_output_with_both_optimizers(self, abcd_catalog):
        base, outputs_b, expected = self.run(
            SORTED_OUTPUT_SCRIPT, abcd_catalog, exploit_cse=False
        )
        assert outputs_b["sorted.out"].sorted_rows() == expected["sorted.out"]
