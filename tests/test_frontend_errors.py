"""Regression tests pinning the shared frontend diagnostic format.

Both dialects (SCOPE and SQL) raise errors rooted in
:mod:`repro.frontend.errors` and render the *same* source excerpt.  The
exact strings below are load-bearing: the CLI prints them verbatim and
``repro.scope`` callers match on the ``"{kind} at {line}:{column}"``
prefix.  Change the format deliberately, here and in one place.
"""

from __future__ import annotations

import pytest

from repro.frontend import (
    FrontendError,
    LocatedError,
    format_diagnostic,
    render_excerpt,
)
from repro.scope.errors import ParseError as ScopeParseError
from repro.scope.parser import parse as parse_scope
from repro.sql import parse_sql
from repro.sql.errors import SqlParseError, SqlResolutionError


class TestRenderExcerpt:
    def test_pinned_format(self):
        source = "SELECT a\nFROM t\nLIMIT 3;"
        assert render_excerpt(source, 3, 7) == (
            "  3 | LIMIT 3;\n"
            "    |       ^"
        )

    def test_column_one(self):
        assert render_excerpt("SELECT", 1, 1) == (
            "  1 | SELECT\n"
            "    | ^"
        )

    def test_caret_clamped_to_line_end(self):
        assert render_excerpt("ab", 1, 99) == (
            "  1 | ab\n"
            "    |   ^"
        )

    def test_out_of_range_line_is_empty(self):
        assert render_excerpt("one line", 5, 1) == ""

    def test_wide_gutter_aligns(self):
        source = "\n" * 9 + "SELECT x"
        assert render_excerpt(source, 10, 8) == (
            "  10 | SELECT x\n"
            "     |        ^"
        )


class TestFormatDiagnostic:
    def test_sql_parse_error_excerpt(self):
        with pytest.raises(SqlParseError) as exc:
            parse_sql("SELECT a\nFROM t\nLIMIT 3;")
        rendered = format_diagnostic(exc.value)
        assert rendered == (
            "parse error at 3:8: LIMIT requires an ORDER BY for "
            "deterministic results, found ';'\n"
            "  3 | LIMIT 3;\n"
            "    |        ^"
        )

    def test_scope_parse_error_excerpt(self):
        text = 'R = SELEKT A FROM "t.log";'
        with pytest.raises(ScopeParseError) as exc:
            parse_scope(text)
        rendered = format_diagnostic(exc.value)
        assert "\n  1 | " in rendered
        head, excerpt = rendered.split("\n", 1)
        assert head.startswith("parse error at 1:")
        assert excerpt.splitlines()[0] == f"  1 | {text}"

    def test_both_dialects_share_base(self):
        for text, parse, kind in [
            ("SELECT a FROM t LIMIT 1;", parse_sql, SqlParseError),
            ("R = ;", parse_scope, ScopeParseError),
        ]:
            with pytest.raises(kind) as exc:
                parse(text)
            assert isinstance(exc.value, FrontendError)
            assert isinstance(exc.value, LocatedError)
            assert exc.value.source == text

    def test_unlocated_error_is_message_only(self):
        err = SqlResolutionError("unknown table 'nope'")
        assert format_diagnostic(err) == "unknown table 'nope'"

    def test_source_override(self):
        err = SqlParseError("boom", 1, 3)
        assert format_diagnostic(err) == "parse error at 1:3: boom"
        assert format_diagnostic(err, source="abcdef") == (
            "parse error at 1:3: boom\n"
            "  1 | abcdef\n"
            "    |   ^"
        )
