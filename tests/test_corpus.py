"""Differential replay of the regression corpus (``tests/corpus/``).

Every ``.scope`` file in the corpus is a script that exercises a
planner shape worth protecting forever: scripts that ever broke the
optimizer get added here and become permanent differential tests.  Each
one is optimized in both modes, statically verified (all phases),
executed on the simulated cluster with runtime validation ON, and
compared against the naive single-node oracle.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, PlanExecutor
from repro.naive import NaiveEvaluator
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.scope.compiler import compile_script
from repro.scope.statistics import catalog_from_json
from repro.verify import verify_plan
from repro.workloads.datagen import generate_for_catalog

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
SCRIPTS = sorted(CORPUS_DIR.glob("*.scope"))
MACHINES = 4
SEEDS = (3, 11)


@pytest.fixture(scope="module")
def corpus_catalog():
    return catalog_from_json((CORPUS_DIR / "catalog.json").read_text())


@pytest.fixture(scope="module")
def corpus_config():
    return OptimizerConfig(cost_params=CostParams(machines=MACHINES))


def test_corpus_is_not_empty():
    assert len(SCRIPTS) >= 8, "the regression corpus went missing"


@pytest.mark.parametrize(
    "script_path", SCRIPTS, ids=[p.stem for p in SCRIPTS]
)
def test_corpus_script_matches_oracle(script_path, corpus_catalog,
                                      corpus_config):
    text = script_path.read_text()
    logical = compile_script(text, corpus_catalog)

    for seed in SEEDS:
        files = generate_for_catalog(corpus_catalog, seed=seed)
        expected = NaiveEvaluator(files).run(logical)

        for exploit_cse in (False, True):
            result = optimize_script(
                text, corpus_catalog, corpus_config,
                exploit_cse=exploit_cse,
            )
            report = verify_plan(result.plan)
            assert report.ok, (
                f"{script_path.name} (cse={exploit_cse}): "
                f"{report.render()}"
            )
            result.details.verify_phases()

            cluster = Cluster(machines=MACHINES)
            for path, rows in files.items():
                cluster.load_file(path, rows)
            outputs = PlanExecutor(cluster, validate=True).execute(
                result.plan
            )
            for path, want in expected.items():
                got = outputs[path].sorted_rows()
                assert got == want, (
                    f"{script_path.name} seed={seed} cse={exploit_cse} "
                    f"differs at {path}: {len(got)} vs {len(want)} rows"
                )


@pytest.mark.parametrize(
    "script_path", SCRIPTS, ids=[p.stem for p in SCRIPTS]
)
def test_corpus_cse_never_costs_more(script_path, corpus_catalog,
                                     corpus_config):
    text = script_path.read_text()
    base = optimize_script(text, corpus_catalog, corpus_config,
                           exploit_cse=False)
    ext = optimize_script(text, corpus_catalog, corpus_config,
                          exploit_cse=True)
    assert ext.cost <= base.cost * (1 + 1e-9)
