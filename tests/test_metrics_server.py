"""HTTP health surface: /metrics, /metrics.json, /healthz.

The server binds an ephemeral port (``port=0``) so tests never
collide; the collector underneath is populated deterministically via
a :class:`~repro.service.ManualClock` registry.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsCollector, MetricsServer
from repro.obs.bus import ObsEvent
from repro.obs.metrics import load_snapshot
from repro.service import ManualClock


@pytest.fixture
def collector():
    clock = ManualClock()
    collector = MetricsCollector(clock=clock)
    collector(ObsEvent.make("service.submit", op="optimize"))
    collector(ObsEvent.make("service.admission.resolve", tenant="t0",
                            latency=0.05, ok=True, window=0))
    return collector


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers, response.read()


def test_metrics_endpoint_serves_prometheus_text(collector):
    with MetricsServer(collector) as server:
        status, headers, body = _get(server.url + "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    assert "version=0.0.4" in headers["Content-Type"]
    text = body.decode("utf-8")
    assert text == collector.prometheus_text()
    assert 'repro_submits_total{op="optimize"} 1' in text


def test_metrics_json_round_trips(collector):
    with MetricsServer(collector) as server:
        status, headers, body = _get(server.url + "/metrics.json")
        _status2, _h2, body2 = _get(server.url + "/snapshot")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    doc = load_snapshot(body.decode("utf-8"))
    assert doc["metrics"]["repro_submits_total"]["samples"]
    assert json.loads(body) == json.loads(body2)


def test_healthz_ready_and_not_ready(collector):
    state = {"ready": True}

    def health():
        return {"status": "ok" if state["ready"] else "saturated",
                "ready": state["ready"], "checks": {}}

    with MetricsServer(collector, health=health) as server:
        status, _headers, body = _get(server.url + "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

        state["ready"] = False
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/healthz")
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["status"] == "saturated"


def test_healthz_provider_error_is_not_ready(collector):
    def broken():
        raise RuntimeError("boom")

    with MetricsServer(collector, health=broken) as server:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/healthz")
    assert excinfo.value.code == 503
    doc = json.loads(excinfo.value.read())
    assert doc["status"] == "error"
    assert "boom" in doc["checks"]["error"]


def test_default_health_is_ready(collector):
    with MetricsServer(collector) as server:
        status, _headers, body = _get(server.url + "/healthz")
    assert status == 200
    assert json.loads(body)["ready"] is True


def test_unknown_path_is_404(collector):
    with MetricsServer(collector) as server:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
    assert excinfo.value.code == 404


def test_start_stop_idempotent(collector):
    server = MetricsServer(collector)
    assert server.start() is server.start()
    port = server.port
    assert port != 0
    server.stop()
    server.stop()                        # second stop is a no-op
    server.start()                       # restart binds a fresh socket
    try:
        status, _headers, _body = _get(server.url + "/metrics")
        assert status == 200
    finally:
        server.stop()
