"""Tests for statistics collection and catalog JSON (de)serialization."""

import pytest

from repro.plan.columns import ColumnType
from repro.scope.catalog import Catalog
from repro.scope.errors import CatalogError
from repro.scope.statistics import (
    catalog_from_json,
    catalog_to_json,
    collect_statistics,
    infer_column_type,
    register_data,
)


class TestTypeInference:
    def test_ints(self):
        assert infer_column_type([1, 2, 3]) is ColumnType.INT

    def test_floats_win_over_ints(self):
        assert infer_column_type([1, 2.5]) is ColumnType.FLOAT

    def test_strings(self):
        assert infer_column_type(["a", "b"]) is ColumnType.STRING

    def test_nones_ignored(self):
        assert infer_column_type([None, 7]) is ColumnType.INT


class TestCollection:
    def test_exact_counts(self):
        rows = [{"A": i % 3, "B": i % 5} for i in range(30)]
        count, ndv, types = collect_statistics(rows)
        assert count == 30
        assert ndv == {"A": 3, "B": 5}
        assert types["A"] is ColumnType.INT

    def test_empty_rejected(self):
        with pytest.raises(CatalogError):
            collect_statistics([])

    def test_register_data(self):
        catalog = Catalog()
        rows = [{"A": i % 4, "Name": f"u{i % 2}"} for i in range(20)]
        stats = register_data(catalog, "data.log", rows)
        assert stats.rows == 20
        assert stats.ndv_of("A") == 4
        assert stats.schema["Name"].ctype is ColumnType.STRING
        assert "data.log" in catalog


class TestJsonRoundtrip:
    def make_catalog(self):
        catalog = Catalog()
        catalog.register_file(
            "a.log",
            [("X", ColumnType.INT), ("Y", ColumnType.STRING)],
            rows=1234,
            ndv={"X": 99},
        )
        catalog.register_file(
            "b.log", [("Z", ColumnType.FLOAT)], rows=777
        )
        return catalog

    def test_roundtrip(self):
        original = self.make_catalog()
        restored = catalog_from_json(catalog_to_json(original))
        for stats in original.files():
            copy = restored.lookup(stats.path)
            assert copy.rows == stats.rows
            assert copy.schema == stats.schema
            assert copy.ndv_of("X" if stats.path == "a.log" else "Z") == \
                stats.ndv_of("X" if stats.path == "a.log" else "Z")

    def test_bad_json(self):
        with pytest.raises(CatalogError):
            catalog_from_json("{not json")

    def test_missing_files_key(self):
        with pytest.raises(CatalogError):
            catalog_from_json("{}")

    def test_unknown_type(self):
        with pytest.raises(CatalogError):
            catalog_from_json(
                '{"files": [{"path": "f", "rows": 1, '
                '"columns": [{"name": "A", "type": "uuid"}]}]}'
            )

    def test_missing_column_field(self):
        with pytest.raises(CatalogError):
            catalog_from_json('{"files": [{"path": "f"}]}')

    def test_reregistering_keeps_file_id(self):
        catalog = self.make_catalog()
        before = catalog.lookup("a.log").file_id
        catalog.register_file("a.log", [("X", ColumnType.INT)], rows=5)
        assert catalog.lookup("a.log").file_id == before
