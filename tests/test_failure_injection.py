"""Failure injection: corrupted plans must fail loudly at runtime.

The executor's property validation is the safety net under the whole
optimizer; these tests corrupt otherwise-correct optimized plans in
targeted ways and check that execution raises :class:`ExecutionError`
(or, where the corruption is semantic, that the result diverges from the
oracle) instead of silently succeeding.
"""

import dataclasses

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, ExecutionError, PlanExecutor
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.physical import (
    PhysicalPlan,
    PhysRepartition,
    PhysSort,
    PhysSpool,
    PhysStreamAgg,
)
from repro.plan.properties import Partitioning, PhysicalProps, SortOrder
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import S1

MACHINES = 4


@pytest.fixture
def optimized(abcd_catalog):
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    return optimize_script(S1, abcd_catalog, config, exploit_cse=True)


def execute(plan, abcd_catalog):
    cluster = Cluster(machines=MACHINES)
    for path, rows in generate_for_catalog(abcd_catalog, seed=23).items():
        cluster.load_file(path, rows)
    return PlanExecutor(cluster, validate=True).execute(plan)


def rewrite(plan: PhysicalPlan, transform) -> PhysicalPlan:
    """Rebuild a plan DAG applying ``transform`` to every node."""
    rebuilt = {}

    def visit(node: PhysicalPlan) -> PhysicalPlan:
        cached = rebuilt.get(id(node))
        if cached is not None:
            return cached
        children = tuple(visit(c) for c in node.children)
        clone = dataclasses.replace(node, children=children)
        clone = transform(clone) or clone
        rebuilt[id(node)] = clone
        return clone

    return visit(plan)


class TestCorruptions:
    def test_wrong_repartition_columns_detected(self, optimized,
                                                abcd_catalog):
        """Repartitioning on different columns than claimed breaks the
        downstream aggregation's co-location check."""

        def corrupt(node):
            if isinstance(node.op, PhysRepartition):
                # Execute on a different column set than claimed.
                other = ("A",) if "A" not in node.op.columns else ("C",)
                return dataclasses.replace(
                    node, op=PhysRepartition(other, node.op.merge_sort)
                )
            return None

        bad = rewrite(optimized.plan, corrupt)
        with pytest.raises(ExecutionError):
            execute(bad, abcd_catalog)

    def test_dropped_sort_detected(self, abcd_catalog):
        """Removing a Sort under a StreamAgg trips the sortedness check."""
        text = (
            'R0 = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A;\n"
            'OUTPUT R TO "o" ORDER BY A;'
        )
        # Bias the costs so the sort-based aggregation chain wins.
        config = OptimizerConfig(
            cost_params=CostParams(machines=MACHINES, hash_row=50.0,
                                   sort_row=0.01)
        )
        result = optimize_script(text, abcd_catalog, config)
        sorts = result.plan.find_all(PhysSort)
        assert sorts, "sort-biased costs must produce an explicit sort"

        def corrupt(node):
            if isinstance(node.op, PhysSort):
                # Claim the sort but pass rows through unsorted.
                return dataclasses.replace(node.children[0], props=node.props)
            return None

        bad = rewrite(result.plan, corrupt)
        with pytest.raises(ExecutionError):
            execute(bad, abcd_catalog)

    def test_misclaimed_partitioning_detected(self, optimized, abcd_catalog):
        """Claiming hash partitioning over random data is caught by the
        dataset layout validation."""

        def corrupt(node):
            if isinstance(node.op, PhysRepartition):
                # Replace the exchange with its child but keep claiming
                # the exchange's delivered layout.
                return dataclasses.replace(node.children[0], props=node.props)
            return None

        bad = rewrite(optimized.plan, corrupt)
        with pytest.raises(ExecutionError):
            execute(bad, abcd_catalog)

    def test_validation_off_hides_the_bug(self, optimized, abcd_catalog):
        """Sanity check on the tests themselves: with validation off the
        corrupted plan 'runs' — which is exactly why validation is on by
        default."""

        def corrupt(node):
            if isinstance(node.op, PhysRepartition):
                return dataclasses.replace(node.children[0], props=node.props)
            return None

        bad = rewrite(optimized.plan, corrupt)
        cluster = Cluster(machines=MACHINES)
        for path, rows in generate_for_catalog(abcd_catalog, seed=23).items():
            cluster.load_file(path, rows)
        executor = PlanExecutor(cluster, validate=False)
        outputs = executor.execute(bad)  # silently wrong results
        good = execute(optimized.plan, abcd_catalog)
        assert any(
            outputs[p].sorted_rows() != good[p].sorted_rows() for p in outputs
        )


class TestSpoolIntegrity:
    def test_spool_reuses_identical_data(self, optimized, abcd_catalog):
        cluster = Cluster(machines=MACHINES)
        for path, rows in generate_for_catalog(abcd_catalog, seed=23).items():
            cluster.load_file(path, rows)
        executor = PlanExecutor(cluster, validate=True)
        executor.execute(optimized.plan)
        spools = optimized.plan.find_all(PhysSpool)
        assert len(spools) == 1
        assert executor.metrics.spool_reads == 2
        assert executor.metrics.rows_spooled == spools[0].rows or (
            executor.metrics.rows_spooled > 0
        )

    def test_stream_agg_claims_must_hold_after_corruption(self, abcd_catalog):
        """Rewriting a stream agg's key order without re-sorting fails."""
        text = (
            'R0 = EXTRACT A,B,D FROM "test.log" USING E;\n'
            "R = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B;\n"
            'OUTPUT R TO "o";'
        )
        config = OptimizerConfig(
            cost_params=CostParams(machines=MACHINES, hash_row=50.0,
                                   sort_row=0.01)
        )
        result = optimize_script(text, abcd_catalog, config)
        streams = result.plan.find_all(PhysStreamAgg)
        assert streams, "sort-biased costs must produce stream aggregation"

        def corrupt(node):
            if isinstance(node.op, PhysStreamAgg):
                flipped = tuple(reversed(node.op.key_order))
                return dataclasses.replace(
                    node,
                    op=dataclasses.replace(node.op, key_order=flipped),
                )
            return None

        bad = rewrite(result.plan, corrupt)
        with pytest.raises(ExecutionError):
            execute(bad, abcd_catalog)
