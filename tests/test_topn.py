"""Tests for SELECT TOP n ... ORDER BY."""

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, ExecutionError, PlanExecutor
from repro.naive import NaiveEvaluator
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.columns import ColumnType
from repro.plan.logical import GroupByMode, LogicalTopN
from repro.plan.physical import PhysMerge, PhysTopN
from repro.scope.catalog import Catalog
from repro.scope.compiler import compile_script
from repro.scope.errors import ParseError
from repro.scope.parser import parse
from repro.workloads.datagen import generate_for_catalog

TOP_SCRIPT = """
X = EXTRACT A,D FROM "f.log" USING E;
T = SELECT TOP 4 A,Sum(D) AS S FROM X GROUP BY A ORDER BY S;
OUTPUT T TO "o";
"""


@pytest.fixture
def top_catalog():
    catalog = Catalog()
    catalog.register_file(
        "f.log",
        [("A", ColumnType.INT), ("D", ColumnType.INT)],
        rows=5_000,
        ndv={"A": 40, "D": 200},
    )
    return catalog


class TestParsing:
    def test_top_with_order(self):
        query = parse(
            "R = SELECT TOP 5 A FROM X ORDER BY A;"
        ).statements[0].queries[0]
        assert query.top == 5
        assert [r.name for r in query.top_order] == ["A"]

    def test_top_without_order_rejected(self):
        with pytest.raises(ParseError):
            parse("R = SELECT TOP 5 A FROM X;")

    def test_top_requires_number(self):
        with pytest.raises(ParseError):
            parse("R = SELECT TOP A FROM X ORDER BY A;")


class TestCompilation:
    def test_topn_above_aggregation(self, top_catalog):
        plan = compile_script(TOP_SCRIPT, top_catalog)
        top = next(
            n for n in plan.iter_nodes() if isinstance(n.op, LogicalTopN)
        )
        assert top.op.n == 4
        assert top.op.order_columns == ("S",)
        assert top.op.mode is GroupByMode.FULL

    def test_order_column_must_be_produced(self, top_catalog):
        from repro.scope.errors import ResolutionError

        bad = TOP_SCRIPT.replace("ORDER BY S", "ORDER BY Z")
        with pytest.raises(ResolutionError):
            compile_script(bad, top_catalog)

    def test_zero_rows_rejected(self, top_catalog):
        with pytest.raises(ValueError):
            LogicalTopN(0, ("A",))


class TestPlanShape:
    def optimize(self, top_catalog):
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        return optimize_script(TOP_SCRIPT, top_catalog, config)

    def test_split_into_local_and_final(self, top_catalog):
        result = self.optimize(top_catalog)
        tops = result.plan.find_all(PhysTopN)
        modes = {t.op.mode for t in tops}
        assert GroupByMode.LOCAL in modes
        assert modes & {GroupByMode.FULL, GroupByMode.FINAL}

    def test_local_selection_below_the_gather(self, top_catalog):
        result = self.optimize(top_catalog)
        merge = result.plan.find_all(PhysMerge)[0]
        below = {
            t.op.mode
            for t in merge.iter_nodes()
            if isinstance(t.op, PhysTopN)
        }
        assert below == {GroupByMode.LOCAL}
        # The gather ships at most n × machines rows.
        assert merge.children[0].rows <= 4 * 4


class TestExecution:
    def run(self, top_catalog, script=TOP_SCRIPT, seed=2):
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        files = generate_for_catalog(top_catalog, seed=seed)
        result = optimize_script(script, top_catalog, config)
        cluster = Cluster(machines=4)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        expected = NaiveEvaluator(files).run(
            compile_script(script, top_catalog)
        )
        return outputs, expected

    def test_matches_oracle(self, top_catalog):
        outputs, expected = self.run(top_catalog)
        assert outputs["o"].sorted_rows() == expected["o"]
        assert outputs["o"].total_rows() == 4

    def test_top_larger_than_result(self, top_catalog):
        script = TOP_SCRIPT.replace("TOP 4", "TOP 100")
        outputs, expected = self.run(top_catalog, script)
        assert outputs["o"].sorted_rows() == expected["o"]
        assert outputs["o"].total_rows() == 40  # all groups

    def test_top_one(self, top_catalog):
        script = TOP_SCRIPT.replace("TOP 4", "TOP 1")
        outputs, expected = self.run(top_catalog, script)
        assert outputs["o"].sorted_rows() == expected["o"]
        assert outputs["o"].total_rows() == 1

    def test_ties_resolved_deterministically(self, top_catalog):
        """Many rows share the same D value: the full-row tie-break must
        keep the optimizer's answer equal to the oracle's."""
        script = (
            'X = EXTRACT A,D FROM "f.log" USING E;\n'
            "T = SELECT TOP 7 A,D FROM X ORDER BY D;\n"
            'OUTPUT T TO "o";'
        )
        catalog = Catalog()
        catalog.register_file(
            "f.log",
            [("A", ColumnType.INT), ("D", ColumnType.INT)],
            rows=2_000,
            ndv={"A": 50, "D": 3},  # heavy ties on D
        )
        outputs, expected = self.run(catalog, script)
        assert outputs["o"].sorted_rows() == expected["o"]

    def test_topn_over_shared_subexpression(self, top_catalog):
        """TOP consumers participate in CSE like any other consumer."""
        script = (
            'X = EXTRACT A,D FROM "f.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"
            "T1 = SELECT TOP 3 A,S FROM R ORDER BY S;\n"
            "T2 = SELECT A,S FROM R WHERE S > 100;\n"
            'OUTPUT T1 TO "top";\nOUTPUT T2 TO "big";'
        )
        outputs, expected = self.run(top_catalog, script)
        for path in ("top", "big"):
            assert outputs[path].sorted_rows() == expected[path]


class TestRuntimeGuards:
    def test_full_topn_requires_serial_input(self, top_catalog):
        from repro.plan.columns import Column, Schema
        from repro.plan.physical import PhysExtract, PhysicalPlan
        from repro.plan.properties import PhysicalProps

        schema = Schema([Column("A"), Column("D")])
        cluster = Cluster(machines=3)
        cluster.load_file("f.log", [{"A": i, "D": i} for i in range(30)])
        scan = PhysicalPlan(
            op=PhysExtract(1, "f.log", "E", schema),
            children=(),
            schema=schema,
            props=PhysicalProps(),
        )
        bad = PhysicalPlan(
            op=PhysTopN(5, ("A",), GroupByMode.FULL),
            children=(scan,),
            schema=schema,
            props=PhysTopN(5, ("A",), GroupByMode.FULL).derive_props(
                [scan.props]
            ),
        )
        with pytest.raises(ExecutionError):
            PlanExecutor(cluster)._run(bad)
