"""Property tests for the distributed runtime's wire format.

Every byte crossing a process boundary — spilled exchange partitions,
output blobs on the worker pipe — is one wire blob.  Hypothesis drives
:class:`ColumnBatch` and dataset round-trips over adversarial payloads
(NULLs, unicode, negative zero, empty partitions, heterogeneous
columns): the round-trip must be loss-free and canonical-bytes-stable,
the pickle protocol must stay pinned, and structurally invalid blobs
must fail loudly as :class:`WireError`, never deserialize quietly.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.exec.columnar.batch import ColumnarDataset, ColumnBatch
from repro.exec.datasets import Dataset
from repro.exec.dist import (
    MAGIC,
    WIRE_PROTOCOL,
    WireError,
    decode_batch,
    decode_dataset,
    encode_batch,
    encode_dataset,
)
from repro.plan.columns import Column, ColumnType, Schema

#: Cell values: NULLs, signed integers, finite floats (including -0.0),
#: and unicode text — one strategy per *cell*, so a single column can
#: mix types (the executors never produce that, but the wire must not
#: corrupt it either).
VALUES = st.one_of(
    st.none(),
    st.integers(min_value=-(2 ** 41), max_value=2 ** 41),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)

NAMES = st.lists(
    st.text(min_size=1, max_size=8), unique=True, min_size=0, max_size=5
)


@st.composite
def column_batches(draw):
    names = draw(NAMES)
    n_rows = draw(st.integers(min_value=0, max_value=20))
    columns = {
        name: draw(
            st.lists(VALUES, min_size=n_rows, max_size=n_rows)
        )
        for name in names
    }
    return ColumnBatch(columns, n_rows)


def _exact(values):
    """reprs distinguish what ``==`` conflates (-0.0 vs 0.0, 1 vs 1.0)."""
    return [(type(v).__name__, repr(v)) for v in values]


class TestBatchRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(batch=column_batches())
    def test_round_trip_is_lossless(self, batch):
        decoded = decode_batch(encode_batch(batch))
        assert decoded.n_rows == batch.n_rows
        assert set(decoded.columns) == set(batch.columns)
        for name, values in batch.columns.items():
            assert _exact(decoded.columns[name]) == _exact(values), name

    @settings(max_examples=100, deadline=None)
    @given(batch=column_batches())
    def test_encoding_is_deterministic(self, batch):
        """Same batch -> same bytes, and re-encoding a decoded batch
        reproduces the original blob (stability under round-trip)."""
        blob = encode_batch(batch)
        assert encode_batch(batch) == blob
        assert encode_batch(decode_batch(blob)) == blob

    def test_empty_batch_and_empty_columns(self):
        for batch in (
            ColumnBatch({}, 0),
            ColumnBatch.empty(["a", "b"]),
            ColumnBatch({"a": [None, None]}, 2),
        ):
            decoded = decode_batch(encode_batch(batch))
            assert decoded.n_rows == batch.n_rows
            assert decoded.columns == batch.columns


class TestDatasetRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(
        names=st.lists(st.text(min_size=1, max_size=6), unique=True,
                       min_size=1, max_size=4),
        data=st.data(),
    )
    def test_round_trip_preserves_canonical_bytes(self, names, data):
        n_parts = data.draw(st.integers(min_value=0, max_value=4))
        partitions = []
        for _ in range(n_parts):
            n_rows = data.draw(st.integers(min_value=0, max_value=10))
            partitions.append(ColumnBatch(
                {
                    name: data.draw(st.lists(VALUES, min_size=n_rows,
                                             max_size=n_rows))
                    for name in names
                },
                n_rows,
            ))
        schema = Schema([Column(name, ColumnType.INT) for name in names])
        dataset = ColumnarDataset(schema, partitions)
        decoded = decode_dataset(encode_dataset(dataset))
        assert decoded.n_partitions == dataset.n_partitions
        assert [p.n_rows for p in decoded.partitions] == [
            p.n_rows for p in dataset.partitions
        ]
        assert (
            decoded.to_row_dataset().canonical_bytes()
            == dataset.to_row_dataset().canonical_bytes()
        )
        # Stability: decode -> encode reproduces the blob byte-for-byte.
        assert encode_dataset(decoded) == encode_dataset(dataset)

    def test_row_dataset_encodes_to_the_same_bytes_as_columnar(self):
        """Both backends' datasets serialize to identical wire blobs:
        the on-disk format is layout-independent (rows are transposed
        on the way in)."""
        schema = Schema([Column("a"), Column("b")])
        rows = [{"a": 1, "b": "x"}, {"a": None, "b": "ü"}]
        row_ds = Dataset(schema, [rows, []])
        col_ds = ColumnarDataset(
            schema,
            [ColumnBatch.from_rows(("a", "b"), rows),
             ColumnBatch.empty(("a", "b"))],
        )
        assert encode_dataset(row_ds) == encode_dataset(col_ds)
        decoded = decode_dataset(encode_dataset(row_ds))
        assert isinstance(decoded, ColumnarDataset)
        assert decoded.to_row_dataset().canonical_bytes() == \
            row_ds.canonical_bytes()


class TestProtocolPinning:
    def test_wire_protocol_is_pinned(self):
        """Bumping the protocol breaks mixed-version spill directories;
        the pin is load-bearing, not a default."""
        assert WIRE_PROTOCOL == 4

    def test_blobs_actually_use_the_pinned_protocol(self):
        blob = encode_batch(ColumnBatch({"a": [1, 2]}, 2))
        assert blob.startswith(MAGIC)
        # Pickle protocol >= 2 opens with the PROTO opcode (0x80)
        # followed by the protocol number.
        payload = blob[len(MAGIC):]
        assert payload[0:1] == b"\x80"
        assert payload[1] == WIRE_PROTOCOL


class TestRejection:
    def test_bad_magic_raises(self):
        with pytest.raises(WireError, match="bad wire magic"):
            decode_batch(b"JUNKJUNKJUNK")
        with pytest.raises(WireError, match="bad wire magic"):
            decode_dataset(b"")

    def test_malformed_payload_shape_raises(self):
        not_a_batch = MAGIC + pickle.dumps("surprise",
                                           protocol=WIRE_PROTOCOL)
        with pytest.raises(WireError, match="malformed batch payload"):
            decode_batch(not_a_batch)
        with pytest.raises(WireError, match="malformed dataset payload"):
            decode_dataset(not_a_batch)

    def test_column_length_mismatch_raises(self):
        torn = MAGIC + pickle.dumps((3, {"a": [1]}),
                                    protocol=WIRE_PROTOCOL)
        with pytest.raises(WireError, match="column 'a' has 1 values"):
            decode_batch(torn)
