"""Tests for the EXPLAIN module."""

import json

from repro.api import optimize_script
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.optimizer.explain import (
    compare_plans,
    cost_breakdown,
    explain_dict,
    explain_text,
    to_dot,
)
from repro.workloads.paper_scripts import S1


def optimized(abcd_catalog, exploit_cse=True):
    config = OptimizerConfig(cost_params=CostParams(machines=4))
    return optimize_script(S1, abcd_catalog, config, exploit_cse=exploit_cse)


class TestExplainDict:
    def test_json_serializable(self, abcd_catalog):
        result = optimized(abcd_catalog)
        doc = explain_dict(result.plan)
        json.dumps(doc)  # must not raise

    def test_shared_nodes_become_refs(self, abcd_catalog):
        result = optimized(abcd_catalog)
        doc = explain_dict(result.plan)
        refs = []

        def walk(node):
            if "ref" in node:
                refs.append(node["ref"])
                return
            for child in node["children"]:
                walk(child)

        walk(doc)
        assert refs, "the shared spool must appear as a reference"

    def test_contains_properties_and_costs(self, abcd_catalog):
        result = optimized(abcd_catalog)
        doc = explain_dict(result.plan)
        assert doc["operator"] == "Sequence"
        assert "partitioning" in doc
        assert doc["cost"] >= doc["self_cost"]


class TestExplainText:
    def test_contains_breakdown(self, abcd_catalog):
        result = optimized(abcd_catalog)
        text = explain_text(result.plan, total_cost=result.cost)
        assert "total cost (DAG)" in text
        assert "exchange" in text
        assert "shared spools: 1" in text

    def test_breakdown_sums_to_distinct_self_costs(self, abcd_catalog):
        result = optimized(abcd_catalog)
        breakdown = cost_breakdown(result.plan)
        total = sum(n.self_cost for n in result.plan.iter_nodes())
        assert abs(sum(breakdown.values()) - total) < 1e-6


class TestDot:
    def test_valid_shape(self, abcd_catalog):
        result = optimized(abcd_catalog)
        dot = to_dot(result.plan)
        assert dot.startswith("digraph plan {")
        assert dot.rstrip().endswith("}")
        assert "cylinder" in dot  # the spool
        assert "->" in dot

    def test_shared_node_rendered_once(self, abcd_catalog):
        result = optimized(abcd_catalog)
        dot = to_dot(result.plan)
        assert dot.count("cylinder") == 1


class TestCompare:
    def test_summary_mentions_both_costs(self, abcd_catalog):
        base = optimized(abcd_catalog, exploit_cse=False)
        ext = optimized(abcd_catalog, exploit_cse=True)
        text = compare_plans(base.plan, ext.plan, base.cost, ext.cost)
        assert "ratio" in text
        assert f"{base.cost:,.0f}" in text


class TestStageGraph:
    def test_cse_plan_stage_structure(self, abcd_catalog):
        from repro.optimizer.explain import render_stages, stage_graph

        result = optimized(abcd_catalog)
        stages = stage_graph(result.plan)
        assert len(stages) >= 3
        # Exactly one spool stage, consumed by a later stage.
        spool_stages = [s for s in stages if s.boundary == "Spool"]
        assert len(spool_stages) == 1
        text = render_stages(stages)
        assert "execution stages" in text
        assert "Spool" in text

    def test_baseline_has_more_exchange_stages(self, abcd_catalog):
        from repro.optimizer.explain import stage_graph

        base = optimized(abcd_catalog, exploit_cse=False)
        ext = optimized(abcd_catalog, exploit_cse=True)
        base_exchanges = [
            s for s in stage_graph(base.plan)
            if s.boundary in ("Repartition", "RangeRepartition", "Merge")
        ]
        ext_exchanges = [
            s for s in stage_graph(ext.plan)
            if s.boundary in ("Repartition", "RangeRepartition", "Merge")
        ]
        assert len(ext_exchanges) < len(base_exchanges)

    def test_boundary_rows_recorded(self, abcd_catalog):
        from repro.optimizer.explain import stage_graph

        result = optimized(abcd_catalog)
        for stage in stage_graph(result.plan):
            if stage.boundary:
                assert stage.boundary_rows > 0

    def test_every_operator_in_exactly_one_stage(self, abcd_catalog):
        from repro.optimizer.explain import stage_graph

        result = optimized(abcd_catalog)
        total_ops = sum(1 for _ in result.plan.iter_nodes())
        staged_ops = sum(len(s.operators) for s in stage_graph(result.plan))
        assert staged_ops == total_ops
