"""Property-based tests (hypothesis).

The centerpiece is a random-script generator: arbitrary chains of
filters, aggregations and joins with arbitrary sharing, compiled,
optimized (both conventionally and with the CSE pipeline), executed on
the simulated cluster with runtime property validation ON, and compared
against the naive single-node oracle.  Any planner property bug — wrong
enforcement, broken co-partitioning, bad sort propagation — surfaces as
either an ExecutionError or a result mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import optimize_script
from repro.cse.fingerprint import compute_fingerprints, structurally_equal
from repro.exec import (
    Cluster,
    FaultInjection,
    PlanExecutor,
    RetryPolicy,
    TaskScheduler,
)
from repro.naive import NaiveEvaluator
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.optimizer.memo import Memo
from repro.plan.columns import ColumnType
from repro.plan.properties import (
    Partitioning,
    PartitioningReq,
    SortOrder,
)
from repro.scope.catalog import Catalog
from repro.scope.compiler import compile_script
from repro.verify import verify_plan
from repro.workloads.datagen import generate_rows

KEY_COLUMNS = ("A", "B", "C")


# ---------------------------------------------------------------------------
# Random script generation
# ---------------------------------------------------------------------------


@dataclass
class _Rel:
    name: str
    keys: List[str]  # key columns present
    has_value: bool = True  # whether the V value column is present


@st.composite
def scope_scripts(draw) -> str:
    """A random SCOPE script over test.log with arbitrary sharing.

    Covers filters, differently-keyed aggregations, DISTINCT, TOP-N,
    COUNT(DISTINCT), UNION ALL (including unions of shared branches),
    equi-joins (comma / INNER / LEFT OUTER, including self-sharing
    through the FROM clause) and plain/sorted outputs.
    """
    lines = [
        'R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;',
        "X0 = SELECT A,B,C,D AS V FROM R0;",
    ]
    rels = [_Rel("X0", list(KEY_COLUMNS))]
    n_ops = draw(st.integers(min_value=1, max_value=6))
    for i in range(n_ops):
        parent = rels[draw(st.integers(0, len(rels) - 1))]
        name = f"X{i + 1}"
        kind = draw(
            st.sampled_from(
                ["filter", "groupby", "groupby", "join", "distinct",
                 "top", "countd", "union"]
            )
        )
        if kind == "union":
            other = rels[draw(st.integers(0, len(rels) - 1))]
            shared_keys = sorted(set(parent.keys) & set(other.keys))
            if not shared_keys:
                kind = "filter"
            else:
                has_value = parent.has_value and other.has_value
                cols = ",".join(shared_keys + (["V"] if has_value else []))
                lines.append(
                    f"{name} = SELECT {cols} FROM {parent.name} "
                    f"UNION ALL SELECT {cols} FROM {other.name};"
                )
                rels.append(_Rel(name, shared_keys, has_value))
                continue
        if kind == "join":
            other = rels[draw(st.integers(0, len(rels) - 1))]
            shared_keys = sorted(set(parent.keys) & set(other.keys))
            if (
                not shared_keys
                or other.name == parent.name
                or not (parent.has_value and other.has_value)
            ):
                kind = "filter"
            else:
                key = draw(st.sampled_from(shared_keys))
                ansi = draw(st.sampled_from(["comma", "inner", "left"]))
                if ansi == "comma":
                    lines.append(
                        f"{name} = SELECT {parent.name}.{key} AS {key}, "
                        f"{parent.name}.V AS V, {other.name}.V AS W "
                        f"FROM {parent.name}, {other.name} "
                        f"WHERE {parent.name}.{key} = {other.name}.{key};"
                    )
                else:
                    join_kw = "LEFT OUTER JOIN" if ansi == "left" else "JOIN"
                    lines.append(
                        f"{name} = SELECT {parent.name}.{key} AS {key}, "
                        f"{parent.name}.V AS V, {other.name}.V AS W "
                        f"FROM {parent.name} {join_kw} {other.name} "
                        f"ON {parent.name}.{key} = {other.name}.{key};"
                    )
                rels.append(_Rel(name, [key]))
                continue
        if kind == "filter":
            threshold = draw(st.integers(0, 30))
            filter_col = "V" if parent.has_value else parent.keys[0]
            cols = ",".join(
                parent.keys + (["V"] if parent.has_value else [])
            )
            lines.append(
                f"{name} = SELECT {cols} FROM {parent.name} "
                f"WHERE {filter_col} > {threshold};"
            )
            rels.append(_Rel(name, list(parent.keys), parent.has_value))
        elif kind == "distinct":
            subset_size = draw(st.integers(1, len(parent.keys)))
            keys = sorted(draw(st.permutations(parent.keys))[:subset_size])
            lines.append(
                f"{name} = SELECT DISTINCT {','.join(keys)} "
                f"FROM {parent.name};"
            )
            rels.append(_Rel(name, keys, has_value=False))
        elif kind == "top":
            n = draw(st.integers(1, 12))
            order_col = draw(st.sampled_from(parent.keys))
            cols = ",".join(
                parent.keys + (["V"] if parent.has_value else [])
            )
            lines.append(
                f"{name} = SELECT TOP {n} {cols} FROM {parent.name} "
                f"ORDER BY {order_col};"
            )
            rels.append(_Rel(name, list(parent.keys), parent.has_value))
        elif kind == "countd":
            if len(parent.keys) < 2:
                kind = "filter"
                threshold = draw(st.integers(0, 30))
                filter_col = "V" if parent.has_value else parent.keys[0]
                cols = ",".join(
                    parent.keys + (["V"] if parent.has_value else [])
                )
                lines.append(
                    f"{name} = SELECT {cols} FROM {parent.name} "
                    f"WHERE {filter_col} > {threshold};"
                )
                rels.append(_Rel(name, list(parent.keys), parent.has_value))
            else:
                keys = draw(st.permutations(parent.keys))
                group_key, counted = keys[0], keys[1]
                lines.append(
                    f"{name} = SELECT {group_key},"
                    f"Count(DISTINCT {counted}) AS V "
                    f"FROM {parent.name} GROUP BY {group_key};"
                )
                rels.append(_Rel(name, [group_key]))
        elif kind == "groupby":
            subset_size = draw(st.integers(1, len(parent.keys)))
            keys = sorted(draw(st.permutations(parent.keys))[:subset_size])
            key_list = ",".join(keys)
            value = "Sum(V)" if parent.has_value else "Count(*)"
            lines.append(
                f"{name} = SELECT {key_list},{value} AS V "
                f"FROM {parent.name} GROUP BY {key_list};"
            )
            rels.append(_Rel(name, keys))
    consumed = set()
    for line in lines:
        for rel in rels:
            if f"FROM {rel.name}" in line or f", {rel.name}" in line:
                consumed.add(rel.name)
    outputs = [rel for rel in rels if rel.name not in consumed]
    if not outputs:
        outputs = [rels[-1]]
    for idx, rel in enumerate(outputs):
        if draw(st.booleans()):
            order = ",".join(rel.keys)
            lines.append(
                f'OUTPUT {rel.name} TO "out{idx}.res" ORDER BY {order};'
            )
        else:
            lines.append(f'OUTPUT {rel.name} TO "out{idx}.res";')
    return "\n".join(lines)


def small_catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_file(
        "test.log",
        [(c, ColumnType.INT) for c in ("A", "B", "C", "D")],
        rows=240,
        ndv={"A": 4, "B": 3, "C": 5, "D": 40},
    )
    return catalog


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(script=scope_scripts(), seed=st.integers(0, 3))
def test_random_scripts_execute_correctly(script, seed):
    """Optimized plans (both modes) must equal the oracle, always."""
    catalog = small_catalog()
    stats = catalog.lookup("test.log")
    files = {
        "test.log": generate_rows(
            stats.schema.names,
            stats.rows,
            {c: stats.ndv_of(c) for c in stats.schema.names},
            seed=seed,
        )
    }
    expected = NaiveEvaluator(files).run(compile_script(script, catalog))
    cfg = OptimizerConfig(cost_params=CostParams(machines=3))
    for exploit_cse in (False, True):
        result = optimize_script(script, catalog, cfg, exploit_cse=exploit_cse)
        cluster = Cluster(machines=3)
        cluster.load_file("test.log", files["test.log"])
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        for path, want in expected.items():
            assert outputs[path].sorted_rows() == want, (
                f"cse={exploit_cse} differs at {path}\n{script}"
            )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    script=scope_scripts(),
    workers=st.sampled_from([1, 4]),
    failure_rate=st.sampled_from([0.0, 0.2]),
)
def test_random_scripts_scheduler_equals_sequential(script, workers,
                                                    failure_rate):
    """optimize → verify → parallel-execute, differentially.

    Random plans drive the stage-graph compiler and scheduler through
    arbitrary vertex shapes; the scheduler (with and without fault
    injection) must match the sequential executor byte-for-byte and
    never deadlock — the watchdog turns a stuck run into a hard failure
    instead of a hung test suite.
    """
    catalog = small_catalog()
    stats = catalog.lookup("test.log")
    files = {
        "test.log": generate_rows(
            stats.schema.names,
            stats.rows,
            {c: stats.ndv_of(c) for c in stats.schema.names},
            seed=2,
        )
    }
    cfg = OptimizerConfig(cost_params=CostParams(machines=3))
    result = optimize_script(script, catalog, cfg, exploit_cse=True)
    assert verify_plan(result.plan).ok

    def load():
        cluster = Cluster(machines=3)
        cluster.load_file("test.log", files["test.log"])
        return cluster

    sequential = PlanExecutor(load(), validate=True).execute(result.plan)
    scheduler = TaskScheduler(
        load(),
        workers=workers,
        validate=True,
        faults=FaultInjection(rate=failure_rate, seed=13),
        retry=RetryPolicy(max_retries=10, backoff=0.0),
        watchdog=60.0,
    )
    parallel = scheduler.execute(result.plan)
    assert set(sequential) == set(parallel)
    for path in sequential:
        assert (
            sequential[path].canonical_bytes()
            == parallel[path].canonical_bytes()
        ), f"workers={workers} rate={failure_rate} differs at {path}\n{script}"
    for stats_ in scheduler.metrics.vertices.values():
        assert stats_.launches == 1


@settings(max_examples=30, deadline=None)
@given(script=scope_scripts())
def test_every_generated_plan_passes_static_verification(script):
    """Every optimized plan — conventional, CSE, and both CSE phases —
    must pass the full invariant catalog of ``repro.verify``."""
    catalog = small_catalog()
    cfg = OptimizerConfig(cost_params=CostParams(machines=3))
    for exploit_cse in (False, True):
        result = optimize_script(script, catalog, cfg,
                                 exploit_cse=exploit_cse)
        report = verify_plan(result.plan)
        assert report.ok, (
            f"cse={exploit_cse}\n{report.render()}\n{script}"
        )
        result.details.verify_phases()


@settings(max_examples=30, deadline=None)
@given(script=scope_scripts())
def test_cse_never_costs_more_than_conventional(script):
    """The extended optimizer keeps the phase-1 plan as a fallback, so
    its chosen cost can never exceed the conventional optimizer's."""
    catalog = small_catalog()
    cfg = OptimizerConfig(cost_params=CostParams(machines=3))
    base = optimize_script(script, catalog, cfg, exploit_cse=False)
    ext = optimize_script(script, catalog, cfg, exploit_cse=True)
    assert ext.cost <= base.cost * (1 + 1e-9)


@settings(max_examples=30, deadline=None)
@given(script=scope_scripts())
def test_pruning_is_a_semantic_noop(script):
    """Column pruning never changes any output's rows."""
    from repro.plan.pruning import prune_columns

    catalog = small_catalog()
    stats = catalog.lookup("test.log")
    files = {
        "test.log": generate_rows(
            stats.schema.names,
            stats.rows,
            {c: stats.ndv_of(c) for c in stats.schema.names},
            seed=1,
        )
    }
    raw = NaiveEvaluator(files).run(compile_script(script, catalog))
    pruned = NaiveEvaluator(files).run(
        prune_columns(compile_script(script, catalog))
    )
    assert raw == pruned


@settings(max_examples=30, deadline=None)
@given(script=scope_scripts())
def test_structural_equality_implies_equal_fingerprints(script):
    catalog = small_catalog()
    memo = Memo.from_logical_plan(compile_script(script, catalog))
    fps = compute_fingerprints(memo)
    gids = sorted(fps)
    for a in gids:
        for b in gids:
            if a < b and structurally_equal(memo, a, b):
                assert fps[a] == fps[b]


# ---------------------------------------------------------------------------
# Property algebra invariants
# ---------------------------------------------------------------------------

columns_sets = st.sets(st.sampled_from(("A", "B", "C", "D")), min_size=1)


@settings(max_examples=200, deadline=None)
@given(delivered=columns_sets, required=columns_sets)
def test_grouping_satisfaction_is_subset_rule(delivered, required):
    req = PartitioningReq.grouping(required)
    part = Partitioning.hashed(delivered)
    assert req.is_satisfied_by(part) == (delivered <= required)


@settings(max_examples=100, deadline=None)
@given(hi=columns_sets)
def test_concrete_partitionings_all_satisfy(hi):
    req = PartitioningReq.grouping(hi)
    for part in req.concrete_partitionings():
        assert req.is_satisfied_by(part)


@settings(max_examples=100, deadline=None)
@given(hi=st.sets(st.sampled_from("ABCDEF"), min_size=1), cap=st.integers(0, 3))
def test_capped_expansion_subset_of_full(hi, cap):
    req = PartitioningReq.grouping(hi)
    capped = {p.columns for p in req.concrete_partitionings(cap)}
    full = {p.columns for p in req.concrete_partitionings()}
    assert capped <= full
    assert frozenset(hi) in capped  # the upper bound is always kept


orders = st.lists(
    st.sampled_from(("A", "B", "C", "D")), max_size=4, unique=True
).map(lambda cols: SortOrder(tuple(cols)))


@settings(max_examples=200, deadline=None)
@given(a=orders, b=orders, c=orders)
def test_sort_satisfaction_transitive(a, b, c):
    if a.satisfies(b) and b.satisfies(c):
        assert a.satisfies(c)


@settings(max_examples=200, deadline=None)
@given(a=orders, b=orders)
def test_sort_satisfaction_antisymmetric(a, b):
    if a.satisfies(b) and b.satisfies(a):
        assert a == b


@settings(max_examples=200, deadline=None)
@given(a=orders, b=orders)
def test_common_prefix_satisfies_neither_strictly_more(a, b):
    prefix = a.common_prefix(b)
    assert a.satisfies(prefix)
    assert b.satisfies(prefix)


# ---------------------------------------------------------------------------
# Aggregate decomposition invariant
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(st.integers(-100, 100), min_size=1, max_size=40),
    n_parts=st.integers(1, 5),
    func_name=st.sampled_from(["SUM", "COUNT", "MIN", "MAX"]),
)
def test_local_plus_merge_equals_full(values, n_parts, func_name):
    """Splitting an aggregation over arbitrary partitions is lossless —
    the invariant behind the SplitGroupBy rule."""
    from repro.plan.expressions import Aggregate, AggFunc, ColumnRef

    func = AggFunc[func_name]
    agg = Aggregate(func, ColumnRef("V"), "out")

    def run_full(rows):
        state = agg.init_state()
        for value in rows:
            state = agg.accumulate(state, {"V": value})
        return agg.finalize(state)

    partitions = [values[i::n_parts] for i in range(n_parts)]
    partials = [run_full(part) for part in partitions if part]
    merge = Aggregate(func.merge_func, ColumnRef("P"), "out")
    state = merge.init_state()
    for partial in partials:
        state = merge.accumulate(state, {"P": partial})
    assert merge.finalize(state) == run_full(values)
