"""Tests for the SQL compiler's desugaring into the logical DAG."""

from __future__ import annotations

import pytest

from repro.api import optimize_script
from repro.cse.merge import script_fingerprint
from repro.plan.columns import ColumnType
from repro.scope.catalog import Catalog
from repro.sql import compile_sql
from repro.sql.errors import SqlResolutionError
from repro.workloads.starjoin import STARJOIN_QUERIES, make_starjoin_catalog


@pytest.fixture(scope="module")
def starjoin():
    catalog, _ = make_starjoin_catalog()
    return catalog


def _collect(plan):
    """All logical nodes of a DAG, each object once (identity-deduped)."""
    seen = {}
    stack = [plan]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen[id(node)] = node
        stack.extend(node.children)
    return list(seen.values())


def _by_type(plan, op_type_name):
    """Plan nodes whose operator is of the named ``Logical*`` type."""
    return [n for n in _collect(plan)
            if type(n.op).__name__ == op_type_name]


class TestDesugaring:
    def test_table_extracted_once_per_script(self, starjoin):
        # Three references to store_sales across two statements: one
        # LogicalExtract node (same file never extracted twice).
        plan = compile_sql(
            "SELECT SaleSk FROM store_sales WHERE Qty > 3;"
            "SELECT CustSk FROM store_sales;",
            starjoin,
        )
        extracts = _by_type(plan, "LogicalExtract")
        assert len(extracts) == 1
        assert extracts[0].op.path == "store_sales.log"
        assert extracts[0].op.extractor == "SqlExtractor"

    def test_extract_carries_full_file_schema(self, starjoin):
        plan = compile_sql("SELECT Year FROM date_dim;", starjoin)
        (extract,) = _by_type(plan, "LogicalExtract")
        assert list(extract.schema.names) == ["DateSk", "Year", "Month",
                                              "Dow"]

    def test_cte_referenced_twice_is_one_node(self, starjoin):
        plan = compile_sql(STARJOIN_QUERIES["q01_item_channels"], starjoin)
        aggs = _by_type(plan, "LogicalGroupBy")
        # sales_by_item's aggregation exists once even though both UNION
        # ALL branches consume it: shared-by-construction in the DAG.
        shared = [a for a in aggs if {"units", "revenue"} <=
                  set(a.schema.names)]
        assert len(shared) == 1

    def test_default_output_paths_are_positional(self, starjoin):
        plan = compile_sql(
            "SELECT SaleSk FROM store_sales;"
            "SELECT DateSk FROM date_dim;",
            starjoin,
        )
        outputs = _by_type(plan, "LogicalOutput")
        assert sorted(o.op.path for o in outputs) == ["q1.out", "q2.out"]

    def test_into_overrides_output_path(self, starjoin):
        plan = compile_sql(
            "SELECT SaleSk FROM store_sales INTO 'sales.rpt';", starjoin
        )
        (output,) = _by_type(plan, "LogicalOutput")
        assert output.op.path == "sales.rpt"

    def test_statement_order_by_becomes_sorted_output(self, starjoin):
        plan = compile_sql(
            "SELECT Market FROM store ORDER BY Market;", starjoin
        )
        (output,) = _by_type(plan, "LogicalOutput")
        assert list(output.op.sort_columns) == ["Market"]

    def test_limit_becomes_topn_not_output_order(self, starjoin):
        plan = compile_sql(
            "SELECT SaleSk, Net FROM store_sales ORDER BY Net, SaleSk "
            "LIMIT 10;",
            starjoin,
        )
        (output,) = _by_type(plan, "LogicalOutput")
        assert not output.op.sort_columns
        tops = _by_type(plan, "LogicalTopN")
        assert len(tops) == 1

    def test_select_star_expands_in_schema_order(self, starjoin):
        plan = compile_sql("SELECT * FROM customer;", starjoin)
        (output,) = _by_type(plan, "LogicalOutput")
        assert list(output.schema.names) == ["CustSk", "State", "Band"]

    def test_star_over_join_prefixes_nothing_unless_clash(self, starjoin):
        plan = compile_sql(
            "SELECT * FROM customer AS c JOIN store AS st "
            "ON c.CustSk = st.StoreSk;",
            starjoin,
        )
        (output,) = _by_type(plan, "LogicalOutput")
        assert set(output.schema.names) >= {"CustSk", "State", "Band",
                                            "StoreSk", "Market"}

    def test_equivalent_texts_share_fingerprint(self, starjoin):
        spaced = "SELECT   SaleSk FROM store_sales   WHERE Qty > 3;"
        tight = "select SaleSk from store_sales where Qty > 3;"
        a = optimize_script(spaced, starjoin, dialect="sql")
        b = optimize_script(tight, starjoin, dialect="sql")
        fp = script_fingerprint
        assert fp(a.plan) == fp(b.plan)


class TestResolutionErrors:
    def test_unknown_table_lists_catalog(self, starjoin):
        with pytest.raises(SqlResolutionError) as exc:
            compile_sql("SELECT a FROM nope;", starjoin)
        message = str(exc.value)
        assert "unknown table 'nope'" in message
        assert "store_sales" in message and "date_dim" in message

    def test_ambiguous_table_name(self):
        catalog = Catalog()
        cols = [("A", ColumnType.INT)]
        catalog.register_file("north/t.log", cols, rows=10)
        catalog.register_file("south/t.log", cols, rows=10)
        with pytest.raises(SqlResolutionError, match="ambiguous across"):
            compile_sql("SELECT A FROM t;", catalog)

    def test_duplicate_cte_name(self, starjoin):
        with pytest.raises(SqlResolutionError, match="duplicate CTE"):
            compile_sql(
                "WITH x AS (SELECT SaleSk FROM store_sales), "
                "x AS (SELECT DateSk FROM date_dim) "
                "SELECT SaleSk FROM x;",
                starjoin,
            )

    def test_ambiguous_star_over_join(self, starjoin):
        with pytest.raises(SqlResolutionError, match="list the columns"):
            compile_sql(
                "SELECT * FROM store_sales AS a JOIN store_sales AS b "
                "ON a.SaleSk = b.SaleSk;",
                starjoin,
            )

    def test_cte_shadows_table(self, starjoin):
        # A CTE named like a catalog table wins within its statement.
        plan = compile_sql(
            "WITH store AS (SELECT SaleSk FROM store_sales) "
            "SELECT SaleSk FROM store;",
            starjoin,
        )
        extracts = _by_type(plan, "LogicalExtract")
        assert [e.op.path for e in extracts] == ["store_sales.log"]

    def test_cte_scope_is_per_statement(self, starjoin):
        with pytest.raises(SqlResolutionError, match="unknown table 'x'"):
            compile_sql(
                "WITH x AS (SELECT SaleSk FROM store_sales) "
                "SELECT SaleSk FROM x;"
                "SELECT SaleSk FROM x;",
                starjoin,
            )
