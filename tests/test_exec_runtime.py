"""Unit tests for the cluster simulator's runtime operators."""

import pytest

from repro.exec.cluster import Cluster
from repro.exec.datasets import Dataset, hash_partition_index
from repro.exec.runtime import ExecutionError, PlanExecutor
from repro.plan.columns import Column, Schema
from repro.plan.expressions import (
    Aggregate,
    AggFunc,
    BinaryExpr,
    BinaryOp,
    ColumnRef,
    Literal,
    NamedExpr,
)
from repro.plan.logical import GroupByMode
from repro.plan.physical import (
    PhysExtract,
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysicalPlan,
    PhysMerge,
    PhysMergeJoin,
    PhysOutput,
    PhysProject,
    PhysRepartition,
    PhysSort,
    PhysSpool,
    PhysStreamAgg,
)
from repro.plan.properties import (
    Partitioning,
    PhysicalProps,
    SortOrder,
)

AB = Schema([Column("A"), Column("B")])


def node(op, children=(), schema=AB, props=None):
    return PhysicalPlan(
        op=op,
        children=tuple(children),
        schema=schema,
        props=props or op.derive_props([c.props for c in children]),
    )


def scan(path="in", schema=AB):
    return node(PhysExtract(1, path, "E", schema), schema=schema)


@pytest.fixture
def cluster():
    c = Cluster(machines=3)
    c.load_file("in", [{"A": i % 4, "B": i % 2} for i in range(12)])
    return c


class TestBasics:
    def test_extract_round_robins(self, cluster):
        ex = PlanExecutor(cluster)
        data = ex._run(scan())
        assert data.total_rows() == 12
        assert data.n_partitions == 3
        assert ex.metrics.rows_extracted == 12

    def test_filter(self, cluster):
        pred = BinaryExpr(BinaryOp.EQ, ColumnRef("B"), Literal(0))
        plan = node(PhysFilter(pred), [scan()])
        data = PlanExecutor(cluster)._run(plan)
        assert data.total_rows() == 6
        assert all(r["B"] == 0 for r in data.all_rows())

    def test_project_computes(self, cluster):
        exprs = (
            NamedExpr(BinaryExpr(BinaryOp.ADD, ColumnRef("A"), Literal(10)),
                      "A10"),
        )
        schema = Schema([Column("A10")])
        plan = PhysicalPlan(
            op=PhysProject(exprs), children=(scan(),), schema=schema,
            props=PhysicalProps(),
        )
        data = PlanExecutor(cluster)._run(plan)
        assert {r["A10"] for r in data.all_rows()} == {10, 11, 12, 13}

    def test_sort_per_partition(self, cluster):
        plan = node(PhysSort(SortOrder.of("A", "B")), [scan()])
        data = PlanExecutor(cluster)._run(plan)
        assert data.validate_layout() is None

    def test_repartition_colocates(self, cluster):
        plan = node(PhysRepartition(("A",)), [scan()])
        ex = PlanExecutor(cluster)
        data = ex._run(plan)
        assert data.validate_layout() is None
        assert ex.metrics.rows_shuffled == 12

    def test_merge_gathers_to_one(self, cluster):
        plan = node(PhysMerge(), [scan()])
        data = PlanExecutor(cluster)._run(plan)
        assert len(data.partitions[0]) == 12
        assert all(not p for p in data.partitions[1:])

    def test_sorted_merge_repartition(self, cluster):
        sorted_scan = node(PhysSort(SortOrder.of("A")), [scan()])
        plan = node(
            PhysRepartition(("B",), merge_sort=SortOrder.of("A")),
            [sorted_scan],
        )
        data = PlanExecutor(cluster)._run(plan)
        assert data.validate_layout() is None
        assert data.props.sort_order == SortOrder.of("A")


class TestAggregation:
    def agg(self):
        return (Aggregate(AggFunc.COUNT, None, "N"),)

    def test_stream_agg_requires_sorted_input(self, cluster):
        bad = node(
            PhysStreamAgg(("A",), self.agg(), GroupByMode.LOCAL), [scan()]
        )
        with pytest.raises(ExecutionError, match="not sorted"):
            PlanExecutor(cluster)._run(bad)

    def test_full_agg_requires_colocation(self, cluster):
        sorted_scan = node(PhysSort(SortOrder.of("A")), [scan()])
        bad = node(
            PhysStreamAgg(("A",), self.agg(), GroupByMode.FULL), [sorted_scan]
        )
        with pytest.raises(ExecutionError, match="split across"):
            PlanExecutor(cluster)._run(bad)

    def test_full_stream_agg_counts(self, cluster):
        repart = node(PhysRepartition(("A",)), [scan()])
        sorted_in = node(PhysSort(SortOrder.of("A")), [repart])
        plan = node(
            PhysStreamAgg(("A",), self.agg(), GroupByMode.FULL), [sorted_in]
        )
        data = PlanExecutor(cluster)._run(plan)
        counts = {r["A"]: r["N"] for r in data.all_rows()}
        assert counts == {0: 3, 1: 3, 2: 3, 3: 3}

    def test_hash_agg_equivalent(self, cluster):
        repart = node(PhysRepartition(("A",)), [scan()])
        plan = node(
            PhysHashAgg(("A",), self.agg(), GroupByMode.FULL), [repart]
        )
        data = PlanExecutor(cluster)._run(plan)
        counts = {r["A"]: r["N"] for r in data.all_rows()}
        assert counts == {0: 3, 1: 3, 2: 3, 3: 3}

    def test_local_then_final_equals_full(self, cluster):
        local = node(
            PhysHashAgg(("A",), self.agg(), GroupByMode.LOCAL), [scan()]
        )
        merge_aggs = (Aggregate(AggFunc.SUM, ColumnRef("N"), "N"),)
        repart = node(PhysRepartition(("A",)), [local])
        final = node(
            PhysHashAgg(("A",), merge_aggs, GroupByMode.FINAL), [repart]
        )
        data = PlanExecutor(cluster)._run(final)
        counts = {r["A"]: r["N"] for r in data.all_rows()}
        assert counts == {0: 3, 1: 3, 2: 3, 3: 3}

    def test_scalar_aggregate_needs_serial(self, cluster):
        bad = node(PhysHashAgg((), self.agg(), GroupByMode.FULL), [scan()])
        with pytest.raises(ExecutionError):
            PlanExecutor(cluster)._run(bad)
        good = node(
            PhysHashAgg((), self.agg(), GroupByMode.FULL),
            [node(PhysMerge(), [scan()])],
        )
        data = PlanExecutor(cluster)._run(good)
        assert data.all_rows() == [{"N": 12}]


class TestJoins:
    @pytest.fixture
    def join_cluster(self):
        c = Cluster(machines=3)
        c.load_file("left", [{"A": i % 3, "B": i} for i in range(6)])
        c.load_file("right", [{"K": i % 3, "V": 100 + i} for i in range(3)])
        return c

    def left_scan(self):
        return scan("left", Schema([Column("A"), Column("B")]))

    def right_scan(self):
        return scan("right", Schema([Column("K"), Column("V")]))

    def joined_schema(self):
        return Schema([Column("A"), Column("B"), Column("K"), Column("V")])

    def test_hash_join_requires_colocation(self, join_cluster):
        # Reverse the right side so the round-robin placement misaligns
        # the key values across the two scans.
        join_cluster.load_file(
            "right", [{"K": 2 - i, "V": 100 + i} for i in range(3)]
        )
        bad = PhysicalPlan(
            op=PhysHashJoin(("A",), ("K",)),
            children=(self.left_scan(), self.right_scan()),
            schema=self.joined_schema(),
            props=PhysicalProps(),
        )
        with pytest.raises(ExecutionError):
            PlanExecutor(join_cluster)._run(bad)

    def test_partitioned_hash_join(self, join_cluster):
        left = node(PhysRepartition(("A",)), [self.left_scan()],
                    schema=Schema([Column("A"), Column("B")]))
        right = node(PhysRepartition(("K",)), [self.right_scan()],
                     schema=Schema([Column("K"), Column("V")]))
        plan = PhysicalPlan(
            op=PhysHashJoin(("A",), ("K",)),
            children=(left, right),
            schema=self.joined_schema(),
            props=PhysicalProps(Partitioning.hashed({"A"})),
        )
        data = PlanExecutor(join_cluster)._run(plan)
        assert data.total_rows() == 6
        assert all(r["A"] == r["K"] for r in data.all_rows())

    def test_merge_join_matches_hash_join(self, join_cluster):
        def sorted_side(base, cols, schema):
            repart = node(PhysRepartition((cols[0],),), [base], schema=schema)
            return node(PhysSort(SortOrder(cols)), [repart], schema=schema)

        left = sorted_side(self.left_scan(), ("A",),
                           Schema([Column("A"), Column("B")]))
        right = sorted_side(self.right_scan(), ("K",),
                            Schema([Column("K"), Column("V")]))
        plan = PhysicalPlan(
            op=PhysMergeJoin(("A",), ("K",)),
            children=(left, right),
            schema=self.joined_schema(),
            props=PhysicalProps(Partitioning.hashed({"A"}),
                                SortOrder.of("A")),
        )
        data = PlanExecutor(join_cluster)._run(plan)
        rows = {(r["A"], r["B"], r["V"]) for r in data.all_rows()}
        assert len(rows) == 6


class TestSpoolAndOutput:
    def test_spool_executes_child_once(self, cluster):
        spool = node(PhysSpool(), [scan()])
        root = node(PhysMerge(), [spool])
        ex = PlanExecutor(cluster)
        ex._run(root)
        first_reads = ex.metrics.spool_reads
        # Reference the same spool twice in one plan.
        root2 = PhysicalPlan(
            op=PhysMerge(), children=(spool,), schema=AB,
            props=PhysicalProps(Partitioning.serial()),
        )
        ex2 = PlanExecutor(cluster)
        both = PhysicalPlan(
            op=PhysOutput("x"), children=(node(PhysMerge(), [spool]),),
            schema=AB, props=PhysicalProps(),
        )
        del root2, both  # simpler: count on a two-consumer plan below
        left = node(PhysMerge(), [spool])
        right = node(PhysMerge(), [spool])
        from repro.plan.physical import PhysSequence

        seq = PhysicalPlan(
            op=PhysSequence(2),
            children=(
                node(PhysOutput("a"), [left]),
                node(PhysOutput("b"), [right]),
            ),
            schema=Schema(()),
            props=PhysicalProps(),
        )
        ex3 = PlanExecutor(cluster)
        ex3.execute(seq)
        assert ex3.metrics.spool_reads == 2
        assert ex3.metrics.rows_extracted == 12  # child ran once
        assert first_reads == 1

    def test_output_written_to_cluster(self, cluster):
        plan = node(PhysOutput("result"), [scan()])
        outputs = PlanExecutor(cluster).execute(plan)
        assert outputs["result"].total_rows() == 12

    def test_validation_can_be_disabled(self, cluster):
        bad = node(
            PhysStreamAgg(("A",), (Aggregate(AggFunc.COUNT, None, "N"),),
                          GroupByMode.LOCAL),
            [scan()],
        )
        # With validation off the runtime produces (wrong) output
        # instead of raising — useful for perf experiments only.
        data = PlanExecutor(cluster, validate=False)._run(bad)
        assert data.total_rows() >= 4


class TestDatasetValidation:
    def test_detects_misclaimed_hash(self):
        data = Dataset(
            AB,
            [[{"A": 1, "B": 0}], [{"A": 1, "B": 1}]],
            PhysicalProps(Partitioning.hashed({"A"})),
        )
        assert data.validate_layout() is not None

    def test_detects_misclaimed_sort(self):
        data = Dataset(
            AB,
            [[{"A": 2, "B": 0}, {"A": 1, "B": 0}]],
            PhysicalProps(Partitioning.random(), SortOrder.of("A")),
        )
        assert "sort" in data.validate_layout()

    def test_detects_misclaimed_serial(self):
        data = Dataset(
            AB,
            [[{"A": 1, "B": 0}], [{"A": 2, "B": 0}]],
            PhysicalProps(Partitioning.serial()),
        )
        assert "serial" in data.validate_layout()

    def test_hash_partition_index_deterministic(self):
        row = {"A": 3, "B": 9}
        assert hash_partition_index(row, ("A",), 5) == hash_partition_index(
            row, ("A",), 5
        )
