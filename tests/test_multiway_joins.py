"""Multi-relation FROM clauses (left-deep join trees) end to end."""

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, PlanExecutor
from repro.naive import NaiveEvaluator
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.columns import ColumnType
from repro.plan.logical import LogicalJoin
from repro.scope.catalog import Catalog
from repro.scope.compiler import compile_script
from repro.scope.errors import ResolutionError
from repro.workloads.datagen import generate_for_catalog

THREE_WAY = """
U = EXTRACT UserId,Region FROM "users.log" USING E;
C = EXTRACT UserId,Query,Clicks FROM "clicks.log" USING E;
Q = EXTRACT Query,Vertical FROM "queries.log" USING E;
J = SELECT Region,Vertical,Sum(Clicks) AS N
    FROM C, U, Q
    WHERE C.UserId = U.UserId AND C.Query = Q.Query
    GROUP BY Region,Vertical;
OUTPUT J TO "report.out";
"""


@pytest.fixture
def star_catalog():
    catalog = Catalog()
    catalog.register_file(
        "users.log",
        [("UserId", ColumnType.INT), ("Region", ColumnType.INT)],
        rows=500,
        ndv={"UserId": 500, "Region": 5},
    )
    catalog.register_file(
        "clicks.log",
        [("UserId", ColumnType.INT), ("Query", ColumnType.INT),
         ("Clicks", ColumnType.INT)],
        rows=3_000,
        ndv={"UserId": 500, "Query": 60, "Clicks": 20},
    )
    catalog.register_file(
        "queries.log",
        [("Query", ColumnType.INT), ("Vertical", ColumnType.INT)],
        rows=60,
        ndv={"Query": 60, "Vertical": 6},
    )
    return catalog


class TestCompilation:
    def test_left_deep_join_tree(self, star_catalog):
        plan = compile_script(THREE_WAY, star_catalog)
        joins = [n for n in plan.iter_nodes() if isinstance(n.op, LogicalJoin)]
        assert len(joins) == 2
        # The outer join's left child is itself a join (left-deep).
        outer = next(
            j for j in joins if any(
                isinstance(c.op, LogicalJoin) for c in j.children
            )
        )
        assert isinstance(outer.children[0].op, LogicalJoin)

    def test_unconnected_relation_rejected(self, star_catalog):
        text = (
            'U = EXTRACT UserId,Region FROM "users.log" USING E;\n'
            'C = EXTRACT UserId,Query,Clicks FROM "clicks.log" USING E;\n'
            'Q = EXTRACT Query,Vertical FROM "queries.log" USING E;\n'
            "J = SELECT Region FROM U, Q WHERE U.UserId = U.UserId;\n"
            'OUTPUT J TO "o";'
        )
        with pytest.raises(ResolutionError):
            compile_script(text, star_catalog)


class TestExecution:
    @pytest.mark.parametrize("exploit_cse", [False, True])
    def test_three_way_join_matches_oracle(self, star_catalog, exploit_cse):
        config = OptimizerConfig(cost_params=CostParams(machines=3))
        files = generate_for_catalog(star_catalog, seed=31)
        result = optimize_script(THREE_WAY, star_catalog, config,
                                 exploit_cse=exploit_cse)
        cluster = Cluster(machines=3)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        expected = NaiveEvaluator(files).run(
            compile_script(THREE_WAY, star_catalog)
        )
        assert outputs["report.out"].sorted_rows() == expected["report.out"]

    def test_shared_join_result(self, star_catalog):
        """A three-way join consumed by two aggregations is shared."""
        text = THREE_WAY.replace(
            'OUTPUT J TO "report.out";',
            'K = SELECT Region,Sum(N) AS T FROM J GROUP BY Region;\n'
            'L = SELECT Vertical,Sum(N) AS T FROM J GROUP BY Vertical;\n'
            'OUTPUT K TO "k.out";\nOUTPUT L TO "l.out";',
        )
        config = OptimizerConfig(cost_params=CostParams(machines=3))
        result = optimize_script(text, star_catalog, config)
        assert len(result.details.report.shared_groups) == 1
        files = generate_for_catalog(star_catalog, seed=31)
        cluster = Cluster(machines=3)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        expected = NaiveEvaluator(files).run(compile_script(text, star_catalog))
        for path, want in expected.items():
            assert outputs[path].sorted_rows() == want
