"""Unit tests for the memo structure."""

import pytest

from repro.optimizer.memo import GroupExpr, Memo
from repro.plan.logical import (
    LogicalExtract,
    LogicalGroupBy,
    LogicalOutput,
    LogicalSequence,
    LogicalSpool,
)
from repro.scope.compiler import compile_script
from repro.workloads.paper_scripts import S1


@pytest.fixture
def s1_memo(abcd_catalog):
    return Memo.from_logical_plan(compile_script(S1, abcd_catalog))


class TestIngestion:
    def test_one_group_per_dag_node(self, s1_memo):
        # S1: extract, GB(R), GB(R1), GB(R2), 2 outputs, sequence = 7.
        assert s1_memo.operator_count() == 7

    def test_shared_dag_node_becomes_one_group(self, s1_memo):
        # The GB(A,B,C) group is referenced by both consumer group-bys.
        shared = [
            g
            for g in s1_memo.live_groups()
            if isinstance(g.initial_expr.op, LogicalGroupBy)
            and g.initial_expr.op.keys == ("A", "B", "C")
        ]
        assert len(shared) == 1
        assert len(s1_memo.parents_of(shared[0].gid)) == 2

    def test_root_is_sequence(self, s1_memo):
        root = s1_memo.group(s1_memo.root)
        assert isinstance(root.initial_expr.op, LogicalSequence)

    def test_textual_duplicates_stay_separate(self, abcd_catalog):
        """Ingestion must NOT value-deduplicate: that is Algorithm 1's job."""
        text = (
            'X = EXTRACT A,D FROM "test.log" USING E;\n'
            "R1 = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"
            "R2 = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"
            'OUTPUT R1 TO "o1";\nOUTPUT R2 TO "o2";'
        )
        memo = Memo.from_logical_plan(compile_script(text, abcd_catalog))
        group_bys = [
            g
            for g in memo.live_groups()
            if isinstance(g.initial_expr.op, LogicalGroupBy)
        ]
        assert len(group_bys) == 2


class TestSurgery:
    def test_insert_spool_above(self, s1_memo):
        shared_gid = next(
            g.gid
            for g in s1_memo.live_groups()
            if isinstance(g.initial_expr.op, LogicalGroupBy)
            and g.initial_expr.op.keys == ("A", "B", "C")
        )
        before_parents = s1_memo.parents_of(shared_gid)
        spool_gid = s1_memo.insert_spool_above(shared_gid)
        spool = s1_memo.group(spool_gid)
        assert isinstance(spool.initial_expr.op, LogicalSpool)
        assert spool.is_shared
        assert spool.initial_expr.children == (shared_gid,)
        # Old consumers now reference the spool; the shared group's only
        # parent is the spool.
        assert s1_memo.parents_of(shared_gid) == {spool_gid}
        assert s1_memo.parents_of(spool_gid) == before_parents

    def test_merge_group_into(self, abcd_catalog):
        text = (
            'X = EXTRACT A,D FROM "test.log" USING E;\n'
            "R1 = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"
            "R2 = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"
            'OUTPUT R1 TO "o1";\nOUTPUT R2 TO "o2";'
        )
        memo = Memo.from_logical_plan(compile_script(text, abcd_catalog))
        gb_gids = [
            g.gid
            for g in memo.live_groups()
            if isinstance(g.initial_expr.op, LogicalGroupBy)
        ]
        keep, dup = gb_gids
        memo.merge_group_into(dup, keep)
        assert memo.group(dup).dead
        assert len(memo.parents_of(keep)) == 2

    def test_redirect_updates_root(self, abcd_catalog):
        text = 'X = EXTRACT A FROM "test.log" USING E;\nOUTPUT X TO "o";'
        memo = Memo.from_logical_plan(compile_script(text, abcd_catalog))
        old_root = memo.root
        new_gid = memo._alloc_group(memo.group(old_root).schema)
        memo.groups[new_gid].add_expr(memo.group(old_root).initial_expr)
        memo.redirect_references(old_root, new_gid)
        assert memo.root == new_gid


class TestExpressionDedup:
    def test_add_expr_deduplicates(self, s1_memo):
        group = s1_memo.group(s1_memo.root)
        expr = group.initial_expr
        assert not group.add_expr(expr)
        assert len(group.exprs) == 1

    def test_get_or_create_group_dedups_by_value(self, s1_memo):
        extract_group = next(
            g
            for g in s1_memo.live_groups()
            if isinstance(g.initial_expr.op, LogicalExtract)
        )
        op = LogicalGroupBy(("A",), (), )
        a = s1_memo.get_or_create_group(op, (extract_group.gid,),
                                        extract_group.schema.project(["A"]))
        b = s1_memo.get_or_create_group(op, (extract_group.gid,),
                                        extract_group.schema.project(["A"]))
        assert a == b

    def test_initial_expr_stable_after_additions(self, s1_memo):
        group = s1_memo.group(s1_memo.root)
        first = group.initial_expr
        group.add_expr(GroupExpr(LogicalSequence(3), first.children))
        assert group.initial_expr is first
