"""Unit tests for the physical-property framework.

Includes the Figure 1(b) scenario: both repartitioning on ``{A,B,C}``
and on ``{B}`` satisfy a grouping requirement on ``{A,B,C}``.
"""

import pytest

from repro.plan.properties import (
    Partitioning,
    PartitioningReq,
    PartitionKind,
    PhysicalProps,
    ReqProps,
    SortOrder,
    enforced_props_for,
    subsets_nonempty,
)


class TestPartitioning:
    def test_hash_requires_columns(self):
        with pytest.raises(ValueError):
            Partitioning(PartitionKind.HASH, frozenset())

    def test_non_hash_rejects_columns(self):
        with pytest.raises(ValueError):
            Partitioning(PartitionKind.SERIAL, frozenset({"A"}))

    def test_partitioned_on_subset_rule(self):
        # Data hash-partitioned on {B} is partitioned on any superset.
        part = Partitioning.hashed({"B"})
        assert part.partitioned_on({"A", "B", "C"})
        assert part.partitioned_on({"B"})
        assert not part.partitioned_on({"A", "C"})

    def test_serial_partitioned_on_everything(self):
        assert Partitioning.serial().partitioned_on({"A"})
        assert Partitioning.serial().partitioned_on(())

    def test_random_guarantees_nothing(self):
        assert not Partitioning.random().partitioned_on({"A"})


class TestPartitioningReq:
    def test_figure_1b_both_repartitionings_satisfy(self):
        """Figure 1(b): {A,B,C} and {B} both satisfy grouping on ABC."""
        req = PartitioningReq.grouping({"A", "B", "C"})
        assert req.is_satisfied_by(Partitioning.hashed({"A", "B", "C"}))
        assert req.is_satisfied_by(Partitioning.hashed({"B"}))
        assert req.is_satisfied_by(Partitioning.hashed({"A", "C"}))
        assert not req.is_satisfied_by(Partitioning.hashed({"D"}))
        assert not req.is_satisfied_by(Partitioning.hashed({"B", "D"}))

    def test_serial_satisfies_any_requirement(self):
        for req in (
            PartitioningReq.none(),
            PartitioningReq.serial(),
            PartitioningReq.grouping({"A"}),
            PartitioningReq.exact({"A", "B"}),
        ):
            assert req.is_satisfied_by(Partitioning.serial())

    def test_random_satisfies_only_none(self):
        assert PartitioningReq.none().is_satisfied_by(Partitioning.random())
        assert not PartitioningReq.serial().is_satisfied_by(Partitioning.random())
        assert not PartitioningReq.grouping({"A"}).is_satisfied_by(
            Partitioning.random()
        )

    def test_exact_requirement(self):
        req = PartitioningReq.exact({"B"})
        assert req.is_satisfied_by(Partitioning.hashed({"B"}))
        assert not req.is_satisfied_by(Partitioning.hashed({"A", "B"}))

    def test_range_with_lower_bound(self):
        req = PartitioningReq.range({"B"}, {"A", "B", "C"})
        assert req.is_satisfied_by(Partitioning.hashed({"B"}))
        assert req.is_satisfied_by(Partitioning.hashed({"A", "B"}))
        assert not req.is_satisfied_by(Partitioning.hashed({"A"}))

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            PartitioningReq.range({"Z"}, {"A"})
        with pytest.raises(ValueError):
            PartitioningReq.range({"A"}, set())

    def test_concrete_partitionings_enumerates_paper_example(self):
        """Section V: [∅,{A,B,C}] expands to the 7 non-empty subsets."""
        req = PartitioningReq.grouping({"A", "B", "C"})
        options = req.concrete_partitionings()
        col_sets = {p.columns for p in options}
        assert col_sets == {
            frozenset(s)
            for s in (
                {"A"}, {"B"}, {"C"},
                {"A", "B"}, {"B", "C"}, {"A", "C"},
                {"A", "B", "C"},
            )
        }

    def test_concrete_partitionings_cap_keeps_upper_bound(self):
        req = PartitioningReq.grouping({"A", "B", "C", "D"})
        options = req.concrete_partitionings(max_subset_size=1)
        col_sets = {p.columns for p in options}
        assert frozenset({"A", "B", "C", "D"}) in col_sets
        assert frozenset({"A"}) in col_sets
        assert frozenset({"A", "B"}) not in col_sets


class TestSortOrder:
    def test_prefix_satisfaction(self):
        delivered = SortOrder.of("B", "A", "C")
        assert delivered.satisfies(SortOrder.of("B", "A"))
        assert delivered.satisfies(SortOrder.of("B"))
        assert delivered.satisfies(SortOrder())
        assert not delivered.satisfies(SortOrder.of("A", "B"))
        assert not delivered.satisfies(SortOrder.of("B", "A", "C", "D"))

    def test_common_prefix(self):
        a = SortOrder.of("B", "A", "C")
        b = SortOrder.of("B", "A", "D")
        assert a.common_prefix(b) == SortOrder.of("B", "A")


class TestPropsInterplay:
    def test_physical_props_satisfaction(self):
        props = PhysicalProps(Partitioning.hashed({"B"}), SortOrder.of("B", "A"))
        req = ReqProps(PartitioningReq.grouping({"A", "B"}), SortOrder.of("B"))
        assert props.satisfies(req)
        req2 = req.with_sort(SortOrder.of("A"))
        assert not props.satisfies(req2)

    def test_enforced_props_for_roundtrip(self):
        part = Partitioning.hashed({"B"})
        order = SortOrder.of("B", "A")
        req = enforced_props_for(part, order)
        assert PhysicalProps(part, order).satisfies(req)
        # A different partitioning must not satisfy the pinned req.
        other = PhysicalProps(Partitioning.hashed({"A", "B"}), order)
        assert not other.satisfies(req)

    def test_enforced_props_for_serial_and_random(self):
        serial = enforced_props_for(Partitioning.serial(), SortOrder())
        assert serial.partitioning.is_satisfied_by(Partitioning.serial())
        anyp = enforced_props_for(Partitioning.random(), SortOrder())
        assert anyp.partitioning.is_satisfied_by(Partitioning.random())


class TestSubsets:
    def test_subsets_nonempty(self):
        subsets = set(subsets_nonempty(["A", "B"]))
        assert subsets == {
            frozenset({"A"}), frozenset({"B"}), frozenset({"A", "B"})
        }

    def test_subsets_size_cap(self):
        subsets = set(subsets_nonempty(["A", "B", "C"], max_size=1))
        assert subsets == {frozenset({"A"}), frozenset({"B"}), frozenset({"C"})}
