"""MetricsCollector integration: EventBus traffic → labeled series.

Drives a real :class:`~repro.service.QueryService` and
:class:`~repro.service.AdmissionController` with every clock injected
(:class:`~repro.service.ManualClock` throughout) and asserts the
collector's translation: per-tenant submit latency, SLO verdicts and
burn rate, shared-work savings attribution via ``serves``, dedup
accounting, cache hit ratio, executor counters, and the health
surfaces of both layers.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsCollector, SLOConfig
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.service import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRejected,
    ManualClock,
    QueryService,
)

SHARED = """\
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R1 = SELECT A,Sum(B) AS total FROM R0 GROUP BY A;
OUTPUT R1 TO "one.out";
"""

OTHER = """\
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R1 = SELECT A,Sum(B) AS total FROM R0 GROUP BY A;
R2 = SELECT A,total FROM R1 WHERE total > 0;
OUTPUT R2 TO "two.out";
"""


def _config():
    return OptimizerConfig(cost_params=CostParams(machines=4))


@pytest.fixture
def stack(abcd_catalog):
    clock = ManualClock()
    collector = MetricsCollector(
        clock=clock,
        slo=SLOConfig(latency_objective_s=1.0, availability_target=0.9,
                      window_s=100.0),
    )
    service = QueryService(abcd_catalog, _config(), metrics=collector)
    controller = AdmissionController(
        service, clock=clock, workers=2, rows=200,
        config=AdmissionConfig(window=0.5, max_pending=4),
    )
    return clock, collector, service, controller


def _flush(clock, controller):
    clock.advance(controller.config.window)
    controller.pump()


def test_per_tenant_latency_is_deterministic(stack):
    clock, collector, _service, controller = stack
    t_a = controller.submit_nowait(SHARED, tenant="alice")
    t_b = controller.submit_nowait(OTHER, tenant="bob")
    _flush(clock, controller)
    t_a.result(timeout=0)
    t_b.result(timeout=0)

    for tenant in ("alice", "bob"):
        hist = collector.latency.labels(tenant=tenant)
        assert hist.count == 1
        # Latency == the window length exactly (manual clock), so the
        # quantile resolves to the first bucket bound >= 0.5s.
        assert hist.sum == pytest.approx(0.5)
        assert hist.quantile(0.99) == pytest.approx(0.512)
    report = collector.slo_report()
    assert sorted(report) == ["alice", "bob"]
    for row in report.values():
        assert row["requests"] == 1
        assert row["breaches"] == 0
        assert row["compliance"] == 1.0
        assert row["burn_rate"] == 0.0


def test_slo_breach_and_burn_rate(abcd_catalog):
    clock = ManualClock()
    collector = MetricsCollector(
        clock=clock,
        slo=SLOConfig(latency_objective_s=0.1,      # window 0.5 > 0.1
                      availability_target=0.9, window_s=100.0),
    )
    service = QueryService(abcd_catalog, _config(), metrics=collector)
    controller = AdmissionController(
        service, clock=clock, workers=2, rows=200,
        config=AdmissionConfig(window=0.5),
    )
    ticket = controller.submit_nowait(SHARED, tenant="alice")
    _flush(clock, controller)
    ticket.result(timeout=0)

    row = collector.slo_report()["alice"]
    assert row["requests"] == 1
    assert row["breaches"] == 1
    assert row["compliance"] == 0.0
    # 1 breach / 1 windowed request = breach rate 1.0; error budget
    # 1 - 0.9 = 0.1 → burn 10×.
    assert row["burn_rate"] == pytest.approx(10.0)
    # Advance past the SLO window: the burn decays to zero, lifetime
    # compliance stays.
    clock.advance(200.0)
    row = collector.slo_report()["alice"]
    assert row["window_requests"] == 0
    assert row["burn_rate"] == 0.0
    assert row["compliance"] == 0.0


def test_shared_savings_attributed_per_tenant(stack):
    clock, collector, _service, controller = stack
    # Two *different* scripts sharing the EXTRACT + aggregation prefix:
    # the shared vertices serve both labels, so each tenant is credited
    # half of the shared vertices' output rows.
    t_a = controller.submit_nowait(SHARED, tenant="alice")
    t_b = controller.submit_nowait(OTHER, tenant="bob")
    _flush(clock, controller)
    r_a = t_a.result(timeout=0)
    r_b = t_b.result(timeout=0)
    assert r_a.run is r_b.run
    shared = r_a.run.shared_vertices()
    assert shared, "scripts share a subexpression by construction"

    alice_v = collector.shared_vertices.labels(tenant="alice").value
    bob_v = collector.shared_vertices.labels(tenant="bob").value
    assert alice_v == bob_v == len(shared)
    expected_rows = sum(
        r_a.run.metrics.vertices[v.name].rows_out / 2 for v in shared)
    assert collector.shared_rows_saved.labels(
        tenant="alice").value == pytest.approx(expected_rows)
    assert collector.shared_rows_saved.labels(
        tenant="bob").value == pytest.approx(expected_rows)


def test_dedup_and_cache_accounting(stack):
    clock, collector, _service, controller = stack
    t1 = controller.submit_nowait(SHARED, tenant="alice")
    t2 = controller.submit_nowait(SHARED, tenant="bob")   # joins slot
    _flush(clock, controller)
    assert t2.result(timeout=0).deduped
    assert not t1.result(timeout=0).deduped
    assert collector.dedup_executions_saved.labels(
        tenant="bob").value == 1
    assert collector.admission_submits.labels(
        tenant="bob", outcome="deduped").value == 1

    # Second window, same script: the merged plan hits the plan cache.
    t3 = controller.submit_nowait(SHARED, tenant="alice")
    _flush(clock, controller)
    t3.result(timeout=0)
    assert collector.cache_hit_ratio() == pytest.approx(0.5)


def test_rejection_failure_and_queue_metrics(abcd_catalog):
    clock = ManualClock()
    collector = MetricsCollector(clock=clock)
    service = QueryService(abcd_catalog, _config(), metrics=collector)
    controller = AdmissionController(
        service, clock=clock, workers=2, rows=100,
        config=AdmissionConfig(window=0.5, max_pending=1),
        failure_rate=1.0, max_retries=0,
    )
    controller.submit_nowait(SHARED, tenant="alice")
    with pytest.raises(AdmissionRejected):
        controller.submit_nowait(OTHER, tenant="bob")
    assert collector.admission_submits.labels(
        tenant="bob", outcome="rejected").value == 1
    assert collector.queue_depth.value == 1
    assert collector.queue_depth_max.value == 1

    # Certain failure: every task dies, the group fails, the resolve
    # event carries ok=False.
    _flush(clock, controller)
    assert collector.failed_groups.value == 1
    assert collector.failures.labels(tenant="alice").value == 1
    assert collector.slo_requests.labels(
        tenant="alice", verdict="breach").value == 1
    assert collector.queue_depth.value == 0


def test_exec_counters_flow_through_service(abcd_catalog):
    clock = ManualClock()
    collector = MetricsCollector(clock=clock)
    service = QueryService(abcd_catalog, _config(), metrics=collector)
    run = service.execute(SHARED, workers=2, rows=300)
    assert collector.exec_rows.labels(
        counter="rows_extracted").value == run.metrics.rows_extracted
    assert collector.exec_vertices.value == len(run.metrics.vertices)
    assert collector.exec_max_partition.value == \
        run.metrics.max_partition_rows
    ops = {name for (name,), _ in collector.exec_operators.children()}
    assert "Extract" in ops
    assert collector.windows.labels(trigger="window").value == 0


def test_disabled_metrics_add_no_events(abcd_catalog):
    """Without a collector the service's bus traffic is unchanged —
    the executor does not publish its metrics into the bus."""
    plain = QueryService(abcd_catalog, _config())
    plain.execute(SHARED, workers=2, rows=100)
    assert plain.metrics_collector is None
    assert not plain.bus.of_kind("exec.counter")
    with pytest.raises(RuntimeError):
        plain.metrics_snapshot()

    measured = QueryService(abcd_catalog, _config(), metrics=True)
    measured.execute(SHARED, workers=2, rows=100)
    assert measured.bus.of_kind("exec.counter")
    snapshot = measured.metrics_snapshot()
    assert snapshot["metrics"]["repro_exec_rows_total"]["samples"]


def test_health_surfaces(abcd_catalog):
    clock = ManualClock()
    service = QueryService(abcd_catalog, _config(), metrics=True)
    health = service.health()
    assert health["ready"] is True
    controller = AdmissionController(
        service, clock=clock, workers=2, rows=100,
        config=AdmissionConfig(window=0.5, max_pending=10),
    )
    assert controller.health()["status"] == "ok"
    for index in range(9):
        # Distinct scripts (distinct fingerprints) fill distinct slots.
        controller.submit_nowait(
            SHARED.replace("one.out", f"out{index}.out"),
            tenant="alice")
    health = controller.health()
    assert health["status"] == "saturated"
    assert health["ready"] is False
    assert health["checks"]["queue_depth"] == 9
    _flush(clock, controller)
    assert controller.health()["ready"] is True


def test_unknown_events_are_ignored(stack):
    _clock, collector, service, _controller = stack
    service.bus.publish(object())
    service.bus.publish(
        __import__("repro.obs.bus", fromlist=["ObsEvent"]).ObsEvent.make(
            "totally.new.kind", x=1))
    # No exception, nothing counted.
    assert collector.registry.get("repro_submits_total") is not None
