"""Concurrency stress: feedback publication races catalog updates.

Four threads hammer one feedback-enabled
:class:`~repro.service.QueryService`: two execute the skewed headline
workload (each run captures observations and may publish corrections
and re-optimize cached plans), one repeatedly calls
``update_statistics`` on the same input file (the pre-existing
invalidation path the feedback loop shares), and one executes an
unrelated well-estimated script.  The suite asserts what must survive
the race:

* no thread raises;
* every run's outputs are byte-identical to the single-threaded
  reference for its script;
* the service/cache counter identities hold exactly;
* the feedback controller's own ledger balances
  (``reoptimized == adopted + kept``).

The CI feedback-stress job runs this module and uploads the decision
log it writes as a build artifact.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.service import QueryService
from repro.stats.feedback import FeedbackConfig
from repro.workloads.skew import SKEW_SCENARIOS

MACHINES = 4
THREADS = 4
ROUNDS = 5

STEADY_SCRIPT = """\
R0 = EXTRACT A,B,C,D FROM "skew.log" USING LogExtractor;
S = SELECT A, B, Sum(D) AS SD FROM R0 GROUP BY A, B;
OUTPUT S TO "s.out";
"""


def _config() -> OptimizerConfig:
    return OptimizerConfig(cost_params=CostParams(machines=MACHINES))


@pytest.fixture(scope="module")
def raced():
    scenario = SKEW_SCENARIOS["filter_selectivity_skew"]
    catalog = scenario.build_catalog()
    files = scenario.generate_files()
    service = QueryService(
        catalog, _config(),
        feedback=FeedbackConfig(qerror_threshold=2.0,
                                min_observations=1),
    )

    # Single-threaded reference outputs per script.
    reference = {}
    for text in (scenario.script, STEADY_SCRIPT):
        solo = QueryService(scenario.build_catalog(), _config())
        run = solo.execute(text, workers=2, files=files)
        reference[text] = {
            path: data.canonical_bytes()
            for path, data in run.outputs.items()
        }

    errors = []
    mismatches = []
    barrier = threading.Barrier(THREADS)
    lock = threading.Lock()

    def executor(text: str) -> None:
        barrier.wait()
        for _ in range(ROUNDS):
            try:
                run = service.execute(text, workers=2, files=files)
            except Exception as exc:  # noqa: BLE001 - tallied below
                with lock:
                    errors.append(exc)
                return
            got = {path: data.canonical_bytes()
                   for path, data in run.outputs.items()}
            if got != reference[text]:
                with lock:
                    mismatches.append(text)

    def updater() -> None:
        barrier.wait()
        for round_no in range(ROUNDS):
            try:
                service.update_statistics(
                    "skew.log",
                    rows=4_000 if round_no % 2 == 0 else 8_000,
                )
            except Exception as exc:  # noqa: BLE001 - tallied below
                with lock:
                    errors.append(exc)
                return

    threads = [
        threading.Thread(target=executor,
                         args=(scenario.script,), name="feedback-1"),
        threading.Thread(target=executor,
                         args=(scenario.script,), name="feedback-2"),
        threading.Thread(target=executor,
                         args=(STEADY_SCRIPT,), name="steady"),
        threading.Thread(target=updater, name="updater"),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    assert not any(t.is_alive() for t in threads), "stress run hung"
    return service, errors, mismatches


def test_no_thread_raised(raced):
    _, errors, _ = raced
    assert errors == [], errors


def test_results_always_match_reference(raced):
    _, _, mismatches = raced
    assert mismatches == [], (
        "feedback re-optimization changed query results under racing "
        "catalog updates"
    )


def test_counter_identities_survive_the_race(raced):
    service, _, _ = raced
    snap = service.stats_snapshot()
    assert snap["submits"] == (snap["cache_hits"]
                               + snap["optimizations"]
                               + snap["coalesced"])
    assert snap["cache_lookups"] == (snap["cache_hits"]
                                     + snap["cache_misses"])
    service.cache.stats.check_consistent(len(service.cache))


def test_feedback_ledger_balances(raced):
    service, _, _ = raced
    counters = service.feedback.stats_snapshot()
    assert counters["reoptimized"] == (counters["adopted"]
                                       + counters["kept"])
    assert counters["runs_observed"] == 3 * ROUNDS


def test_decision_log_written_for_ci(raced, tmp_path):
    service, _, _ = raced
    target = os.environ.get("FEEDBACK_DECISION_LOG")
    path = target or str(tmp_path / "feedback_decisions.jsonl")
    count = service.feedback.dump_decisions(path)
    assert count == len(service.feedback.decisions)
    assert os.path.exists(path)
