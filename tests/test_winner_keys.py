"""Direct tests of the winner-cache keying (DESIGN.md, decision 1).

The correctness of phase-2 rounds depends on the cache key: the
enforcement context must be projected onto the shared groups a group can
reach, and the phase must separate winners only where an LCA below makes
them differ.  These tests poke the engine internals directly.
"""

import pytest

from repro.cse.history import HistoryEntry
from repro.cse.pipeline import optimize_with_cse
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import (
    PHASE_CONVENTIONAL,
    PHASE_CSE,
    OptimizerConfig,
    SearchEngine,
)
from repro.optimizer.memo import Memo
from repro.plan.logical import LogicalExtract, LogicalSpool
from repro.plan.properties import Partitioning, ReqProps
from repro.scope.compiler import compile_script
from repro.workloads.paper_scripts import S1, S3


def optimized(text, catalog):
    config = OptimizerConfig(cost_params=CostParams(machines=4))
    return optimize_with_cse(compile_script(text, catalog), catalog, config)


def find_gid(memo, op_type):
    return next(
        g.gid
        for g in memo.live_groups()
        if isinstance(g.initial_expr.op, op_type)
    )


class TestSharedReach:
    def test_extract_reaches_no_shared_group(self, abcd_catalog):
        result = optimized(S1, abcd_catalog)
        engine = result.engine
        extract = find_gid(engine.memo, LogicalExtract)
        assert engine._shared_reach(extract) == frozenset()

    def test_spool_reaches_itself(self, abcd_catalog):
        result = optimized(S1, abcd_catalog)
        engine = result.engine
        spool = find_gid(engine.memo, LogicalSpool)
        assert spool in engine._shared_reach(spool)

    def test_root_reaches_all_shared(self, abcd_catalog):
        result = optimized(S3, abcd_catalog)
        engine = result.engine
        shared = {g.gid for g in engine.memo.shared_groups()}
        assert engine._shared_reach(engine.memo.root) >= shared


class TestContextProjection:
    def test_irrelevant_context_entries_projected_away(self, abcd_catalog):
        """A context entry for an unreachable shared group must not
        split the winner cache."""
        result = optimized(S1, abcd_catalog)
        engine = result.engine
        extract = find_gid(engine.memo, LogicalExtract)
        entry = HistoryEntry(Partitioning.hashed({"B"}))
        key_empty = engine._winner_key(
            extract, ReqProps.anything(), {}, PHASE_CSE
        )
        key_ctx = engine._winner_key(
            extract, ReqProps.anything(), {9999: entry}, PHASE_CSE
        )
        assert key_empty == key_ctx

    def test_relevant_context_entries_split_the_cache(self, abcd_catalog):
        result = optimized(S1, abcd_catalog)
        engine = result.engine
        spool = find_gid(engine.memo, LogicalSpool)
        entry_b = HistoryEntry(Partitioning.hashed({"B"}))
        entry_ab = HistoryEntry(Partitioning.hashed({"A", "B"}))
        key_b = engine._winner_key(
            spool, ReqProps.anything(), {spool: entry_b}, PHASE_CSE
        )
        key_ab = engine._winner_key(
            spool, ReqProps.anything(), {spool: entry_ab}, PHASE_CSE
        )
        assert key_b != key_ab


class TestPhaseSeparation:
    def test_groups_below_shared_share_winners_across_phases(
        self, abcd_catalog
    ):
        """The extract group has no LCA below: its phase-2 lookups must
        hit the phase-1 winners (identical keys)."""
        result = optimized(S1, abcd_catalog)
        engine = result.engine
        extract = find_gid(engine.memo, LogicalExtract)
        req = ReqProps.anything()
        key1 = engine._winner_key(extract, req, {}, PHASE_CONVENTIONAL)
        key2 = engine._winner_key(extract, req, {}, PHASE_CSE)
        assert key1 == key2

    def test_root_winners_separate_by_phase(self, abcd_catalog):
        """The root has the LCA below it: phase-2 results differ from
        phase-1 results, so the keys must differ."""
        result = optimized(S1, abcd_catalog)
        engine = result.engine
        req = ReqProps.anything()
        key1 = engine._winner_key(engine.memo.root, req, {},
                                  PHASE_CONVENTIONAL)
        key2 = engine._winner_key(engine.memo.root, req, {}, PHASE_CSE)
        assert key1 != key2

    def test_round_subplans_reused(self, abcd_catalog):
        """Sub-plans not above the shared group are optimized once and
        reused by every round: the number of group optimizations stays
        far below rounds × groups."""
        result = optimized(S1, abcd_catalog)
        stats = result.engine.stats
        n_groups = len(result.memo.live_groups())
        assert stats.rounds >= 5
        # A naive re-optimization would pay ~n_groups per round on top
        # of phase 1; the cache keeps the total far below that.
        assert stats.groups_optimized < n_groups * (stats.rounds + 2) * 4


class TestWinnerIdentity:
    def test_same_key_returns_same_plan_object(self, abcd_catalog):
        result = optimized(S1, abcd_catalog)
        engine = result.engine
        extract = find_gid(engine.memo, LogicalExtract)
        req = ReqProps.anything()
        a = engine.optimize_group(extract, req, {}, PHASE_CONVENTIONAL)
        b = engine.optimize_group(extract, req, {}, PHASE_CONVENTIONAL)
        assert a is b

    def test_winner_objects_enable_dag_dedup(self, abcd_catalog):
        """The final CSE plan references the spool winner through both
        consumers as one object — the prerequisite for DAG costing and
        runtime materialization."""
        from repro.plan.physical import PhysSpool

        result = optimized(S1, abcd_catalog)
        spools = result.plan.find_all(PhysSpool)
        assert len(spools) == 1
        refs = sum(
            1
            for node in result.plan.iter_nodes()
            for child in node.children
            if child is spools[0]
        )
        assert refs == 2


class TestEnforcerSchemaGuard:
    """Regression: enforcers must never reference columns the group does
    not produce.

    Found by the hypothesis fuzzer: a sorted output's RANGE_SORTED(A)
    requirement leaked through a commuted join's broadcast candidate
    into a child whose projection had renamed ``A`` away, and the
    enforcer happily built a RangeRepartition on the missing column,
    crashing at runtime."""

    SCRIPT = '''R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
X0 = SELECT A,B,C,D AS V FROM R0;
X1 = SELECT A,B,C,V FROM X0 WHERE V > 0;
X2 = SELECT X1.A AS A, X1.V AS V, X0.V AS W FROM X1, X0 WHERE X1.A = X0.A;
X3 = SELECT A,B,C,V FROM X0 WHERE V > 0;
X4 = SELECT TOP 1 A,B,C,V FROM X3 ORDER BY A;
X5 = SELECT A,V FROM X2 WHERE V > 0;
OUTPUT X4 TO "out0.res";
OUTPUT X5 TO "out1.res" ORDER BY A;'''

    @pytest.mark.parametrize("exploit_cse", [False, True])
    def test_fuzzer_counterexample_executes(self, exploit_cse):
        from repro.api import optimize_script
        from repro.exec import Cluster, PlanExecutor
        from repro.naive import NaiveEvaluator
        from repro.optimizer.cost import CostParams
        from repro.plan.columns import ColumnType
        from repro.scope.catalog import Catalog
        from repro.scope.compiler import compile_script
        from repro.workloads.datagen import generate_rows

        catalog = Catalog()
        catalog.register_file(
            "test.log",
            [(c, ColumnType.INT) for c in ("A", "B", "C", "D")],
            rows=240,
            ndv={"A": 4, "B": 3, "C": 5, "D": 40},
        )
        stats = catalog.lookup("test.log")
        files = {
            "test.log": generate_rows(
                stats.schema.names, stats.rows,
                {c: stats.ndv_of(c) for c in stats.schema.names}, seed=0,
            )
        }
        config = OptimizerConfig(cost_params=CostParams(machines=3))
        result = optimize_script(self.SCRIPT, catalog, config,
                                 exploit_cse=exploit_cse)
        # Every exchange in the plan must reference only columns its
        # input actually produces.
        from repro.plan.physical import PhysRangeRepartition, PhysRepartition

        for node in result.plan.iter_nodes():
            if isinstance(node.op, (PhysRepartition, PhysRangeRepartition)):
                cols = getattr(node.op, "columns", None) or node.op.order
                child_names = set(node.children[0].schema.names)
                assert set(cols) <= child_names
        cluster = Cluster(machines=3)
        cluster.load_file("test.log", files["test.log"])
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        expected = NaiveEvaluator(files).run(
            compile_script(self.SCRIPT, catalog)
        )
        for path, want in expected.items():
            assert outputs[path].sorted_rows() == want
