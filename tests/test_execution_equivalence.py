"""End-to-end correctness: optimized plans vs the naive oracle.

For every evaluation script, both the conventional and the CSE-optimized
plans are executed on the simulated cluster (with runtime property
validation ON) and their per-output row multisets compared against the
naive single-node evaluator.  This is experiment E9 of DESIGN.md.
"""

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, PlanExecutor
from repro.naive import NaiveEvaluator
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.scope.compiler import compile_script
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import PAPER_SCRIPTS
from tests.test_propagation import (
    CROSS_JOIN_SCRIPT,
    FIG3C_SCRIPT,
    INDEPENDENT_SCRIPT,
)

ALL_SCRIPTS = dict(PAPER_SCRIPTS)
ALL_SCRIPTS["cross_join"] = CROSS_JOIN_SCRIPT
ALL_SCRIPTS["independent"] = INDEPENDENT_SCRIPT
ALL_SCRIPTS["fig3c"] = FIG3C_SCRIPT

MACHINES = 4


def run_script(text, catalog, exploit_cse):
    cfg = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    files = generate_for_catalog(catalog, seed=7)
    result = optimize_script(text, catalog, cfg, exploit_cse=exploit_cse)
    cluster = Cluster(machines=MACHINES)
    for path, rows in files.items():
        cluster.load_file(path, rows)
    executor = PlanExecutor(cluster, validate=True)
    outputs = executor.execute(result.plan)
    expected = NaiveEvaluator(files).run(compile_script(text, catalog))
    return outputs, expected, executor.metrics, result


@pytest.mark.parametrize("name", sorted(ALL_SCRIPTS))
@pytest.mark.parametrize("exploit_cse", [False, True])
def test_optimized_plan_matches_oracle(name, exploit_cse, abcd_catalog):
    text = ALL_SCRIPTS[name]
    outputs, expected, _metrics, _res = run_script(
        text, abcd_catalog, exploit_cse
    )
    assert set(outputs) == set(expected)
    for path, want in expected.items():
        got = outputs[path].sorted_rows()
        assert got == want, f"{name} cse={exploit_cse} differs at {path}"


class TestSharingActuallyHappens:
    def test_cse_extracts_input_once(self, abcd_catalog):
        _o, _e, base_metrics, _ = run_script(
            PAPER_SCRIPTS["S1"], abcd_catalog, exploit_cse=False
        )
        _o, _e, cse_metrics, _ = run_script(
            PAPER_SCRIPTS["S1"], abcd_catalog, exploit_cse=True
        )
        assert base_metrics.rows_extracted == 2 * cse_metrics.rows_extracted

    def test_cse_spools_and_rereads(self, abcd_catalog):
        _o, _e, metrics, _ = run_script(
            PAPER_SCRIPTS["S1"], abcd_catalog, exploit_cse=True
        )
        assert metrics.rows_spooled > 0
        assert metrics.spool_reads == 2

    def test_cse_ships_fewer_rows(self, abcd_catalog):
        _o, _e, base_metrics, _ = run_script(
            PAPER_SCRIPTS["S2"], abcd_catalog, exploit_cse=False
        )
        _o, _e, cse_metrics, _ = run_script(
            PAPER_SCRIPTS["S2"], abcd_catalog, exploit_cse=True
        )
        assert cse_metrics.rows_shuffled < base_metrics.rows_shuffled

    def test_s2_single_extraction_for_three_consumers(self, abcd_catalog):
        _o, _e, metrics, _ = run_script(
            PAPER_SCRIPTS["S2"], abcd_catalog, exploit_cse=True
        )
        assert metrics.rows_extracted == 4000
        assert metrics.spool_reads == 3


#: Distinct input files per paper script: the CSE plan must invoke the
#: Extract operator exactly this many times — every shared scan is read
#: once and re-distributed through spools, never re-extracted.
EXPECTED_INPUT_FILES = {"S1": 1, "S2": 1, "S3": 2, "S4": 1}


class TestOperatorInvocationCounters:
    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_cse_extracts_each_input_file_once(self, name, abcd_catalog):
        _o, _e, metrics, _ = run_script(
            PAPER_SCRIPTS[name], abcd_catalog, exploit_cse=True
        )
        assert (
            metrics.operator_invocations["Extract"]
            == EXPECTED_INPUT_FILES[name]
        ), (
            f"{name}: CSE plan re-extracted a shared input "
            f"({metrics.operator_invocations})"
        )

    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_conventional_extracts_strictly_more(self, name, abcd_catalog):
        _o, _e, base_metrics, _ = run_script(
            PAPER_SCRIPTS[name], abcd_catalog, exploit_cse=False
        )
        _o, _e, cse_metrics, _ = run_script(
            PAPER_SCRIPTS[name], abcd_catalog, exploit_cse=True
        )
        base = base_metrics.operator_invocations["Extract"]
        cse = cse_metrics.operator_invocations["Extract"]
        assert cse == EXPECTED_INPUT_FILES[name]
        assert base > cse, (
            f"{name}: every paper script shares its scans, so the "
            f"conventional plan must extract more often ({base} vs {cse})"
        )

    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_spool_invocations_match_spool_reads(self, name, abcd_catalog):
        _o, _e, metrics, _ = run_script(
            PAPER_SCRIPTS[name], abcd_catalog, exploit_cse=True
        )
        assert (
            metrics.operator_invocations.get("Spool", 0)
            == metrics.spool_reads
        )
