"""Rendering and export sinks: tree text, JSON-lines, Chrome trace."""

import json
import textwrap

import pytest

from repro.obs import (
    Tracer,
    load_chrome_trace,
    load_jsonl,
    render_span_tree,
    to_chrome_trace,
    to_jsonl,
)


@pytest.fixture
def trace():
    """A small deterministic trace: spans, attributes, bus events."""
    clock = iter(i * 1e-3 for i in range(100))
    tracer = Tracer(clock=lambda: next(clock))
    with tracer.span("run", machines=4):
        with tracer.span("parse") as span:
            span.set(statements=3)
        with tracer.span("execute"):
            vertex = tracer.record_span(
                "scheduler.vertex/V00:Extract", 0.003, 0.004,
                rows_out=100, wall_seconds=0.5,
            )
            tracer.record_span("task/0", 0.003, 0.004, parent=vertex,
                               attempts=1)
    tracer.emit("exec.config", workers=2, machines=4)
    tracer.emit("exec.counter", name="rows_output", value=100)
    return tracer


class TestRenderSpanTree:
    def test_golden_text(self, trace):
        expected = textwrap.dedent("""\
            run [5.0 ms] machines=4
              parse [1.0 ms] statements=3
              execute [1.0 ms]
                scheduler.vertex/V00:Extract [1.0 ms] rows_out=100
                  task/0 [1.0 ms] attempts=1""")
        assert render_span_tree(trace) == expected

    def test_volatile_attrs_are_hidden(self, trace):
        assert "wall_seconds" not in render_span_tree(trace)

    def test_without_timing(self, trace):
        text = render_span_tree(trace, include_timing=False)
        assert "ms]" not in text
        assert text.splitlines()[0] == "run machines=4"

    def test_empty(self):
        assert render_span_tree(Tracer()) == "(no spans recorded)"
        assert render_span_tree([]) == "(no spans recorded)"


class TestJsonlRoundTrip:
    def test_round_trip_preserves_tree_and_events(self, trace):
        loaded = load_jsonl(to_jsonl(trace))
        assert loaded.render() == render_span_tree(trace)
        assert [r.structure() for r in loaded.roots] == [
            r.structure() for r in trace.roots
        ]
        assert [e.as_dict() for e in loaded.events] == [
            e.as_dict() for e in trace.bus.events
        ]

    def test_one_json_object_per_line(self, trace):
        lines = to_jsonl(trace).splitlines()
        records = [json.loads(line) for line in lines]
        # 5 spans in preorder, then 2 events.
        assert [r["type"] for r in records] == ["span"] * 5 + ["event"] * 2
        assert records[0]["name"] == "run"
        assert records[0]["parent"] is None
        assert all(r["parent"] is not None for r in records[1:5])

    def test_empty_trace(self):
        assert to_jsonl(Tracer()) == ""
        loaded = load_jsonl("")
        assert loaded.roots == [] and loaded.events == []
        assert loaded.render() == "(no spans recorded)"

    def test_blank_lines_are_skipped(self, trace):
        text = "\n" + to_jsonl(trace).replace("\n", "\n\n")
        assert load_jsonl(text).render() == render_span_tree(trace)


class TestChromeRoundTrip:
    def test_round_trip_preserves_tree_and_events(self, trace):
        loaded = load_chrome_trace(to_chrome_trace(trace))
        assert loaded.render(include_timing=False) == render_span_tree(
            trace, include_timing=False
        )
        assert [e.as_dict() for e in loaded.events] == [
            e.as_dict() for e in trace.bus.events
        ]

    def test_timestamps_are_relative_microseconds(self, trace):
        doc = json.loads(to_chrome_trace(trace))
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        root = next(e for e in spans if e["name"] == "run")
        assert root["ts"] == 0.0
        assert root["dur"] == pytest.approx(5_000.0)
        assert all(e["cat"] == "repro" for e in spans)

    def test_instant_events_carry_attrs(self, trace):
        doc = json.loads(to_chrome_trace(trace))
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        config = next(e for e in instants if e["name"] == "exec.config")
        assert config["args"] == {"machines": 4, "workers": 2}

    def test_empty_trace(self):
        doc = json.loads(to_chrome_trace(Tracer()))
        assert doc == {"traceEvents": []}
        loaded = load_chrome_trace('{"traceEvents": []}')
        assert loaded.roots == [] and loaded.events == []
