"""Unit tests for the labeled metrics registry (``repro.obs.metrics``).

Everything runs under a :class:`~repro.service.ManualClock` — the
registry never reads real time on its own, so counters, windowed
recorders and snapshots are fully deterministic.  The histogram
bucket-placement property is hypothesis-driven: every observation
lands in exactly one underlying bucket and the sum/count invariants
hold for arbitrary observation sequences.
"""

from __future__ import annotations

import math
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)
from repro.service import ManualClock


def make_registry(clock=None) -> MetricsRegistry:
    return MetricsRegistry(clock=clock or ManualClock())


# -- counters / gauges -------------------------------------------------------

def test_counter_accumulates_and_rejects_negative():
    reg = make_registry()
    total = reg.counter("total", "help")
    total.inc()
    total.inc(2.5)
    assert total.value == 3.5
    with pytest.raises(ValueError):
        total.inc(-1)


def test_labeled_counter_children_are_independent():
    reg = make_registry()
    fam = reg.counter("requests", "", ["tenant", "outcome"])
    fam.labels(tenant="a", outcome="ok").inc()
    fam.labels("a", "ok").inc()          # positional addressing, same child
    fam.labels(tenant="b", outcome="ok").inc(5)
    assert fam.labels(tenant="a", outcome="ok").value == 2
    assert fam.labels(tenant="b", outcome="ok").value == 5
    assert [values for values, _ in fam.children()] == [
        ("a", "ok"), ("b", "ok")]


def test_label_cardinality_is_validated():
    reg = make_registry()
    fam = reg.counter("c", "", ["tenant"])
    with pytest.raises(ValueError):
        fam.labels()                     # missing value
    with pytest.raises(ValueError):
        fam.labels(tenant="a", extra="b")
    with pytest.raises(ValueError):
        fam.inc()                        # labeled family has no solo child


def test_gauge_set_inc_dec_and_set_max():
    reg = make_registry()
    g = reg.gauge("depth", "")
    g.set(4)
    g.inc()
    g.dec(2)
    assert g.value == 3
    g.set_max(10)
    g.set_max(7)                         # lower value retained as 10
    assert g.value == 10


def test_registry_rejects_conflicting_redefinition():
    reg = make_registry()
    reg.counter("x_total", "", ["a"])
    assert reg.counter("x_total", "", ["a"]) is reg.get("x_total")
    with pytest.raises(ValueError):
        reg.gauge("x_total", "")
    with pytest.raises(ValueError):
        reg.counter("x_total", "", ["b"])
    with pytest.raises(ValueError):
        reg.counter("0bad", "")
    with pytest.raises(ValueError):
        reg.counter("ok", "", ["0bad"])


# -- histograms --------------------------------------------------------------

def test_exponential_buckets_shape():
    assert exponential_buckets(1, 2, 4) == (1, 2, 4, 8)
    with pytest.raises(ValueError):
        exponential_buckets(0, 2, 4)
    with pytest.raises(ValueError):
        exponential_buckets(1, 1, 4)


def test_latency_buckets_are_log_scaled():
    assert LATENCY_BUCKETS_S[0] == pytest.approx(0.001)
    ratios = [b2 / b1 for b1, b2 in zip(LATENCY_BUCKETS_S,
                                        LATENCY_BUCKETS_S[1:])]
    assert all(r == pytest.approx(2.0) for r in ratios)


def test_histogram_quantiles_at_bucket_resolution():
    reg = make_registry()
    h = reg.histogram("lat", "", buckets=[0.1, 1.0, 10.0])
    assert h._solo().quantile(0.5) is None     # empty
    for v in [0.05] * 50 + [0.5] * 45 + [5.0] * 4 + [100.0]:
        h.observe(v)
    child = h._solo()
    assert child.quantile(0.50) == 0.1
    assert child.quantile(0.95) == 1.0
    assert child.quantile(0.99) == 10.0
    assert child.quantile(1.0) == math.inf     # overflow bucket
    with pytest.raises(ValueError):
        child.quantile(1.5)


def test_histogram_rejects_bad_bounds():
    lock = threading.RLock()
    with pytest.raises(ValueError):
        Histogram(lock, [])
    with pytest.raises(ValueError):
        Histogram(lock, [1.0, 1.0])
    with pytest.raises(ValueError):
        Histogram(lock, [1.0, math.inf])


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), max_size=200))
def test_histogram_bucket_placement_property(values):
    """Every observation lands in exactly one underlying bucket; the
    exposition's cumulative counts are monotone and end at ``count``;
    the running sum matches."""
    h = Histogram(threading.RLock(), exponential_buckets(0.001, 4, 10))
    for v in values:
        h.observe(v)
    counts = h.bucket_counts()
    assert sum(counts) == h.count == len(values)
    assert h.sum == pytest.approx(math.fsum(values))
    # Reconstruct the placement independently: each value belongs to
    # the first bucket whose upper bound is >= it, else the overflow.
    expected = [0] * (len(h.bounds) + 1)
    for v in values:
        index = next((i for i, b in enumerate(h.bounds) if v <= b),
                     len(h.bounds))
        expected[index] += 1
    assert counts == expected
    sample = h.sample()
    cumulative = [c for _, c in sample["buckets"]]
    assert cumulative == sorted(cumulative)
    assert (cumulative or [0])[-1] <= h.count


# -- windowed recorders ------------------------------------------------------

def test_recorder_prunes_by_manual_clock():
    clock = ManualClock()
    reg = make_registry(clock)
    rec = reg.recorder("breaches", "", window=10.0)
    rec.record()
    clock.advance(5)
    rec.record(2.0)
    child = rec._solo()
    assert child.count() == 2
    assert child.total() == 3.0
    assert child.rate() == pytest.approx(0.2)
    clock.advance(6)                     # first point now outside window
    assert child.count() == 1
    assert child.values() == [2.0]
    clock.advance(100)
    assert child.count() == 0


def test_recorder_rejects_bad_window():
    clock = ManualClock()
    reg = make_registry(clock)
    with pytest.raises(ValueError):
        reg.recorder("r", "", window=0)


# -- snapshots ---------------------------------------------------------------

def test_snapshot_is_deterministic_under_manual_clock():
    clock = ManualClock()
    reg = make_registry(clock)
    reg.counter("a_total", "first", ["t"]).labels(t="x").inc(3)
    reg.gauge("b", "second").set(7)
    clock.advance(42)
    snap1 = reg.snapshot()
    snap2 = reg.snapshot()
    assert snap1 == snap2
    assert snap1["version"] == MetricsRegistry.SNAPSHOT_VERSION
    assert snap1["generated_at"] == 42
    assert snap1["metrics"]["a_total"]["samples"][0] == {
        "labels": {"t": "x"}, "value": 3}


def test_concurrent_updates_are_not_lost():
    reg = make_registry()
    fam = reg.counter("hits_total", "", ["t"])

    def worker(tenant):
        child = fam.labels(t=tenant)
        for _ in range(1000):
            child.inc()

    threads = [threading.Thread(target=worker, args=(f"t{i % 4}",))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = sum(child.value for _, child in fam.children())
    assert total == 8000
