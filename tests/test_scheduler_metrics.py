"""Per-vertex runtime metrics of the task scheduler.

Every scheduled vertex must report finite, meaningful statistics —
launches, tasks, retries, rows in/out and the estimated-vs-actual
cardinality ratio — and :meth:`ExecutionMetrics.summary` must render
the same text no matter how many workers ran the job or in which order
tasks completed.
"""

from __future__ import annotations

import math

import pytest

from repro.api import execute_script, optimize_script
from repro.exec import (
    Cluster,
    ExecutionMetrics,
    FaultInjection,
    KillPlan,
    ProcessScheduler,
    RetryPolicy,
    TaskScheduler,
    VertexStats,
    build_stage_graph,
)
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import PAPER_SCRIPTS

MACHINES = 4


def run_scheduled(name, abcd_catalog, workers=4, rate=0.0, seed=0,
                  scheduler_cls=TaskScheduler, **kwargs):
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    plan = optimize_script(
        PAPER_SCRIPTS[name], abcd_catalog, config, exploit_cse=True
    ).plan
    files = generate_for_catalog(abcd_catalog, seed=7)
    cluster = Cluster(machines=MACHINES)
    for path, rows in files.items():
        cluster.load_file(path, rows)
    scheduler = scheduler_cls(
        cluster,
        workers=workers,
        validate=True,
        faults=FaultInjection(rate=rate, seed=seed),
        retry=RetryPolicy(max_retries=10, backoff=0.0),
        **kwargs,
    )
    scheduler.execute(plan)
    return plan, scheduler.metrics


class TestPerVertexStats:
    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_every_vertex_records_finite_stats(self, name, abcd_catalog):
        plan, metrics = run_scheduled(name, abcd_catalog)
        graph = build_stage_graph(plan)
        assert set(metrics.vertices) == {v.name for v in graph.vertices}
        for stats in metrics.vertices.values():
            assert stats.launches == 1
            assert stats.tasks >= 1
            assert stats.retries == 0
            assert stats.rows_in >= 0 and stats.rows_out >= 0
            assert math.isfinite(stats.cardinality_ratio)
            assert stats.cardinality_ratio >= 0.0
            assert stats.wall_seconds >= 0.0

    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_estimates_are_in_the_right_ballpark(self, name, abcd_catalog):
        """The optimizer's cardinality estimates and the measured rows
        must agree within a loose factor on the paper scripts (synthetic
        data is generated *from* the catalog statistics, so gross
        divergence means either the coster or the stats plumbing broke).
        """
        _plan, metrics = run_scheduled(name, abcd_catalog)
        for stats in metrics.vertices.values():
            if stats.estimated_rows > 0 and stats.rows_out > 0:
                assert 0.01 <= stats.cardinality_ratio <= 100.0, (
                    f"{name}/{stats.vertex}: est {stats.estimated_rows} "
                    f"vs actual {stats.rows_out}"
                )

    def test_rows_in_sums_dependency_outputs(self, abcd_catalog):
        plan, metrics = run_scheduled("S1", abcd_catalog)
        graph = build_stage_graph(plan)
        by_vid = {v.vid: v for v in graph.vertices}
        for vertex in graph.vertices:
            if not vertex.deps:
                continue
            stats = metrics.vertices[vertex.name]
            dep_out = sum(
                metrics.vertices[by_vid[d].name].rows_out
                for d in vertex.deps
            )
            assert stats.rows_in == dep_out, vertex.name


class TestDeterministicSummary:
    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_summary_independent_of_worker_count(self, name, abcd_catalog):
        rendered = {
            run_scheduled(name, abcd_catalog, workers=w)[1].summary()
            for w in (1, 3, 8)
        }
        assert len(rendered) == 1

    def test_summary_independent_of_repetition(self, abcd_catalog):
        first = run_scheduled("S4", abcd_catalog, workers=6)[1].summary()
        second = run_scheduled("S4", abcd_catalog, workers=6)[1].summary()
        assert first == second

    def test_summary_deterministic_under_fault_injection(self,
                                                         abcd_catalog):
        runs = {
            run_scheduled("S1", abcd_catalog, workers=w, rate=0.3,
                          seed=5)[1].summary()
            for w in (1, 4)
        }
        assert len(runs) == 1

    def test_summary_lists_vertices_in_vertex_order(self, abcd_catalog):
        _plan, metrics = run_scheduled("S4", abcd_catalog)
        lines = [
            line.strip() for line in metrics.summary().splitlines()
            if line.strip().startswith("V")
        ]
        assert lines == sorted(lines)
        assert len(lines) == len(metrics.vertices)

    def test_vertex_table_covers_every_vertex(self, abcd_catalog):
        _plan, metrics = run_scheduled("S2", abcd_catalog)
        table = metrics.vertex_table()
        for name in metrics.vertices:
            assert name in table

    def test_sequential_metrics_have_no_vertex_section(self, abcd_catalog):
        result = execute_script(
            PAPER_SCRIPTS["S1"], abcd_catalog, machines=MACHINES, workers=0
        )
        assert result.metrics.vertices == {}
        assert result.metrics.vertex_table() is None
        assert "vertices:" not in result.metrics.summary()


class TestCardinalityRatioGuards:
    def test_missing_estimate_is_flagged_not_faked(self):
        stats = VertexStats(vertex="V00:X", estimated_rows=0.0, rows_out=17)
        assert stats.estimate_missing
        assert stats.cardinality_ratio == 1.0

    def test_zero_estimate_zero_actual_is_one(self):
        stats = VertexStats(vertex="V00:X", estimated_rows=0.0, rows_out=0)
        assert stats.estimate_missing
        assert stats.cardinality_ratio == 1.0

    def test_normal_ratio(self):
        stats = VertexStats(vertex="V00:X", estimated_rows=200.0,
                            rows_out=100)
        assert not stats.estimate_missing
        assert stats.cardinality_ratio == pytest.approx(0.5)

    def test_missing_estimate_renders_na_in_vertex_table(self):
        metrics = ExecutionMetrics()
        metrics.vertices["V00:X"] = VertexStats(
            vertex="V00:X", estimated_rows=0.0, rows_out=17, launches=1,
            tasks=1,
        )
        table = metrics.vertex_table()
        assert "n/a" in table


class TestMergeFrom:
    def test_merge_folds_counters_and_vertices(self):
        left = ExecutionMetrics(rows_extracted=10, spool_reads=1,
                                task_retries=2)
        left.note_operator("Extract")
        left.vertices["V00:A"] = VertexStats(vertex="V00:A", launches=1)
        right = ExecutionMetrics(rows_extracted=5, max_partition_rows=9)
        right.note_operator("Extract")
        right.note_operator("Filter")
        right.vertices["V01:B"] = VertexStats(vertex="V01:B", launches=1)
        left.merge_from(right)
        assert left.rows_extracted == 15
        assert left.spool_reads == 1
        assert left.task_retries == 2
        assert left.max_partition_rows == 9
        assert left.operator_invocations == {"Extract": 2, "Filter": 1}
        assert set(left.vertices) == {"V00:A", "V01:B"}

    def test_merge_folds_worker_deaths(self):
        left = ExecutionMetrics(worker_deaths=1)
        right = ExecutionMetrics(worker_deaths=2)
        left.merge_from(right)
        assert left.worker_deaths == 3
        assert "worker_deaths" in left.to_labels()
        assert left.to_labels()["worker_deaths"] == 3


class TestCrossProcessAggregation:
    """Worker metric scratches travel over the pipe as whole
    :class:`ExecutionMetrics` snapshots and merge during the shared
    finalization pass — the aggregate must be indistinguishable from a
    thread run, even when tasks were re-dispatched after a crash."""

    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_summary_equal_thread_vs_process(self, name, abcd_catalog):
        thread = run_scheduled(name, abcd_catalog)[1]
        process = run_scheduled(
            name, abcd_catalog, scheduler_cls=ProcessScheduler
        )[1]
        assert process.summary() == thread.summary()
        assert process.to_labels() == thread.to_labels()

    def test_fragment_rows_aggregate_across_processes(self, abcd_catalog):
        """The feedback loop's per-fragment observed cardinalities come
        out of worker processes, deduplicated across task slices."""
        thread = run_scheduled("S1", abcd_catalog)[1]
        process = run_scheduled(
            "S1", abcd_catalog, scheduler_cls=ProcessScheduler
        )[1]
        assert process.fragment_rows, "process run observed no fragments"
        assert process.fragment_rows == thread.fragment_rows

    def test_no_double_count_after_crash_redispatch(self, abcd_catalog):
        """A SIGKILLed attempt never reports a scratch, and a stale
        duplicate can never fill an occupied task slot — so merged
        counters match a clean run exactly (only the retry/death
        accounting may differ)."""
        clean = run_scheduled(
            "S1", abcd_catalog, scheduler_cls=ProcessScheduler
        )[1]
        victims = [name for name in clean.vertices if "Agg" in name]
        crashed = run_scheduled(
            "S1", abcd_catalog, scheduler_cls=ProcessScheduler,
            kill_plan=KillPlan(vertex=victims[0]),
        )[1]
        assert crashed.worker_deaths == 1
        assert crashed.task_retries == 1
        clean_labels = clean.to_labels()
        crashed_labels = crashed.to_labels()
        for key in ("worker_deaths", "task_retries"):
            assert clean_labels.pop(key) != crashed_labels.pop(key)
        assert crashed_labels == clean_labels
        assert crashed.fragment_rows == clean.fragment_rows
