"""CLI tests for the SQL dialect surface.

Covers ``--dialect`` with ``.sql`` auto-detection, scripts on stdin via
``-``, ``explain --format json``, mixed-dialect batches, SQL through
``serve`` (including the streaming admission path), and the persisted
feedback store flag.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.scope.statistics import catalog_to_json, register_data
from repro.scope.catalog import Catalog
from repro.workloads.starjoin import (
    SCOPE_EQUIVALENTS,
    STARJOIN_QUERIES,
    generate_starjoin_data,
)

SQL_TEXT = STARJOIN_QUERIES["q02_band_revenue"]
SCOPE_TEXT = SCOPE_EQUIVALENTS["q02_band_revenue"]


@pytest.fixture
def sql_workspace(tmp_path):
    data = generate_starjoin_data(n_sales=800)
    catalog = Catalog()
    for path, rows in data.items():
        register_data(catalog, path, rows)
    catalog_path = tmp_path / "catalog.json"
    catalog_path.write_text(catalog_to_json(catalog))
    script = tmp_path / "q02.sql"
    script.write_text(SQL_TEXT)
    scope_twin = tmp_path / "q02.scope"
    scope_twin.write_text(SCOPE_TEXT)
    return str(script), str(scope_twin), str(catalog_path)


class TestDialectSelection:
    def test_sql_extension_autodetects(self, sql_workspace, capsys):
        script, _, catalog = sql_workspace
        assert main(["explain", script, "--catalog", catalog]) == 0
        assert "total cost (DAG)" in capsys.readouterr().out

    def test_explicit_dialect_flag(self, sql_workspace, tmp_path, capsys):
        _, _, catalog = sql_workspace
        # A .txt extension defeats extension detection; content sniffing
        # is overridden by --dialect.
        odd = tmp_path / "query.txt"
        odd.write_text(SQL_TEXT)
        assert main(["explain", str(odd), "--catalog", catalog,
                     "--dialect", "sql"]) == 0

    def test_wrong_dialect_is_a_clean_error(self, sql_workspace, capsys):
        script, _, catalog = sql_workspace
        code = main(["explain", script, "--catalog", catalog,
                     "--dialect", "scope"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_both_dialects_same_fingerprint(self, sql_workspace, capsys):
        sql_script, scope_script, catalog = sql_workspace
        assert main(["serve", sql_script, scope_script,
                     "--catalog", catalog, "--machines", "4"]) == 0
        out = capsys.readouterr().out
        # The SCOPE twin compiles to the identical plan, so only the
        # very first submission misses (default --repeat is 2 passes).
        assert out.count("] miss") == 1
        assert out.count("] hit") == 3


class TestStdinScripts:
    def test_run_reads_dash(self, sql_workspace, monkeypatch, capsys):
        _, _, catalog = sql_workspace
        monkeypatch.setattr("sys.stdin", io.StringIO(SQL_TEXT))
        code = main(["run", "-", "--catalog", catalog, "--machines", "4",
                     "--rows", "500", "--dialect", "sql"])
        assert code == 0
        assert "q1.out" in capsys.readouterr().out

    def test_explain_sniffs_stdin_content(self, sql_workspace,
                                          monkeypatch, capsys):
        _, _, catalog = sql_workspace
        # No filename to detect from: content sniffing picks SQL.
        monkeypatch.setattr("sys.stdin", io.StringIO(SQL_TEXT))
        assert main(["explain", "-", "--catalog", catalog]) == 0

    def test_verify_reads_dash(self, sql_workspace, monkeypatch, capsys):
        _, _, catalog = sql_workspace
        monkeypatch.setattr("sys.stdin", io.StringIO(SQL_TEXT))
        assert main(["verify", "-", "--catalog", catalog]) == 0


class TestExplainFormat:
    def test_format_json(self, sql_workspace, capsys):
        script, _, catalog = sql_workspace
        assert main(["explain", script, "--catalog", catalog,
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        # A single-statement SQL script's plan is rooted at its output.
        assert doc["operator"] == "Output"

    def test_format_overrides_legacy_flags(self, sql_workspace, capsys):
        script, _, catalog = sql_workspace
        assert main(["explain", script, "--catalog", catalog,
                     "--dot", "--format", "text"]) == 0
        assert "total cost (DAG)" in capsys.readouterr().out

    def test_format_dot(self, sql_workspace, capsys):
        script, _, catalog = sql_workspace
        assert main(["explain", script, "--catalog", catalog,
                     "--format", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")


class TestSqlDiagnosticsOnCli:
    def test_parse_error_renders_excerpt(self, sql_workspace, tmp_path,
                                         capsys):
        _, _, catalog = sql_workspace
        bad = tmp_path / "bad.sql"
        bad.write_text("SELECT Band FROM customer LIMIT 3;")
        code = main(["explain", str(bad), "--catalog", catalog])
        assert code == 2
        err = capsys.readouterr().err
        assert "LIMIT requires an ORDER BY" in err
        assert "| SELECT Band FROM customer LIMIT 3;" in err
        assert "^" in err

    def test_unknown_table_lists_catalog(self, sql_workspace, tmp_path,
                                         capsys):
        _, _, catalog = sql_workspace
        bad = tmp_path / "bad.sql"
        bad.write_text("SELECT a FROM nope;")
        assert main(["explain", str(bad), "--catalog", catalog]) == 2
        assert "unknown table 'nope'" in capsys.readouterr().err


class TestSqlExecution:
    def test_run_verifies_against_naive(self, sql_workspace, capsys):
        script, _, catalog = sql_workspace
        code = main(["run", script, "--catalog", catalog,
                     "--machines", "4", "--rows", "500"])
        assert code == 0
        assert ("verified: results identical to the naive reference"
                in capsys.readouterr().out)

    def test_mixed_dialect_batch(self, sql_workspace, capsys):
        sql_script, scope_script, catalog = sql_workspace
        code = main(["batch", sql_script, scope_script,
                     "--catalog", catalog, "--machines", "4",
                     "--rows", "500", "--workers", "2"])
        assert code == 0

    def test_streaming_admission_accepts_sql(self, sql_workspace,
                                             capsys):
        sql_script, scope_script, catalog = sql_workspace
        code = main(["serve", sql_script, scope_script,
                     "--catalog", catalog, "--machines", "4",
                     "--stream", "--tenants", "2", "--repeat", "1",
                     "--window-ms", "20", "--rows", "500",
                     "--workers", "2"])
        assert code == 0
        assert "0 failed" in capsys.readouterr().out


class TestFeedbackStoreFlag:
    def test_serve_persists_feedback(self, sql_workspace, tmp_path,
                                     capsys):
        script, _, catalog = sql_workspace
        store = tmp_path / "learned.json"
        code = main(["serve", script, "--catalog", catalog,
                     "--machines", "4", "--stream", "--tenants", "1",
                     "--repeat", "1", "--window-ms", "20",
                     "--rows", "500", "--workers", "2",
                     "--feedback-store", str(store)])
        assert code == 0
        doc = json.loads(store.read_text())
        assert doc["format"] == 1
        assert doc["stats"]["observations"] > 0
