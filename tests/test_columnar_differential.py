"""Differential harness: columnar backend vs row backend.

Every regression-corpus script and every paper script (S1–S4, LS1, LS2)
is executed on both backends — sequentially and on the task-parallel
scheduler at worker counts 1 and 4 — and the runs must be
*byte-identical* on canonically sorted outputs.  The deterministic work
counters (including the new ``rows_filtered``), per-operator invocation
counts and total batch counts must agree exactly, the scheduler's
exactly-once spool semantics must hold under the columnar backend, and
fault-injected columnar runs must converge to the same bytes.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.api import execute_batch, execute_script, optimize_script
from repro.exec import (
    Cluster,
    FaultInjection,
    RetryPolicy,
    TaskScheduler,
    build_stage_graph,
    get_backend,
)
from repro.obs import Tracer
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.scope.statistics import catalog_from_json
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.large_scripts import make_large_script
from repro.workloads.paper_scripts import PAPER_SCRIPTS

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS_SCRIPTS = sorted(CORPUS_DIR.glob("*.scope"))
MACHINES = 4
#: 0 = sequential executor; >=1 = task scheduler with that many workers.
WORKER_COUNTS = (0, 1, 4)

#: Deterministic counters that must agree exactly between backends.
COUNTERS = (
    "rows_extracted",
    "rows_shuffled",
    "rows_broadcast",
    "rows_spooled",
    "spool_reads",
    "rows_output",
    "rows_sorted",
    "rows_filtered",
    "max_partition_rows",
)


def _make_cluster(files, machines=MACHINES):
    cluster = Cluster(machines=machines)
    for path, rows in files.items():
        cluster.load_file(path, rows)
    return cluster


def run_backend(plan, files, workers, backend, machines=MACHINES):
    """Execute ``plan`` on one backend; returns (outputs, metrics)."""
    cluster = _make_cluster(files, machines)
    if workers == 0:
        executor = get_backend(backend).executor_cls(cluster, validate=True)
    else:
        executor = TaskScheduler(cluster, workers=workers, validate=True,
                                 backend=backend)
    outputs = executor.execute(plan)
    return outputs, executor.metrics


def assert_backends_equivalent(plan, files, workers, label,
                               machines=MACHINES):
    row_out, row_metrics = run_backend(plan, files, workers, "row", machines)
    col_out, col_metrics = run_backend(plan, files, workers, "columnar",
                                       machines)
    assert set(row_out) == set(col_out), label
    for path in row_out:
        assert (
            row_out[path].canonical_bytes() == col_out[path].canonical_bytes()
        ), f"{label}: output {path} differs between backends"
    for counter in COUNTERS:
        assert getattr(row_metrics, counter) == getattr(
            col_metrics, counter
        ), f"{label}: counter {counter} diverged"
    assert (
        row_metrics.operator_invocations == col_metrics.operator_invocations
    ), f"{label}: operator invocation counts diverged"
    assert row_metrics.total_batches() == col_metrics.total_batches(), (
        f"{label}: total batch counts diverged"
    )
    assert set(col_metrics.batches_processed) == {"columnar"}, (
        f"{label}: columnar run counted batches under "
        f"{set(col_metrics.batches_processed)}"
    )
    if workers:
        assert col_metrics.vertices, f"{label}: no vertex stats recorded"
        for name, stats in col_metrics.vertices.items():
            assert stats.launches == 1, (
                f"{label}: vertex {name} launched {stats.launches} times"
            )


# ---------------------------------------------------------------------------
# Regression corpus
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def corpus_env():
    catalog = catalog_from_json((CORPUS_DIR / "catalog.json").read_text())
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    files = generate_for_catalog(catalog, seed=3)
    return catalog, config, files


_corpus_plans = {}


def corpus_plan(corpus_env, script_path, exploit_cse):
    key = (script_path.name, exploit_cse)
    if key not in _corpus_plans:
        catalog, config, _files = corpus_env
        result = optimize_script(
            script_path.read_text(), catalog, config,
            exploit_cse=exploit_cse,
        )
        _corpus_plans[key] = result.plan
    return _corpus_plans[key]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("exploit_cse", [False, True],
                         ids=["conventional", "cse"])
@pytest.mark.parametrize(
    "script_path", CORPUS_SCRIPTS, ids=[p.stem for p in CORPUS_SCRIPTS]
)
def test_corpus_columnar_matches_row(script_path, exploit_cse, workers,
                                     corpus_env):
    plan = corpus_plan(corpus_env, script_path, exploit_cse)
    _catalog, _config, files = corpus_env
    assert_backends_equivalent(
        plan, files, workers,
        label=f"{script_path.stem} cse={exploit_cse} workers={workers}",
    )


# ---------------------------------------------------------------------------
# Paper scripts S1–S4
# ---------------------------------------------------------------------------


_paper_plans = {}


def paper_plan(abcd_catalog, name, exploit_cse):
    key = (name, exploit_cse)
    if key not in _paper_plans:
        config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
        result = optimize_script(
            PAPER_SCRIPTS[name], abcd_catalog, config,
            exploit_cse=exploit_cse,
        )
        _paper_plans[key] = result.plan
    return _paper_plans[key]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("exploit_cse", [False, True],
                         ids=["conventional", "cse"])
@pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
def test_paper_columnar_matches_row(name, exploit_cse, workers,
                                    abcd_catalog):
    plan = paper_plan(abcd_catalog, name, exploit_cse)
    files = generate_for_catalog(abcd_catalog, seed=7)
    assert_backends_equivalent(
        plan, files, workers,
        label=f"{name} cse={exploit_cse} workers={workers}",
    )


# ---------------------------------------------------------------------------
# Large scripts LS1 / LS2
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("name", ["LS1", "LS2"])
def test_large_script_columnar_matches_row(name, workers):
    """The big DAGs (34 and 151 vertices) stay backend-identical.

    Data volume is capped; the point is graph shape (hundreds of
    operators, deep spool nesting), not rows.
    """
    text, catalog, _spec = make_large_script(name)
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    result = optimize_script(text, catalog, config, exploit_cse=True)
    files = generate_for_catalog(catalog, seed=5, rows_override=120)
    assert_backends_equivalent(
        result.plan, files, workers, label=f"{name} workers={workers}",
    )


# ---------------------------------------------------------------------------
# Scheduler features over the columnar backend
# ---------------------------------------------------------------------------


class TestColumnarSchedulerFeatures:
    def test_fault_injected_columnar_converges(self, abcd_catalog):
        """Retried columnar tasks produce the same bytes as a clean row
        run — spools replay correctly through the conversion shims."""
        plan = paper_plan(abcd_catalog, "S1", exploit_cse=True)
        files = generate_for_catalog(abcd_catalog, seed=7)
        clean_out, _ = run_backend(plan, files, workers=4, backend="row")
        scheduler = TaskScheduler(
            _make_cluster(files), workers=4, validate=True,
            faults=FaultInjection(rate=0.3, seed=11),
            retry=RetryPolicy(max_retries=12),
            backend="columnar",
        )
        faulted_out = scheduler.execute(plan)
        assert scheduler.metrics.task_retries > 0, (
            "fault injection produced no retries; raise the rate"
        )
        for path in clean_out:
            assert (
                clean_out[path].canonical_bytes()
                == faulted_out[path].canonical_bytes()
            ), f"faulted columnar output {path} diverged"

    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_spool_vertices_launch_exactly_once(self, name, abcd_catalog):
        plan = paper_plan(abcd_catalog, name, exploit_cse=True)
        graph = build_stage_graph(plan)
        spool_names = {v.name for v in graph.spool_vertices()}
        assert spool_names, f"{name}: CSE plan must contain spool vertices"
        files = generate_for_catalog(abcd_catalog, seed=7)
        scheduler = TaskScheduler(_make_cluster(files), workers=4,
                                  validate=True, backend="columnar")
        scheduler.execute(plan)
        for spool in spool_names:
            stats = scheduler.metrics.vertices[spool]
            assert stats.launches == 1, (
                f"{name}: spool vertex {spool} materialized "
                f"{stats.launches} times under the columnar backend"
            )

    def test_serves_attribution_in_columnar_batch(self, abcd_catalog):
        """Cross-script sharing (``serves``) works over the columnar
        backend: the shared vertex runs once and serves both scripts."""
        run = execute_batch(
            [PAPER_SCRIPTS["S1"], PAPER_SCRIPTS["S2"]], abcd_catalog,
            workers=4, machines=MACHINES, rows=600, seed=7,
            backend="columnar",
        )
        assert run.backend == "columnar"
        shared = run.shared_vertices()
        assert shared, "S1+S2 batch must share at least one vertex"
        for vertex in shared:
            stats = run.metrics.vertices[vertex.name]
            assert stats.launches == 1
            labels = {path.split("/", 1)[0] for path in vertex.serves}
            assert len(labels) > 1
        # Both scripts' outputs came out of the one shared run.
        assert len(run.outputs) == 2
        for outputs in run.outputs:
            assert outputs

    @pytest.mark.parametrize("workers", [0, 4])
    def test_span_tree_structure_is_backend_independent(self, abcd_catalog,
                                                        workers):
        """The trace shape (and its deterministic attributes) must not
        leak the backend choice — only counters/events may differ."""
        files = generate_for_catalog(abcd_catalog, seed=7, rows_override=600)
        structures = {}
        for backend in ("row", "columnar"):
            tracer = Tracer()
            execute_script(
                PAPER_SCRIPTS["S2"], abcd_catalog,
                workers=workers, machines=MACHINES, files=files,
                backend=backend, tracer=tracer,
            )
            structures[backend] = tracer.root.structure()
        assert structures["row"] == structures["columnar"]

    def test_vertex_stats_batches_populated(self, abcd_catalog):
        plan = paper_plan(abcd_catalog, "S1", exploit_cse=True)
        files = generate_for_catalog(abcd_catalog, seed=7)
        scheduler = TaskScheduler(_make_cluster(files), workers=4,
                                  validate=True, backend="columnar")
        scheduler.execute(plan)
        stats = scheduler.metrics.vertices
        assert sum(v.batches for v in stats.values()) == \
            scheduler.metrics.total_batches()
        assert any(v.batches > 0 for v in stats.values())
