"""Tests for the shared-group property history (Section V)."""

from repro.cse.history import HistoryEntry, PropertyHistory
from repro.plan.properties import (
    Partitioning,
    PartitioningReq,
    PhysicalProps,
    ReqProps,
    SortOrder,
)


def grouping_req(*cols):
    return ReqProps(PartitioningReq.grouping(set(cols)))


class TestRecording:
    def test_range_expansion_matches_paper_example(self):
        """Section V: recording [∅,{A,B,C}] stores the seven subsets."""
        history = PropertyHistory()
        history.record_requirement(grouping_req("A", "B", "C"))
        col_sets = {e.partitioning.columns for e in history.entries}
        assert col_sets == {
            frozenset(s)
            for s in (
                {"A"}, {"B"}, {"C"},
                {"A", "B"}, {"B", "C"}, {"A", "C"},
                {"A", "B", "C"},
            )
        }

    def test_duplicate_requirements_ignored(self):
        history = PropertyHistory()
        history.record_requirement(grouping_req("A", "B"))
        n = len(history)
        history.record_requirement(grouping_req("A", "B"))
        assert len(history) == n

    def test_overlapping_requirements_merge_entries(self):
        """S1's consumers: [∅,{A,B}] and [∅,{B,C}] → 5 distinct layouts."""
        history = PropertyHistory()
        history.record_requirement(grouping_req("A", "B"))
        history.record_requirement(grouping_req("B", "C"))
        col_sets = {e.partitioning.columns for e in history.entries}
        assert col_sets == {
            frozenset(s)
            for s in ({"A"}, {"B"}, {"A", "B"}, {"C"}, {"B", "C"})
        }

    def test_serial_requirement_recorded(self):
        history = PropertyHistory()
        history.record_requirement(ReqProps.serial())
        assert [e.partitioning for e in history.entries] == [
            Partitioning.serial()
        ]

    def test_no_partitioning_requirement_records_nothing(self):
        history = PropertyHistory()
        history.record_requirement(ReqProps.anything())
        assert len(history) == 0

    def test_expansion_cap_keeps_upper_bound(self):
        history = PropertyHistory(max_subset_size=1)
        history.record_requirement(grouping_req("A", "B", "C"))
        col_sets = {e.partitioning.columns for e in history.entries}
        assert frozenset({"A", "B", "C"}) in col_sets
        assert frozenset({"A", "B"}) not in col_sets


class TestRanking:
    def test_frequency_ranking(self):
        """Section VIII-C: more frequently winning layouts come first."""
        history = PropertyHistory()
        history.record_requirement(grouping_req("A", "B"))
        win = PhysicalProps(Partitioning.hashed({"B"}), SortOrder())
        for _ in range(3):
            history.note_winner(win)
        history.note_winner(
            PhysicalProps(Partitioning.hashed({"A", "B"}), SortOrder())
        )
        ranked = history.ranked_entries()
        assert ranked[0].partitioning == Partitioning.hashed({"B"})
        assert ranked[1].partitioning == Partitioning.hashed({"A", "B"})

    def test_unseen_winner_ignored(self):
        history = PropertyHistory()
        history.record_requirement(grouping_req("A"))
        history.note_winner(
            PhysicalProps(Partitioning.hashed({"Z"}), SortOrder())
        )
        assert all(history.frequency_of(e) == 0 for e in history.entries)

    def test_stable_order_for_ties(self):
        history = PropertyHistory()
        history.record_requirement(grouping_req("A", "B"))
        assert history.ranked_entries() == history.entries


class TestEntries:
    def test_as_req_pins_layout(self):
        entry = HistoryEntry(Partitioning.hashed({"B"}))
        req = entry.as_req()
        assert req.partitioning.is_satisfied_by(Partitioning.hashed({"B"}))
        assert not req.partitioning.is_satisfied_by(
            Partitioning.hashed({"A", "B"})
        )

    def test_entries_hashable(self):
        a = HistoryEntry(Partitioning.hashed({"B"}))
        b = HistoryEntry(Partitioning.hashed({"B"}))
        assert len({a, b}) == 1
