"""Unit tests for expression fingerprints and Algorithm 1 (Section IV)."""

import pytest

from repro.cse.fingerprint import (
    compute_fingerprints,
    identify_common_subexpressions,
    op_id,
    structurally_equal,
)
from repro.optimizer.memo import Memo
from repro.plan.logical import LogicalGroupBy, LogicalSpool
from repro.scope.compiler import compile_script
from repro.workloads.paper_scripts import S1, S2, S3, S4


def memo_for(text, catalog):
    return Memo.from_logical_plan(compile_script(text, catalog))


def spool_groups(memo):
    return [
        g
        for g in memo.live_groups()
        if isinstance(g.initial_expr.op, LogicalSpool)
    ]


class TestFingerprints:
    def test_equal_subexpressions_have_equal_fingerprints(self, abcd_catalog):
        text = (
            'X = EXTRACT A,D FROM "test.log" USING E;\n'
            "R1 = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"
            "R2 = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"
            'OUTPUT R1 TO "o1";\nOUTPUT R2 TO "o2";'
        )
        memo = memo_for(text, abcd_catalog)
        fps = compute_fingerprints(memo)
        gb_gids = [
            g.gid
            for g in memo.live_groups()
            if isinstance(g.initial_expr.op, LogicalGroupBy)
        ]
        assert fps[gb_gids[0]] == fps[gb_gids[1]]

    def test_different_files_have_different_fingerprints(self, abcd_catalog):
        text = (
            'X = EXTRACT A FROM "test.log" USING E;\n'
            'Y = EXTRACT A FROM "test2.log" USING E;\n'
            'OUTPUT X TO "o1";\nOUTPUT Y TO "o2";'
        )
        memo = memo_for(text, abcd_catalog)
        fps = compute_fingerprints(memo)
        extracts = [
            g.gid for g in memo.live_groups() if not g.initial_expr.children
        ]
        assert fps[extracts[0]] != fps[extracts[1]]

    def test_type_level_opid_collides_on_purpose(self, abcd_catalog):
        """Definition 1: all group-bys share one OpID, so two group-bys
        with different keys over the same child have EQUAL fingerprints —
        the bucket verification must tell them apart."""
        memo = memo_for(S1, abcd_catalog)
        fps = compute_fingerprints(memo)
        consumer_gids = [
            g.gid
            for g in memo.live_groups()
            if isinstance(g.initial_expr.op, LogicalGroupBy)
            and g.initial_expr.op.keys in (("A", "B"), ("B", "C"))
        ]
        assert fps[consumer_gids[0]] == fps[consumer_gids[1]]
        assert not structurally_equal(memo, *consumer_gids)

    def test_op_ids_stable_per_type(self):
        from repro.plan.logical import LogicalFilter
        from repro.plan.expressions import ColumnRef

        a = LogicalGroupBy(("A",), ())
        b = LogicalGroupBy(("B", "C"), ())
        assert op_id(a) == op_id(b)
        assert op_id(a) != op_id(LogicalFilter(ColumnRef("A")))


class TestStructuralEquality:
    def test_reflexive_and_recursive(self, abcd_catalog):
        text = (
            'X = EXTRACT A,D FROM "test.log" USING E;\n'
            'Y = EXTRACT A,D FROM "test.log" USING E;\n'
            "R1 = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"
            "R2 = SELECT A,Sum(D) AS S FROM Y GROUP BY A;\n"
            'OUTPUT R1 TO "o1";\nOUTPUT R2 TO "o2";'
        )
        memo = memo_for(text, abcd_catalog)
        gb_gids = [
            g.gid
            for g in memo.live_groups()
            if isinstance(g.initial_expr.op, LogicalGroupBy)
        ]
        # Same file, same chain, different DAG nodes: structurally equal.
        assert structurally_equal(memo, *gb_gids)


class TestAlgorithm1:
    def test_s1_explicit_sharing(self, abcd_catalog):
        memo = memo_for(S1, abcd_catalog)
        report = identify_common_subexpressions(memo)
        assert len(report.shared_groups) == 1
        spools = spool_groups(memo)
        assert len(spools) == 1
        assert spools[0].is_shared
        assert len(memo.parents_of(spools[0].gid)) == 2

    @pytest.mark.parametrize(
        "script,expected_shared",
        [(S1, 1), (S2, 1), (S3, 2), (S4, 3)],
    )
    def test_shared_group_counts_per_paper(self, abcd_catalog, script,
                                           expected_shared):
        """Figure 6: S1/S2 one shared group, S3 two, S4 three (R, R1, R2)."""
        memo = memo_for(script, abcd_catalog)
        report = identify_common_subexpressions(memo)
        assert len(report.shared_groups) == expected_shared

    def test_textual_duplicates_merged_and_spooled(self, abcd_catalog):
        text = (
            'X = EXTRACT A,D FROM "test.log" USING E;\n'
            'Y = EXTRACT A,D FROM "test.log" USING E;\n'
            "R1 = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"
            "R2 = SELECT A,Sum(D) AS S FROM Y GROUP BY A;\n"
            'OUTPUT R1 TO "o1";\nOUTPUT R2 TO "o2";'
        )
        memo = memo_for(text, abcd_catalog)
        report = identify_common_subexpressions(memo)
        assert report.merged, "duplicated subexpressions must be merged"
        spools = spool_groups(memo)
        assert len(spools) == 1
        assert len(memo.parents_of(spools[0].gid)) == 2

    def test_duplicate_of_explicitly_shared_expression(self, abcd_catalog):
        """A textual duplicate of an already-shared relation must route
        its consumer through the existing spool."""
        text = (
            'X = EXTRACT A,D FROM "test.log" USING E;\n'
            "R1 = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"   # R1 shared
            "C1 = SELECT A FROM R1 WHERE S > 1;\n"
            "C2 = SELECT A FROM R1 WHERE S > 2;\n"
            "R2 = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"   # duplicate of R1
            "C3 = SELECT A FROM R2 WHERE S > 3;\n"
            'OUTPUT C1 TO "o1";\nOUTPUT C2 TO "o2";\nOUTPUT C3 TO "o3";'
        )
        memo = memo_for(text, abcd_catalog)
        identify_common_subexpressions(memo)
        gb_spools = [
            s
            for s in spool_groups(memo)
            if isinstance(
                memo.group(s.initial_expr.children[0]).initial_expr.op,
                LogicalGroupBy,
            )
        ]
        assert len(gb_spools) == 1
        assert len(memo.parents_of(gb_spools[0].gid)) == 3

    def test_no_sharing_no_spools(self, abcd_catalog):
        text = (
            'X = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"
            'OUTPUT R TO "o";'
        )
        memo = memo_for(text, abcd_catalog)
        report = identify_common_subexpressions(memo)
        assert not report.shared_groups
        assert not spool_groups(memo)

    def test_idempotent(self, abcd_catalog):
        memo = memo_for(S1, abcd_catalog)
        identify_common_subexpressions(memo)
        before = len(spool_groups(memo))
        identify_common_subexpressions(memo)
        assert len(spool_groups(memo)) == before
