"""Differential tests: SQL vs SCOPE, and CTE sharing end to end.

Two claims, both load-bearing for the SQL frontend's design:

1. A SQL query and its hand-translated SCOPE twin compile to
   *byte-identical* plans (same ``script_fingerprint``, same normalized
   explain) and produce identical outputs — the desugar-to-SCOPE
   strategy leaves no SQL-shaped residue in the DAG.
2. A CTE referenced N >= 2 times compiles to a shared subexpression
   that is spooled exactly once at execution time (``launches == 1``),
   on both execution backends and both scheduler runtimes, with
   ``serves`` attributing every consumer.
"""

from __future__ import annotations

import pytest

from repro.api import execute_script, optimize_script
from repro.cse.merge import script_fingerprint
from repro.optimizer.explain import explain_normalized
from repro.service import QueryService
from repro.workloads.starjoin import (
    SCOPE_EQUIVALENTS,
    STARJOIN_QUERIES,
    make_starjoin_catalog,
)


@pytest.fixture(scope="module")
def starjoin():
    return make_starjoin_catalog()


def _sorted_outputs(run):
    return {path: ds.sorted_rows() for path, ds in run.outputs.items()}


class TestScopeTwins:
    """SQL and hand-translated SCOPE compile and run identically."""

    @pytest.mark.parametrize("name", sorted(SCOPE_EQUIVALENTS))
    def test_identical_fingerprint(self, starjoin, name):
        catalog, _ = starjoin
        sql = optimize_script(STARJOIN_QUERIES[name], catalog,
                              dialect="sql")
        scope = optimize_script(SCOPE_EQUIVALENTS[name], catalog,
                                dialect="scope")
        assert script_fingerprint(sql.plan) == script_fingerprint(scope.plan)

    @pytest.mark.parametrize("name", sorted(SCOPE_EQUIVALENTS))
    def test_identical_normalized_plan(self, starjoin, name):
        catalog, _ = starjoin
        sql = optimize_script(STARJOIN_QUERIES[name], catalog,
                              dialect="sql")
        scope = optimize_script(SCOPE_EQUIVALENTS[name], catalog,
                                dialect="scope")
        assert explain_normalized(sql.plan) == explain_normalized(scope.plan)

    @pytest.mark.parametrize("name", sorted(SCOPE_EQUIVALENTS))
    def test_identical_outputs(self, starjoin, name):
        catalog, data = starjoin
        sql_run = execute_script(STARJOIN_QUERIES[name], catalog,
                                 files=data)
        scope_run = execute_script(SCOPE_EQUIVALENTS[name], catalog,
                                   files=data)
        assert _sorted_outputs(sql_run) == _sorted_outputs(scope_run)

    def test_dialects_share_one_cache_entry(self, starjoin):
        """The plan cache keys on the compiled DAG, not the text, so a
        SQL query and its SCOPE twin hit the same entry."""
        catalog, _ = starjoin
        service = QueryService(catalog)
        first = service.submit(STARJOIN_QUERIES["q02_band_revenue"],
                               dialect="sql")
        second = service.submit(SCOPE_EQUIVALENTS["q02_band_revenue"],
                                dialect="scope")
        assert not first.cache_hit
        assert second.cache_hit
        assert first.fingerprint == second.fingerprint


class TestCteSharingMatrix:
    """CTE spooled once across backends and runtimes."""

    @pytest.mark.parametrize("backend", ["row", "columnar"])
    @pytest.mark.parametrize("runtime", ["thread", "process"])
    def test_shared_spool_launches_once(self, starjoin, backend, runtime,
                                        tmp_path):
        catalog, data = starjoin
        service = QueryService(catalog)
        kwargs = {}
        if runtime == "process":
            kwargs["spill_dir"] = str(tmp_path)
        run = service.execute(
            STARJOIN_QUERIES["q01_item_channels"], workers=4, files=data,
            backend=backend, runtime=runtime, **kwargs,
        )
        spools = [v for v in run.stage_graph.vertices if v.is_spool]
        assert spools, "CTE consumed by two branches must be spooled"
        for vertex in spools:
            stats = run.metrics.vertices[vertex.name]
            assert stats.launches == 1, (
                f"spool {vertex.name} launched {stats.launches} times "
                f"on backend={backend} runtime={runtime}"
            )

    @pytest.mark.parametrize("backend", ["row", "columnar"])
    def test_backends_agree_on_outputs(self, starjoin, backend):
        catalog, data = starjoin
        service = QueryService(catalog)
        run = service.execute(
            STARJOIN_QUERIES["q09_big_spenders"], workers=4, files=data,
            backend=backend,
        )
        sequential = execute_script(
            STARJOIN_QUERIES["q09_big_spenders"], catalog, files=data
        )
        assert _sorted_outputs(run) == _sorted_outputs(sequential)


class TestCrossScriptSharing:
    """The same CTE text in two batched scripts spools once for both."""

    def test_batch_serves_both_queries(self, starjoin):
        catalog, data = starjoin
        service = QueryService(catalog)
        run = service.execute_many(
            [
                STARJOIN_QUERIES["q02_band_revenue"],
                STARJOIN_QUERIES["q07_band_units"],
            ],
            workers=4, files=data,
        )
        shared = run.shared_vertices()
        assert shared, "q02+q07 share the band_sales CTE verbatim"
        spools = [v for v in shared if v.is_spool]
        assert spools, "the shared CTE must be spooled, not recomputed"
        for vertex in spools:
            labels = {p.split("/", 1)[0] for p in vertex.serves}
            assert labels == {"q0", "q1"}, (
                f"spool {vertex.name} serves {sorted(vertex.serves)}; "
                "must attribute both consumers"
            )
            stats = run.metrics.vertices[vertex.name]
            assert stats.launches == 1

    def test_batch_outputs_match_independent_runs(self, starjoin):
        catalog, data = starjoin
        service = QueryService(catalog)
        batch = service.execute_many(
            [
                STARJOIN_QUERIES["q02_band_revenue"],
                STARJOIN_QUERIES["q07_band_units"],
            ],
            workers=4, files=data,
        )
        for text, outputs in zip(
            ["q02_band_revenue", "q07_band_units"], batch.outputs
        ):
            alone = execute_script(STARJOIN_QUERIES[text], catalog,
                                   files=data)
            batched = {p: ds.sorted_rows() for p, ds in outputs.items()}
            assert batched == _sorted_outputs(alone)

    def test_mixed_dialect_batch_coalesces(self, starjoin):
        """A SCOPE twin batched with its SQL original dedupes to one
        merged consumer (admission dedup keys on the compiled DAG)."""
        catalog, data = starjoin
        service = QueryService(catalog)
        sql_plan = service._compile(
            STARJOIN_QUERIES["q02_band_revenue"], "sql"
        )
        scope_plan = service._compile(
            SCOPE_EQUIVALENTS["q02_band_revenue"], "scope"
        )
        run = service.execute_many(
            [
                STARJOIN_QUERIES["q02_band_revenue"],
                SCOPE_EQUIVALENTS["q02_band_revenue"],
            ],
            workers=4, files=data,
            precompiled=[sql_plan, scope_plan],
        )
        first, second = (
            {p: ds.sorted_rows() for p, ds in outputs.items()}
            for outputs in run.outputs
        )
        assert first == second
