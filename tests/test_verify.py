"""Mutation tests for the static plan verifier (``repro.verify``).

Each test takes a *valid* optimized plan, surgically corrupts it into a
shape the optimizer must never emit, and asserts the verifier reports
the specific invariant violation.  ``PhysicalPlan`` nodes are mutable
dataclasses, so the corruptions edit plans in place exactly the way a
planner bug would.
"""

from __future__ import annotations

import copy
import dataclasses
import math

import pytest

from repro.api import optimize_script
from repro.plan.expressions import BinaryExpr, BinaryOp, ColumnRef, Literal
from repro.plan.logical import GroupByMode
from repro.plan.physical import (
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysMerge,
    PhysMergeJoin,
    PhysRepartition,
    PhysSpool,
    PhysStreamAgg,
    PhysTopN,
)
from repro.plan.properties import (
    Partitioning,
    PhysicalProps,
    ReqProps,
    SortOrder,
)
from repro.verify import (
    Invariant,
    PlanVerificationError,
    check_plan,
    verify_plan,
)
from repro.workloads.paper_scripts import S1, S4

FILTER_SCRIPT = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,D FROM R0 WHERE A > 2;
G = SELECT A,B,Sum(D) AS S FROM R GROUP BY A,B;
OUTPUT G TO "result.out";
"""

TOPN_SCRIPT = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
G = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B;
T = SELECT TOP 5 A,B,S FROM G ORDER BY A;
OUTPUT T TO "result.out";
"""


def optimized(script, catalog, config, exploit_cse=True):
    plan = optimize_script(
        script, catalog, config, exploit_cse=exploit_cse
    ).plan
    report = verify_plan(plan)
    assert report.ok, f"precondition: plan must start valid\n{report.render()}"
    return plan


def find(plan, op_type, pred=lambda n: True):
    for node in plan.iter_nodes():
        if isinstance(node.op, op_type) and pred(node):
            return node
    raise AssertionError(f"plan contains no matching {op_type.__name__}")


def assert_violated(plan, invariant):
    report = verify_plan(plan)
    assert not report.ok, f"expected a {invariant.value} violation"
    assert invariant.value in report.codes(), (
        f"expected {invariant.value}, got {report.codes()}:\n"
        f"{report.render()}"
    )
    return report


class TestInvalidEstimate:
    def test_nan_rows(self, abcd_catalog, small_config):
        plan = optimized(S1, abcd_catalog, small_config)
        node = find(plan, (PhysStreamAgg, PhysHashAgg))
        node.rows = float("nan")
        assert_violated(plan, Invariant.INVALID_ESTIMATE)

    def test_negative_cost(self, abcd_catalog, small_config):
        plan = optimized(S1, abcd_catalog, small_config)
        plan.cost = -1.0
        report = assert_violated(plan, Invariant.INVALID_ESTIMATE)
        [violation] = report.violations
        assert "cost" in violation.message

    def test_infinite_self_cost(self, abcd_catalog, small_config):
        plan = optimized(S1, abcd_catalog, small_config)
        node = find(plan, PhysRepartition)
        node.self_cost = math.inf
        assert_violated(plan, Invariant.INVALID_ESTIMATE)


class TestUnresolvedColumn:
    def test_filter_predicate_over_missing_column(self, abcd_catalog,
                                                  small_config):
        plan = optimized(FILTER_SCRIPT, abcd_catalog, small_config)
        node = find(plan, PhysFilter)
        node.op = dataclasses.replace(
            node.op,
            predicate=BinaryExpr(BinaryOp.GT, ColumnRef("ZZZ"), Literal(2)),
        )
        report = assert_violated(plan, Invariant.UNRESOLVED_COLUMN)
        assert any("ZZZ" in v.message for v in report.violations)

    def test_join_key_not_in_right_input(self, abcd_catalog, small_config):
        plan = optimized(S4, abcd_catalog, small_config)
        node = find(plan, (PhysHashJoin, PhysMergeJoin))
        node.op = dataclasses.replace(node.op, right_keys=("NOPE",))
        assert_violated(plan, Invariant.UNRESOLVED_COLUMN)


class TestSchemaMismatch:
    def test_filter_drops_columns(self, abcd_catalog, small_config):
        plan = optimized(FILTER_SCRIPT, abcd_catalog, small_config)
        node = find(plan, PhysFilter)
        node.schema = node.schema.project(node.schema.names[:2])
        assert_violated(plan, Invariant.SCHEMA_MISMATCH)

    def test_aggregate_loses_alias(self, abcd_catalog, small_config):
        plan = optimized(S1, abcd_catalog, small_config)
        node = find(plan, (PhysStreamAgg, PhysHashAgg))
        node.schema = node.children[0].schema
        assert_violated(plan, Invariant.SCHEMA_MISMATCH)


class TestPropsMismatch:
    def test_claims_partitioning_it_does_not_have(self, abcd_catalog,
                                                  small_config):
        plan = optimized(S1, abcd_catalog, small_config)
        node = find(
            plan, (PhysStreamAgg, PhysHashAgg),
            lambda n: n.props.partitioning.kind.value != "range",
        )
        node.props = PhysicalProps(
            Partitioning.ranged(("A",)), node.props.sort_order
        )
        assert_violated(plan, Invariant.PROPS_MISMATCH)

    def test_claims_sortedness_it_does_not_have(self, abcd_catalog,
                                                small_config):
        plan = optimized(FILTER_SCRIPT, abcd_catalog, small_config)
        node = find(plan, PhysFilter,
                    lambda n: not n.props.sort_order.is_sorted)
        node.props = PhysicalProps(
            node.props.partitioning, SortOrder(("A", "B", "C", "D"))
        )
        assert_violated(plan, Invariant.PROPS_MISMATCH)


class TestRequiredUnsatisfied:
    def test_parallel_delivery_for_serial_requirement(self, abcd_catalog,
                                                      small_config):
        plan = optimized(S1, abcd_catalog, small_config)
        node = find(plan, (PhysStreamAgg, PhysHashAgg),
                    lambda n: n.props.partitioning.is_parallel)
        node.required = ReqProps.serial()
        assert_violated(plan, Invariant.REQUIRED_UNSATISFIED)

    def test_enforcer_chain_intermediates_are_exempt(self, abcd_catalog,
                                                     small_config):
        # The engine stacks enforcers within one group: a Repartition
        # below a compensating Sort legitimately does not satisfy the
        # sort requirement it carries.  The verifier must accept every
        # plan the suite's scripts produce (checked in `optimized`), and
        # specifically not flag exchange nodes under same-group parents.
        plan = optimized(S1, abcd_catalog, small_config)
        assert verify_plan(plan).ok


class TestInputPrecondition:
    def test_stream_agg_over_unsorted_input(self, abcd_catalog,
                                            small_config):
        plan = optimized(S1, abcd_catalog, small_config)
        node = find(
            plan, PhysHashAgg,
            lambda n: not n.children[0].props.sort_order.is_sorted,
        )
        # The classic planner bug: swap in a stream aggregate without
        # enforcing the sort its input needs.
        node.op = PhysStreamAgg(
            key_order=node.op.keys,
            aggregates=node.op.aggregates,
            mode=node.op.mode,
        )
        report = assert_violated(plan, Invariant.INPUT_PRECONDITION)
        assert any("sorted" in v.message for v in report.violations)

    def test_full_topn_over_parallel_input(self, abcd_catalog,
                                           small_config):
        plan = optimized(TOPN_SCRIPT, abcd_catalog, small_config)
        node = find(plan, PhysTopN,
                    lambda n: n.op.mode is not GroupByMode.LOCAL)
        # Splice out the gathering exchange below the final top-n so it
        # reads the parallel stream directly.
        child = node.children[0]
        while not child.props.partitioning.is_parallel and child.children:
            child = child.children[0]
        node.children = (child,)
        assert_violated(plan, Invariant.INPUT_PRECONDITION)

    def test_grouping_on_wrong_partitioning(self, abcd_catalog,
                                            small_config):
        plan = optimized(S1, abcd_catalog, small_config)
        node = find(
            plan, (PhysStreamAgg, PhysHashAgg),
            lambda n: (n.op.mode is not GroupByMode.LOCAL
                       and n.children[0].props.partitioning.is_parallel),
        )
        child = node.children[0]
        # Partition on a column outside the grouping keys: rows of one
        # group scatter across machines and the aggregate under-counts.
        child.props = PhysicalProps(
            Partitioning.hashed(("D",)), child.props.sort_order
        )
        assert_violated(plan, Invariant.INPUT_PRECONDITION)


class TestJoinColocation:
    def test_join_inputs_partitioned_on_different_keys(self, abcd_catalog,
                                                       small_config):
        plan = optimized(S4, abcd_catalog, small_config)
        node = find(
            plan, (PhysHashJoin, PhysMergeJoin),
            lambda n: n.children[0].props.partitioning.is_parallel,
        )
        right = node.children[1]
        right.props = PhysicalProps(
            Partitioning.hashed(("S2",)), right.props.sort_order
        )
        assert_violated(plan, Invariant.JOIN_COLOCATION)

    def test_one_serial_one_parallel(self, abcd_catalog, small_config):
        plan = optimized(S4, abcd_catalog, small_config)
        node = find(
            plan, (PhysHashJoin, PhysMergeJoin),
            lambda n: n.children[0].props.partitioning.is_parallel,
        )
        right = node.children[1]
        right.props = PhysicalProps(
            Partitioning.serial(), right.props.sort_order
        )
        assert_violated(plan, Invariant.JOIN_COLOCATION)


class TestSpoolIntegrity:
    def test_spool_changes_properties(self, abcd_catalog, small_config):
        plan = optimized(S1, abcd_catalog, small_config)
        node = find(plan, PhysSpool)
        node.props = PhysicalProps(
            Partitioning.serial(), node.props.sort_order
        )
        assert_violated(plan, Invariant.SPOOL_INTEGRITY)

    def test_duplicate_producer_for_one_shared_group(self, abcd_catalog,
                                                     small_config):
        plan = optimized(S1, abcd_catalog, small_config)
        spool = find(plan, PhysSpool, lambda n: n.group_id is not None)
        clone = copy.copy(spool)
        # Re-point one consumer at the clone: two distinct producers now
        # claim the same (shared group, required properties) pair, so the
        # subexpression would be built twice.
        for node in plan.iter_nodes():
            if spool in node.children and not isinstance(node.op, PhysSpool):
                node.children = tuple(
                    clone if child is spool else child
                    for child in node.children
                )
                break
        else:
            raise AssertionError("no consumer of the spool found")
        assert_violated(plan, Invariant.SPOOL_INTEGRITY)


class TestDopMismatch:
    def test_parallelism_changes_at_non_exchange(self, abcd_catalog,
                                                 small_config):
        plan = optimized(TOPN_SCRIPT, abcd_catalog, small_config)
        node = find(plan, PhysTopN,
                    lambda n: n.op.mode is not GroupByMode.LOCAL)
        child = node.children[0]
        while not child.props.partitioning.is_parallel and child.children:
            child = child.children[0]
        node.children = (child,)
        # The final top-n now jumps parallel -> serial without the
        # gathering merge that actually moves the rows.
        assert_violated(plan, Invariant.DOP_MISMATCH)

    def test_join_inputs_disagree_on_parallelism(self, abcd_catalog,
                                                 small_config):
        plan = optimized(S4, abcd_catalog, small_config)
        node = find(
            plan, (PhysHashJoin, PhysMergeJoin),
            lambda n: n.children[0].props.partitioning.is_parallel,
        )
        right = node.children[1]
        right.props = PhysicalProps(
            Partitioning.serial(), right.props.sort_order
        )
        assert_violated(plan, Invariant.DOP_MISMATCH)


class TestReportAndApi:
    def test_clean_report_renders_ok(self, abcd_catalog, small_config):
        plan = optimized(S1, abcd_catalog, small_config)
        report = verify_plan(plan)
        assert report.ok
        assert "plan OK" in report.render()
        assert report.nodes_checked == sum(1 for _ in plan.iter_nodes())
        assert report.to_dict()["ok"] is True

    def test_violation_report_is_structured(self, abcd_catalog,
                                            small_config):
        plan = optimized(S1, abcd_catalog, small_config)
        plan.cost = -5.0
        report = verify_plan(plan)
        assert not report.ok
        rendered = report.render()
        assert "plan INVALID" in rendered
        assert Invariant.INVALID_ESTIMATE.value in rendered
        data = report.to_dict()
        assert data["violations"][0]["invariant"] == "invalid-estimate"

    def test_check_plan_raises_with_context(self, abcd_catalog,
                                            small_config):
        plan = optimized(S1, abcd_catalog, small_config)
        assert check_plan(plan) is plan
        plan.rows = -3.0
        with pytest.raises(PlanVerificationError, match="phase-1"):
            check_plan(plan, "phase-1 plan")

    def test_optimize_script_verify_flag(self, abcd_catalog, small_config):
        result = optimize_script(S1, abcd_catalog, small_config, verify=True)
        assert result.plan is not None

    def test_conventional_plans_also_verify(self, abcd_catalog,
                                            small_config):
        plan = optimized(S4, abcd_catalog, small_config, exploit_cse=False)
        assert verify_plan(plan).ok

    def test_distinct_invariant_classes(self):
        # The acceptance bar: at least six distinct invariant classes.
        assert len(Invariant) >= 6


class TestCseResultVerifyPhases:
    def test_verify_phases_checks_every_phase(self, abcd_catalog,
                                              small_config):
        result = optimize_script(S1, abcd_catalog, small_config)
        result.details.verify_phases()
        phase1 = result.details.phase1_plan
        node = find(phase1, (PhysStreamAgg, PhysHashAgg))
        node.rows = float("nan")
        with pytest.raises(PlanVerificationError):
            result.details.verify_phases()
