"""Tests for the cost model, including tree-vs-DAG costing."""

import pytest

from repro.optimizer.cardinality import Stats
from repro.optimizer.cost import CostModel, CostParams
from repro.plan.columns import Column, ColumnType, Schema
from repro.plan.physical import (
    PhysExtract,
    PhysFilter,
    PhysicalPlan,
    PhysMerge,
    PhysRepartition,
    PhysSort,
    PhysSpool,
    PhysStreamAgg,
)
from repro.plan.properties import (
    Partitioning,
    PhysicalProps,
    SortOrder,
)
from repro.plan.expressions import ColumnRef, Literal, BinaryExpr, BinaryOp


SCHEMA = Schema([Column("A"), Column("B")])


def make_plan(op, children=(), props=None, rows=1000.0, self_cost=0.0):
    node = PhysicalPlan(
        op=op,
        children=tuple(children),
        schema=SCHEMA,
        props=props or PhysicalProps(),
        cost=self_cost + sum(c.cost for c in children),
        self_cost=self_cost,
        rows=rows,
    )
    return node


@pytest.fixture
def model():
    return CostModel(CostParams(machines=10))


def stats(rows=1000.0, ndv=None):
    return Stats(rows, ndv or {"A": 100, "B": 100}, 16.0)


class TestParallelism:
    def test_serial_is_one(self, model):
        assert model.parallelism(Partitioning.serial(), stats()) == 1.0

    def test_random_is_machine_count(self, model):
        assert model.parallelism(Partitioning.random(), stats()) == 10.0

    def test_hash_bounded_by_ndv(self, model):
        low = model.parallelism(
            Partitioning.hashed({"A"}), stats(ndv={"A": 3})
        )
        assert low == 3.0

    def test_hash_bounded_by_machines(self, model):
        high = model.parallelism(
            Partitioning.hashed({"A"}), stats(ndv={"A": 1000})
        )
        assert high == 10.0


class TestOperatorCosts:
    def test_exchange_dominates_cpu(self, model):
        s = stats()
        scan = make_plan(PhysExtract(1, "f", "E", SCHEMA))
        repart = model.operator_cost(
            PhysRepartition(("A",)), s, [scan], [s]
        )
        pred = BinaryExpr(BinaryOp.GT, ColumnRef("A"), Literal(0))
        filt = model.operator_cost(PhysFilter(pred), s, [scan], [s])
        assert repart > 10 * filt

    def test_skew_penalty_on_low_ndv_columns(self, model):
        s = stats(ndv={"A": 2, "B": 1000})
        narrow = model.operator_cost(PhysRepartition(("A",)), s,
                                     [make_plan(PhysExtract(1, "f", "E", SCHEMA))],
                                     [s])
        wide = model.operator_cost(PhysRepartition(("B",)), s,
                                   [make_plan(PhysExtract(1, "f", "E", SCHEMA))],
                                   [s])
        assert narrow > wide

    def test_serial_input_slows_cpu_operators(self, model):
        s = stats()
        serial_child = make_plan(
            PhysExtract(1, "f", "E", SCHEMA),
            props=PhysicalProps(Partitioning.serial()),
        )
        parallel_child = make_plan(
            PhysExtract(1, "f", "E", SCHEMA),
            props=PhysicalProps(Partitioning.random()),
        )
        agg = PhysStreamAgg(("A",), ())
        slow = model.operator_cost(agg, s, [serial_child], [s])
        fast = model.operator_cost(agg, s, [parallel_child], [s])
        assert slow > fast

    def test_merge_pays_full_volume(self, model):
        s = stats()
        child = make_plan(PhysExtract(1, "f", "E", SCHEMA))
        cost = model.operator_cost(PhysMerge(), s, [child], [s])
        assert cost >= s.bytes() * model.params.net_byte

    def test_sort_scales_superlinearly(self, model):
        child = make_plan(PhysExtract(1, "f", "E", SCHEMA))
        small = model.operator_cost(PhysSort(SortOrder.of("A")),
                                    stats(1000), [child], [stats(1000)])
        big = model.operator_cost(PhysSort(SortOrder.of("A")),
                                  stats(100000), [child], [stats(100000)])
        assert big > 100 * small


class TestDagCost:
    def build_shared_spool_plan(self):
        scan = make_plan(PhysExtract(1, "f", "E", SCHEMA), self_cost=100.0)
        spool = make_plan(PhysSpool(), [scan], self_cost=30.0, rows=10.0)
        left = make_plan(PhysSort(SortOrder.of("A")), [spool], self_cost=5.0)
        right = make_plan(PhysSort(SortOrder.of("B")), [spool], self_cost=7.0)
        root = make_plan(PhysMerge(), [left, right], self_cost=1.0)
        return root, spool

    def test_spool_build_charged_once(self, model):
        root, spool = self.build_shared_spool_plan()
        cost = model.dag_cost(root)
        read = model.spool_read_cost(spool)
        # 100 (scan) + 30 (spool build+first read) + read + 5 + 7 + 1.
        assert cost == pytest.approx(100 + 30 + read + 5 + 7 + 1)

    def test_tree_cost_counts_duplicates(self, model):
        root, _ = self.build_shared_spool_plan()
        # Tree cost: the spool subtree is charged once per consumer.
        assert root.cost == pytest.approx(2 * (100 + 30) + 5 + 7 + 1)

    def test_non_spool_sharing_is_reexecuted(self, model):
        """A multi-referenced non-spool node costs once per reference —
        the runtime recomputes it (Figure 8(a) semantics)."""
        scan = make_plan(PhysExtract(1, "f", "E", SCHEMA), self_cost=100.0)
        left = make_plan(PhysSort(SortOrder.of("A")), [scan], self_cost=5.0)
        right = make_plan(PhysSort(SortOrder.of("B")), [scan], self_cost=7.0)
        root = make_plan(PhysMerge(), [left, right], self_cost=1.0)
        assert model.dag_cost(root) == pytest.approx(2 * 100 + 5 + 7 + 1)

    def test_plan_without_sharing_equals_tree_cost(self, model):
        scan = make_plan(PhysExtract(1, "f", "E", SCHEMA), self_cost=100.0)
        sort = make_plan(PhysSort(SortOrder.of("A")), [scan], self_cost=5.0)
        assert model.dag_cost(sort) == pytest.approx(sort.cost)

    def test_nested_spools(self, model):
        scan = make_plan(PhysExtract(1, "f", "E", SCHEMA), self_cost=100.0)
        inner = make_plan(PhysSpool(), [scan], self_cost=10.0, rows=10.0)
        mid_l = make_plan(PhysSort(SortOrder.of("A")), [inner], self_cost=1.0)
        mid_r = make_plan(PhysSort(SortOrder.of("B")), [inner], self_cost=1.0)
        outer = make_plan(PhysSpool(), [mid_l], self_cost=20.0, rows=10.0)
        root = make_plan(PhysMerge(), [outer, outer, mid_r], self_cost=0.0)
        cost = model.dag_cost(root)
        inner_read = model.spool_read_cost(inner)
        outer_read = model.spool_read_cost(outer)
        expected = (100 + 10) + 1 + 20 + outer_read + (inner_read + 1)
        assert cost == pytest.approx(expected)


class TestParamValidation:
    def test_zero_machines_rejected(self):
        with pytest.raises(ValueError):
            CostModel(CostParams(machines=0))

    def test_nonpositive_network_rejected(self):
        with pytest.raises(ValueError):
            CostModel(CostParams(net_byte=0.0))
