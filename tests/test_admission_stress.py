"""Multi-threaded admission stress: real clients, real clock, no lost
or cross-wired results.

``REPRO_ADMISSION_THREADS`` (default 4; the CI admission-stress job
sets 8) controls the client-thread count.
``REPRO_ADMISSION_METRICS=1`` (the CI telemetry job) additionally
attaches a :class:`~repro.obs.MetricsCollector` to the stormed
service, so the whole stress matrix doubles as a race test of the
metrics registry — the results must stay byte-identical and the
collector's per-tenant accounting must reconcile with the admission
counters.  Every thread replays a
seeded shuffle of a shared-heavy workload through one started
controller (background drainer, SystemClock) with blocking ``submit``;
afterwards every single result is checked byte-identical against the
one-at-a-time baseline *for the script that thread submitted* — which
rules out lost, duplicated and cross-wired routing at once — and the
counter identities must hold.  A second test races ``update_statistics``
against the submit storm (the mid-window cache-invalidation race).
"""

from __future__ import annotations

import os
import random
import threading

import pytest

from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.service import (
    AdmissionConfig,
    AdmissionController,
    QueryService,
)
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import PAPER_SCRIPTS

THREADS = int(os.environ.get("REPRO_ADMISSION_THREADS", "4"))
METRICS = os.environ.get("REPRO_ADMISSION_METRICS", "") == "1"
SCRIPTS_PER_THREAD = 6
SUBMIT_TIMEOUT = 120.0

#: Shared-heavy workload: scripts that overlap pairwise plus a renamed
#: duplicate, so windows exercise dedup *and* cross-script spools.
WORKLOAD = {
    "S1": PAPER_SCRIPTS["S1"],
    "S2": PAPER_SCRIPTS["S2"],
    "S4": PAPER_SCRIPTS["S4"],
    "S1x": PAPER_SCRIPTS["S1"].replace("R0", "Z0").replace("R1", "Z1")
                              .replace("R2", "Z2"),
}
NAMES = sorted(WORKLOAD)


def _make_service():
    from repro.plan.columns import ColumnType
    from repro.scope.catalog import Catalog

    catalog = Catalog()
    columns = [(name, ColumnType.INT) for name in ("A", "B", "C", "D")]
    ndv = {"A": 7, "B": 5, "C": 6, "D": 50}
    catalog.register_file("test.log", columns, rows=2_000, ndv=ndv)
    catalog.register_file("test2.log", columns, rows=2_000, ndv=ndv)
    return QueryService(
        catalog, OptimizerConfig(cost_params=CostParams(machines=4)),
        metrics=METRICS,
    )


@pytest.fixture(scope="module")
def baselines():
    service = _make_service()
    files = generate_for_catalog(service.catalog, seed=17)
    outputs = {}
    for name, text in WORKLOAD.items():
        run = service.execute(text, workers=0, files=files)
        outputs[name] = {
            path: data.canonical_bytes()
            for path, data in run.outputs.items()
        }
    return files, outputs


def _client(controller, thread_id, results, errors):
    rng = random.Random(1000 + thread_id)
    try:
        for index in range(SCRIPTS_PER_THREAD):
            name = rng.choice(NAMES)
            result = controller.submit(
                WORKLOAD[name], tenant=f"t{thread_id}",
                timeout=SUBMIT_TIMEOUT,
            )
            results.append((thread_id, index, name, result))
    except BaseException as exc:  # noqa: BLE001 - surfaced in the test
        errors.append(exc)


def _run_storm(controller):
    results, errors = [], []
    threads = [
        threading.Thread(target=_client,
                         args=(controller, tid, results, errors))
        for tid in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results, errors


class TestAdmissionStress:
    @pytest.fixture(scope="class")
    def stormed(self, baselines):
        files, outputs = baselines
        service = _make_service()
        controller = AdmissionController(
            service, files=files, workers=2, validate=False,
            config=AdmissionConfig(window=0.02, max_pending=1024),
        )
        with controller:
            results, errors = _run_storm(controller)
        assert not errors, f"client thread raised: {errors[0]!r}"
        return controller, results, outputs

    def test_no_lost_duplicated_or_cross_wired_results(self, stormed):
        controller, results, outputs = stormed
        # No lost results: every (thread, index) submission resolved
        # exactly once.
        slots = {(tid, idx) for tid, idx, _, _ in results}
        assert len(slots) == len(results) == THREADS * SCRIPTS_PER_THREAD
        # No cross-wiring: each result is byte-identical to the
        # baseline of the script *that* caller submitted.
        for tid, idx, name, result in results:
            want = outputs[name]
            assert set(result.outputs) == set(want), (
                f"thread {tid} submission {idx} ({name}) got paths "
                f"{sorted(result.outputs)}"
            )
            for path in want:
                assert (result.outputs[path].canonical_bytes()
                        == want[path]), (
                    f"thread {tid} submission {idx} ({name}) got wrong "
                    f"bytes for {path}"
                )
            assert result.tenant == f"t{tid}"

    def test_counters_add_up(self, stormed):
        controller, results, _outputs = stormed
        snap = controller.stats_snapshot()
        total = THREADS * SCRIPTS_PER_THREAD
        assert snap["submits"] == total
        assert snap["accepted"] + snap["deduped"] == total
        assert snap["rejected"] == 0
        assert snap["executed_scripts"] == snap["accepted"]
        assert snap["queue_depth"] == 0
        assert snap["failed_groups"] == 0
        assert snap["flushes"] == snap["windows"] >= 1
        # The workload has only 3 distinct canonical DAGs (S1x folds
        # into S1), so dedup caps the work each window can execute.
        assert snap["executed_scripts"] <= snap["flushes"] * 3

    def test_every_window_launches_shared_work_once(self, stormed):
        _controller, results, _outputs = stormed
        runs = []
        for _tid, _idx, _name, result in results:
            if not any(result.run is run for run in runs):
                runs.append(result.run)
        for run in runs:
            for vertex in run.stage_graph.vertices:
                assert run.metrics.vertices[vertex.name].launches == 1

    def test_metrics_reconcile_with_admission_counters(self, stormed):
        """Under REPRO_ADMISSION_METRICS=1 the collector raced every
        client thread; its totals must agree with the controller's own
        counters exactly — no lost or double-counted events."""
        if not METRICS:
            pytest.skip("set REPRO_ADMISSION_METRICS=1 to enable")
        controller, _results, _outputs = stormed
        collector = controller.service.metrics_collector
        snap = controller.stats_snapshot()
        total = THREADS * SCRIPTS_PER_THREAD

        resolved = sum(child.count
                       for _v, child in collector.latency.children())
        assert resolved == total
        report = collector.slo_report()
        assert sum(row["requests"] for row in report.values()) == total
        assert sum(row["failures"] for row in report.values()) == 0

        by_outcome = {}
        for (tenant, outcome), child in \
                collector.admission_submits.children():
            by_outcome[outcome] = by_outcome.get(outcome, 0) + child.value
        assert by_outcome.get("accepted", 0) == snap["accepted"]
        assert by_outcome.get("deduped", 0) == snap["deduped"]
        assert by_outcome.get("rejected", 0) == snap["rejected"]

        windows = sum(child.value
                      for _v, child in collector.windows.children())
        assert windows == snap["windows"]
        assert collector.groups.value == snap["groups"]
        assert collector.window_scripts._solo().count == snap["flushes"]
        assert collector.queue_depth.value == 0
        assert collector.queue_depth_max.value == snap["max_queue_depth"]

    def test_statistics_update_mid_window_never_yields_stale_plans(
            self, baselines):
        """``update_statistics`` racing the storm: no errors, results
        still byte-identical (outputs depend on the data, which is
        fixed), and every run's cache key carries a statistics version
        that the service actually had — a fresh submit afterwards sees
        the final version."""
        files, outputs = baselines
        service = _make_service()
        controller = AdmissionController(
            service, files=files, workers=2, validate=False,
            config=AdmissionConfig(window=0.02, max_pending=1024),
        )
        stop = threading.Event()

        def mutate():
            version = 0
            while not stop.is_set():
                version += 1
                service.update_statistics("test.log",
                                          rows=2_000 + version)

        mutator = threading.Thread(target=mutate)
        mutator.start()
        try:
            with controller:
                results, errors = _run_storm(controller)
        finally:
            stop.set()
            mutator.join()
        assert not errors, f"client thread raised: {errors[0]!r}"
        final_version = service._file_versions["test.log"]
        for _tid, _idx, name, result in results:
            for path, want in outputs[name].items():
                assert result.outputs[path].canonical_bytes() == want
            versions = dict(result.run.submit.key.stats_versions)
            assert versions["test.log"] <= final_version
        # After the dust settles the admission path serves plans
        # keyed on the final statistics version.
        sub = service.submit(WORKLOAD["S1"])
        assert dict(sub.key.stats_versions)["test.log"] == final_version
        service.cache.stats.check_consistent(len(service.cache))
