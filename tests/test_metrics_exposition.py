"""Exposition encoders: byte-stable golden snapshots and round trips.

A small registry populated under a :class:`~repro.service.ManualClock`
must render to *exactly* the same Prometheus text and JSON every time
(the inline goldens below); the JSON must round-trip through
:func:`repro.obs.metrics.load_snapshot`; and every line of the
Prometheus exposition must match the text-format grammar.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    load_snapshot,
    to_json,
    to_prometheus_text,
)
from repro.service import ManualClock


def small_registry() -> MetricsRegistry:
    clock = ManualClock()
    reg = MetricsRegistry(clock=clock)
    req = reg.counter("demo_requests_total", "Requests served",
                      ["tenant"])
    req.labels(tenant="alice").inc(3)
    req.labels(tenant='bo"b\\').inc()          # exercises label escaping
    reg.gauge("demo_queue_depth", "Scripts pending").set(2)
    lat = reg.histogram("demo_latency_seconds", "Submit latency",
                        buckets=[0.1, 1.0])
    for v in (0.05, 0.5, 5.0):
        lat.observe(v)
    rec = reg.recorder("demo_window", "Windowed events", window=60.0)
    clock.advance(10)
    rec.record(2.5)
    clock.advance(2)                           # snapshot time: t=12
    return reg


GOLDEN_PROMETHEUS = """\
# HELP demo_latency_seconds Submit latency
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="0.1"} 1
demo_latency_seconds_bucket{le="1"} 2
demo_latency_seconds_bucket{le="+Inf"} 3
demo_latency_seconds_sum 5.55
demo_latency_seconds_count 3
# HELP demo_queue_depth Scripts pending
# TYPE demo_queue_depth gauge
demo_queue_depth 2
# HELP demo_requests_total Requests served
# TYPE demo_requests_total counter
demo_requests_total{tenant="alice"} 3
demo_requests_total{tenant="bo\\"b\\\\"} 1
# HELP demo_window_window_count Windowed events (events in window)
# TYPE demo_window_window_count gauge
demo_window_window_count 1
# HELP demo_window_window_sum Windowed events (sum over window)
# TYPE demo_window_window_sum gauge
demo_window_window_sum 2.5
"""

GOLDEN_JSON = {
    "version": 1,
    "generated_at": 12,
    "metrics": {
        "demo_latency_seconds": {
            "type": "histogram",
            "help": "Submit latency",
            "labels": [],
            "samples": [{
                "labels": {},
                "count": 3,
                "sum": 5.55,
                "buckets": [[0.1, 1], [1.0, 2]],
                "p50": 1.0,
                "p95": "inf",
                "p99": "inf",
            }],
        },
        "demo_queue_depth": {
            "type": "gauge",
            "help": "Scripts pending",
            "labels": [],
            "samples": [{"labels": {}, "value": 2.0}],
        },
        "demo_requests_total": {
            "type": "counter",
            "help": "Requests served",
            "labels": ["tenant"],
            "samples": [
                {"labels": {"tenant": "alice"}, "value": 3.0},
                {"labels": {"tenant": 'bo"b\\'}, "value": 1.0},
            ],
        },
        "demo_window": {
            "type": "recorder",
            "help": "Windowed events",
            "labels": [],
            "samples": [{
                "labels": {},
                "window_seconds": 60.0,
                "count": 1,
                "sum": 2.5,
            }],
        },
    },
}


def test_prometheus_text_is_byte_stable():
    assert to_prometheus_text(small_registry()) == GOLDEN_PROMETHEUS
    assert to_prometheus_text(small_registry()) == GOLDEN_PROMETHEUS


def test_json_snapshot_matches_golden():
    assert small_registry().snapshot() == GOLDEN_JSON
    text1 = to_json(small_registry())
    text2 = to_json(small_registry())
    assert text1 == text2                      # byte-stable
    assert text1.endswith("\n")
    assert json.loads(text1) == GOLDEN_JSON


def test_json_round_trips_through_loader():
    doc = load_snapshot(to_json(small_registry()))
    assert doc == GOLDEN_JSON


def test_loader_rejects_malformed_documents():
    with pytest.raises(ValueError):
        load_snapshot("{}")
    with pytest.raises(ValueError):
        load_snapshot(json.dumps({"version": 99, "metrics": {}}))
    with pytest.raises(ValueError):
        load_snapshot(json.dumps({
            "version": 1,
            "metrics": {"x": {"type": "nope", "samples": []}},
        }))
    with pytest.raises(ValueError):
        load_snapshot(json.dumps({
            "version": 1,
            "metrics": {"x": {"type": "counter", "samples": "no"}},
        }))


# Prometheus text format: HELP/TYPE comments or sample lines of the
# form  name{label="value",...} value
_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? '
    r'(-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$'
)
_COMMENT_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


def test_every_line_parses_as_prometheus_text():
    text = to_prometheus_text(small_registry())
    assert text.endswith("\n")
    for line in text.rstrip("\n").split("\n"):
        assert _SAMPLE_RE.match(line) or _COMMENT_RE.match(line), (
            f"not valid prometheus text: {line!r}"
        )


def test_empty_registry_renders_empty():
    reg = MetricsRegistry(clock=ManualClock())
    assert to_prometheus_text(reg) == ""
    assert reg.snapshot()["metrics"] == {}
