"""Property-based tests (hypothesis) for the feedback loop.

Two claims, drawn from the PR's acceptance bar:

* **Monotone convergence** — publishing a correction never makes a
  fragment's estimate worse: the q-error of the corrected row count
  against the measured mean is always <= the q-error of the estimate it
  replaces, and iterating observe -> correct over a stationary workload
  produces a non-increasing q-error sequence.
* **Risk-gated adoption** — whatever corrections the store publishes,
  Gate B never adopts a plan whose cost under the corrected statistics
  exceeds the incumbent's cost under the *same* corrections; the plan
  the service ends up serving is never costlier (under the active
  corrections) than the plan it replaced.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs.report import qerror
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.columns import ColumnType
from repro.scope.catalog import Catalog
from repro.service import QueryService
from repro.stats import FeedbackStore, FragmentObservation
from repro.stats.feedback import FeedbackConfig
from repro.stats.fragments import fragment_fingerprints
from repro.stats.recost import recost_plan

MACHINES = 3
FP = "f" * 64

SCRIPT = (
    'R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;\n'
    "R = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B;\n"
    "X = SELECT A,Sum(S) AS T FROM R GROUP BY A;\n"
    "Y = SELECT B,Max(S) AS T FROM R GROUP BY B;\n"
    'OUTPUT X TO "x.out";\n'
    'OUTPUT Y TO "y.out";\n'
)


def _config() -> OptimizerConfig:
    return OptimizerConfig(cost_params=CostParams(machines=MACHINES))


def _catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_file(
        "test.log",
        [(c, ColumnType.INT) for c in ("A", "B", "C", "D")],
        rows=2_400,
        ndv={"A": 6, "B": 4, "C": 5, "D": 40},
    )
    return catalog


# ---------------------------------------------------------------------------
# Monotone convergence
# ---------------------------------------------------------------------------


@given(
    estimated=st.floats(min_value=1.0, max_value=1e6,
                        allow_nan=False, allow_infinity=False),
    actuals=st.lists(st.integers(min_value=0, max_value=10**6),
                     min_size=1, max_size=8),
)
def test_published_correction_never_increases_qerror(estimated, actuals):
    store = FeedbackStore()
    store.record([
        FragmentObservation(fingerprint=FP, estimated=estimated,
                            actual=actual, paths=("f.log",))
        for actual in actuals
    ])
    entry = store.fragment(FP)
    before = qerror(entry.last_estimated, entry.mean_actual)
    active = store.publish([entry])
    after = qerror(active.rows_for(FP), entry.mean_actual)
    assert before is not None and after is not None
    assert after <= before


@given(
    true_rows=st.integers(min_value=1, max_value=10**5),
    estimated=st.floats(min_value=1.0, max_value=1e6,
                        allow_nan=False, allow_infinity=False),
    rounds=st.integers(min_value=2, max_value=5),
)
def test_iterated_feedback_qerror_is_non_increasing(true_rows, estimated,
                                                    rounds):
    """Observe -> correct over a stationary workload converges."""
    store = FeedbackStore()
    estimate = estimated
    errors = []
    for _ in range(rounds):
        store.record([FragmentObservation(
            fingerprint=FP, estimated=estimate, actual=true_rows,
            paths=("f.log",),
        )])
        entry = store.fragment(FP)
        errors.append(qerror(estimate, entry.mean_actual))
        active = store.publish([entry])
        estimate = active.rows_for(FP)
    assert all(not math.isnan(e) for e in errors)
    assert all(later <= earlier for earlier, later
               in zip(errors, errors[1:]))
    # With a stationary true cardinality, one correction is exact.
    assert errors[-1] == 1.0


# ---------------------------------------------------------------------------
# Risk-gated adoption
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_gate_never_adopts_a_worse_corrected_cost_plan(data):
    catalog = _catalog()
    service = QueryService(
        catalog, _config(),
        feedback=FeedbackConfig(qerror_threshold=1.5,
                                min_observations=1, auto=False),
    )
    incumbent = service.submit(SCRIPT)
    memo = incumbent.result.details.plan_memo
    prints = {
        gid: fp for gid, fp in fragment_fingerprints(memo).items()
        if fp is not None and memo.group(gid).stats.rows > 0
    }
    fingerprints = sorted(set(prints.values()))
    chosen = data.draw(st.lists(
        st.sampled_from(fingerprints), unique=True,
        min_size=1, max_size=min(5, len(fingerprints)),
    ))
    observations = []
    for fp in chosen:
        gid = min(g for g, f in prints.items() if f == fp)
        observations.append(FragmentObservation(
            fingerprint=fp,
            estimated=float(memo.group(gid).stats.rows),
            actual=data.draw(st.integers(min_value=0, max_value=5_000)),
            paths=("test.log",),
        ))
    service.feedback.store.record(observations)
    cards = service.feedback.step()
    for card in cards:
        if card.action == "adopt":
            assert card.new_cost < card.old_cost
        elif card.action == "keep":
            assert card.new_cost >= card.old_cost
    # Whatever the gate decided, the plan now being served never costs
    # more under the active corrections than the incumbent does.
    active = service.feedback.store.active()
    served = service.submit(SCRIPT)
    _, served_cost = recost_plan(
        served.result.plan, served.result.details.plan_memo,
        catalog, _config(), corrections=active,
    )
    _, incumbent_cost = recost_plan(
        incumbent.result.plan, incumbent.result.details.plan_memo,
        catalog, _config(), corrections=active,
    )
    assert served_cost <= incumbent_cost * (1.0 + 1e-9)
