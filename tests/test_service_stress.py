"""Concurrency stress tests: one ``QueryService``, many submitting threads.

``REPRO_SERVICE_THREADS`` (default 4; the CI service-stress job sets 8)
controls the thread count.  Every thread replays a seeded shuffle of a
mixed hot/cold workload against one shared service; afterwards the
single-flight guarantee (one optimization per distinct cache key, no
matter how the threads race), plan determinism across threads, and the
exact counter identities are all checked.
"""

from __future__ import annotations

import os
import random
import threading

import pytest

from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.optimizer.explain import explain_normalized
from repro.service import QueryService
from repro.workloads.paper_scripts import PAPER_SCRIPTS

THREADS = int(os.environ.get("REPRO_SERVICE_THREADS", "4"))
ROUNDS_PER_THREAD = 6

#: Mixed workload: the four paper scripts plus renamed variants (same
#: DAG, different relation names — must land on the same cache entry).
WORKLOAD = list(PAPER_SCRIPTS.values()) + [
    PAPER_SCRIPTS["S1"].replace("R0", "Z0").replace("R1", "Z1"),
    PAPER_SCRIPTS["S2"].replace("R0", "Y0"),
]


def _make_service(abcd_catalog) -> QueryService:
    config = OptimizerConfig(cost_params=CostParams(machines=4))
    return QueryService(abcd_catalog, config, cache_capacity=64)


def _hammer(service, thread_seed: int, results, errors) -> None:
    rng = random.Random(thread_seed)
    try:
        for _ in range(ROUNDS_PER_THREAD):
            for text in rng.sample(WORKLOAD, len(WORKLOAD)):
                sub = service.submit(text)
                results.append((sub.fingerprint, sub))
    except BaseException as exc:  # noqa: BLE001 - surfaced in the test
        errors.append(exc)


def _run_threads(service):
    results, errors = [], []
    threads = [
        threading.Thread(target=_hammer, args=(service, seed, results,
                                               errors))
        for seed in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results, errors


class TestServiceStress:
    @pytest.fixture()
    def hammered(self, abcd_catalog):
        service = _make_service(abcd_catalog)
        results, errors = _run_threads(service)
        assert not errors, f"worker thread raised: {errors[0]!r}"
        return service, results

    def test_no_duplicate_optimizations(self, hammered):
        """Single-flight: one optimizer run per distinct cache key."""
        service, results = hammered
        distinct_keys = {sub.key for _, sub in results}
        assert service.stats.optimizations == len(distinct_keys)
        # The renamed variants fold onto their originals: 6 workload
        # scripts, 4 distinct DAGs.
        assert len(distinct_keys) == 4

    def test_results_are_deterministic_across_threads(self, hammered):
        _service, results = hammered
        plans_by_fp = {}
        for fingerprint, sub in results:
            rendered = explain_normalized(sub.result.plan)
            prior = plans_by_fp.setdefault(fingerprint, rendered)
            assert rendered == prior, (
                f"two threads observed different plans for {fingerprint}"
            )

    def test_counters_add_up(self, hammered):
        service, results = hammered
        snap = service.stats_snapshot()
        expected_submits = THREADS * ROUNDS_PER_THREAD * len(WORKLOAD)
        assert snap["submits"] == expected_submits == len(results)
        # Every submission is exactly one of: served from cache,
        # optimized, or coalesced onto another thread's optimization.
        assert (
            snap["cache_hits"] + snap["optimizations"] + snap["coalesced"]
            == expected_submits
        )
        assert snap["cache_lookups"] == snap["cache_hits"] + \
            snap["cache_misses"]
        assert snap["optimizations"] == snap["cache_misses"]
        service.cache.stats.check_consistent(len(service.cache))
        hits = sum(1 for _, sub in results if sub.cache_hit)
        assert hits == snap["cache_hits"] + snap["coalesced"]

    def test_stress_survives_concurrent_invalidation(self, abcd_catalog):
        """Statistics updates racing the submit storm stay safe: no
        errors, counters consistent, and the final state is fresh."""
        service = _make_service(abcd_catalog)
        stop = threading.Event()

        def mutate():
            version = 0
            while not stop.is_set():
                version += 1
                service.update_statistics("test.log", rows=4_000 + version)

        mutator = threading.Thread(target=mutate)
        mutator.start()
        try:
            results, errors = _run_threads(service)
        finally:
            stop.set()
            mutator.join()
        assert not errors, f"worker thread raised: {errors[0]!r}"
        snap = service.stats_snapshot()
        assert (
            snap["cache_hits"] + snap["optimizations"] + snap["coalesced"]
            == snap["submits"]
        )
        service.cache.stats.check_consistent(len(service.cache))
        # After the dust settles, a fresh submit must see the final
        # statistics version.
        sub = service.submit(PAPER_SCRIPTS["S1"])
        versions = dict(sub.key.stats_versions)
        assert versions["test.log"] == service._file_versions["test.log"]
