"""Unit tests for the naive reference evaluator itself.

The oracle must be trustworthy: these tests check it against hand-
computed results on tiny inputs.
"""

import pytest

from repro.naive import NaiveEvaluator
from repro.plan.logical import GroupByMode, LogicalGroupBy, LogicalPlan
from repro.scope.compiler import compile_script

FILES = {
    "test.log": [
        {"A": 1, "B": 1, "C": 1, "D": 10},
        {"A": 1, "B": 1, "C": 2, "D": 20},
        {"A": 2, "B": 1, "C": 1, "D": 5},
        {"A": 2, "B": 2, "C": 1, "D": 7},
    ],
    "test2.log": [
        {"A": 1, "B": 1, "C": 1, "D": 100},
    ],
}


def run(text, abcd_catalog):
    return NaiveEvaluator(FILES).run(compile_script(text, abcd_catalog))


class TestHandComputed:
    def test_group_by_sum(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,B,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A;\n"
            'OUTPUT R TO "o";'
        )
        assert run(text, abcd_catalog)["o"] == [(1, 30), (2, 12)]

    def test_filter_then_count(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Count(*) AS N FROM R0 WHERE D > 6 GROUP BY A;\n"
            'OUTPUT R TO "o";'
        )
        assert run(text, abcd_catalog)["o"] == [(1, 2), (2, 1)]

    def test_join(self, abcd_catalog):
        text = (
            'X = EXTRACT A,D FROM "test.log" USING E;\n'
            'Y = EXTRACT A,D FROM "test2.log" USING E;\n'
            "J = SELECT X.A,X.D AS DX,Y.D AS DY FROM X, Y WHERE X.A = Y.A;\n"
            'OUTPUT J TO "o";'
        )
        assert run(text, abcd_catalog)["o"] == [(1, 10, 100), (1, 20, 100)]

    def test_distinct(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,B FROM "test.log" USING E;\n'
            "R = SELECT DISTINCT A,B FROM R0;\n"
            'OUTPUT R TO "o";'
        )
        assert run(text, abcd_catalog)["o"] == [(1, 1), (2, 1), (2, 2)]

    def test_union_all_keeps_duplicates(self, abcd_catalog):
        text = (
            'X = EXTRACT A FROM "test2.log" USING E;\n'
            "R = SELECT A FROM X UNION ALL SELECT A FROM X;\n"
            'OUTPUT R TO "o";'
        )
        assert run(text, abcd_catalog)["o"] == [(1,), (1,)]

    def test_scalar_aggregate(self, abcd_catalog):
        text = (
            'R0 = EXTRACT D FROM "test.log" USING E;\n'
            "R = SELECT Sum(D) AS S,Count(*) AS N,Min(D) AS MN,Max(D) AS MX "
            "FROM R0;\n"
            'OUTPUT R TO "o";'
        )
        assert run(text, abcd_catalog)["o"] == [(42, 4, 5, 20)]

    def test_avg(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Avg(D) AS M FROM R0 GROUP BY A;\n"
            'OUTPUT R TO "o";'
        )
        assert run(text, abcd_catalog)["o"] == [(1, 15.0), (2, 6.0)]

    def test_having(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A HAVING S > 20;\n"
            'OUTPUT R TO "o";'
        )
        assert run(text, abcd_catalog)["o"] == [(1, 30)]

    def test_multiple_outputs(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A;\n"
            'OUTPUT R TO "a";\nOUTPUT R0 TO "b";'
        )
        outputs = run(text, abcd_catalog)
        assert set(outputs) == {"a", "b"}
        assert len(outputs["b"]) == 4


class TestGuards:
    def test_rejects_split_group_bys(self, abcd_catalog):
        text = (
            'R0 = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A;\n"
            'OUTPUT R TO "o";'
        )
        plan = compile_script(text, abcd_catalog)
        gb = next(
            n for n in plan.iter_nodes() if isinstance(n.op, LogicalGroupBy)
        )
        local = LogicalPlan(
            LogicalGroupBy(gb.op.keys, gb.op.aggregates, GroupByMode.LOCAL),
            list(gb.children),
        )
        with pytest.raises(ValueError):
            NaiveEvaluator(FILES)._eval(local)

    def test_shared_nodes_evaluated_once(self, abcd_catalog):
        """The evaluator caches by node identity (pure functions), so a
        shared relation contributes the same rows to both consumers."""
        text = (
            'R0 = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A;\n"
            "X = SELECT A,S FROM R WHERE S > 0;\n"
            "Y = SELECT A,S FROM R WHERE S > 20;\n"
            'OUTPUT X TO "x";\nOUTPUT Y TO "y";'
        )
        outputs = run(text, abcd_catalog)
        assert set(outputs["y"]) <= set(outputs["x"])
