"""CLI telemetry surface: serve --metrics-*, repro top, run --stats-json.

End-to-end through ``repro.cli.main``: a streaming serve writes a
metrics snapshot and serves ``/metrics`` + ``/healthz`` over HTTP;
``repro top`` renders the dashboard from both the file and the live
endpoint; ``repro run --stats-json`` exports the flat execution
metrics.  The dashboard renderer itself is golden-tested on a
hand-built snapshot so its layout is pinned without real timing.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.cli import main
from repro.obs import MetricsCollector
from repro.obs.bus import ObsEvent
from repro.obs.top import render_dashboard
from repro.plan.columns import ColumnType
from repro.scope.catalog import Catalog
from repro.scope.statistics import catalog_to_json
from repro.service import ManualClock

S1_TEXT = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) AS S1 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
"""


@pytest.fixture
def workspace(tmp_path):
    script = tmp_path / "s1.scope"
    script.write_text(S1_TEXT)
    catalog = Catalog()
    catalog.register_file(
        "test.log",
        [(c, ColumnType.INT) for c in ("A", "B", "C", "D")],
        rows=10_000,
        ndv={"A": 8, "B": 6, "C": 9, "D": 500},
    )
    catalog_path = tmp_path / "catalog.json"
    catalog_path.write_text(catalog_to_json(catalog))
    return str(script), str(catalog_path)


class TestServeMetrics:
    def test_metrics_out_then_top(self, workspace, tmp_path, capsys):
        script, catalog = workspace
        snap = str(tmp_path / "metrics.json")
        code = main(["serve", script, "--catalog", catalog, "--stream",
                     "--tenants", "2", "--repeat", "2", "--rows", "200",
                     "--window-ms", "20", "--machines", "4",
                     "--metrics-out", snap])
        assert code == 0
        out = capsys.readouterr().out
        assert f"metrics snapshot written to {snap}" in out

        doc = json.load(open(snap))
        assert doc["version"] == 1
        slo = doc["slo"]["tenants"]
        assert sorted(slo) == ["t0", "t1"]
        assert all(row["requests"] == 2 for row in slo.values())

        assert main(["top", snap]) == 0
        dashboard = capsys.readouterr().out
        assert "--- tenants (SLO: latency objective + burn) ---" in dashboard
        assert "t0" in dashboard and "t1" in dashboard
        assert "--- submit latency (all tenants) ---" in dashboard

    def test_metrics_port_serves_http(self, workspace, tmp_path, capsys):
        script, catalog = workspace
        # Non-stream serve with an ephemeral port: scrape it afterwards
        # via repro top pointed at the printed URL — the linger keeps
        # the endpoint alive only as long as the command runs, so here
        # we exercise the in-process path.
        snap = str(tmp_path / "m.json")
        code = main(["serve", script, "--catalog", catalog,
                     "--repeat", "2", "--machines", "4",
                     "--metrics-out", snap])
        assert code == 0
        doc = json.load(open(snap))
        submits = doc["metrics"]["repro_submits_total"]["samples"]
        assert {s["labels"]["op"] for s in submits} == {"hit", "optimize"}
        assert doc["derived"]["cache_hit_ratio"] == 0.5

    def test_healthz_and_metrics_live(self, workspace):
        """Hit the real HTTP endpoint while a service is measured."""
        from repro.obs import MetricsServer
        from repro.optimizer.cost import CostParams
        from repro.optimizer.engine import OptimizerConfig
        from repro.scope.statistics import catalog_from_json
        from repro.service import QueryService

        script, catalog_path = workspace
        catalog = catalog_from_json(open(catalog_path).read())
        service = QueryService(
            catalog,
            OptimizerConfig(cost_params=CostParams(machines=4)),
            metrics=True)
        service.submit(S1_TEXT)
        with MetricsServer(service.metrics_collector,
                           health=service.health) as server:
            with urllib.request.urlopen(server.url + "/metrics",
                                        timeout=10) as response:
                text = response.read().decode()
            assert 'repro_submits_total{op="optimize"} 1' in text
            with urllib.request.urlopen(server.url + "/healthz",
                                        timeout=10) as response:
                assert response.status == 200
            # repro top straight off the live endpoint
            assert main(["top", server.url]) == 0

    def test_top_on_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_top_on_invalid_snapshot_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["top", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestRunStatsJson:
    def test_flat_metrics_export(self, workspace, tmp_path, capsys):
        script, catalog = workspace
        stats = str(tmp_path / "stats.json")
        code = main(["run", script, "--catalog", catalog,
                     "--rows", "300", "--workers", "2",
                     "--machines", "4", "--stats-json", stats])
        assert code == 0
        doc = json.load(open(stats))
        assert doc["rows_extracted"] == 300
        assert any(key.startswith("operator.") for key in doc)
        assert any(key.startswith("batches_processed.") for key in doc)
        assert "vertices" in doc
        for stats_row in doc["vertices"].values():
            assert {"launches", "rows_in", "rows_out"} <= set(stats_row)


# -- dashboard golden --------------------------------------------------------

def _dashboard_collector() -> MetricsCollector:
    """A deterministic collector fed synthetic events on a manual
    clock — the golden pins the full dashboard layout."""
    clock = ManualClock()
    collector = MetricsCollector(clock=clock)

    def emit(kind, **attrs):
        collector(ObsEvent.make(kind, **attrs))

    emit("service.submit", op="optimize")
    emit("service.submit", op="hit")
    emit("service.cache", op="miss")
    emit("service.cache", op="hit")
    emit("service.admission.queue_depth", depth=3)
    emit("service.admission.queue_depth", depth=1)
    emit("service.admission.window_flush", trigger="window", scripts=3)
    emit("service.admission.window_flush", trigger="threshold", scripts=8)
    emit("service.admission.resolve", tenant="alice", latency=0.05,
         ok=True, window=0)
    emit("service.admission.resolve", tenant="alice", latency=0.2,
         ok=True, window=1)
    emit("service.admission.resolve", tenant="bob", latency=2.0,
         ok=False, window=1)
    emit("service.admission.savings", tenant="alice", window=1,
         vertices=2, rows_saved=1500.0)
    emit("service.admission.dedup", tenant="bob", fingerprint="ff",
         joined_tenant="alice")
    return collector


GOLDEN_DASHBOARD = """\
=== repro top  (snapshot at t=0.000s) ===
queue depth: 1 (max 3)   cache hit ratio: 50.0%

--- tenants (SLO: latency objective + burn) ---
tenant          req     p50     p95     p99  breach   compl   burn
------------------------------------------------------------------
alice             2    64ms   256ms   256ms       0  100.0%   0.00
bob               1   2.05s   2.05s   2.05s       1    0.0% 100.00 !

--- shared-work savings ---
tenant       shared vtx  rows saved dedup saved
-----------------------------------------------
alice                 2       1,500           0
bob                   0           0           1

--- submit latency (all tenants) ---
  <=     64ms         1  ##############################
  <=    256ms         1  ##############################
  <=    2.05s         1  ##############################

--- window flush sizes ---
  <=        4         1  ##############################
  <=        8         1  ##############################

--- service submissions ---
  hit                  1
  optimize             1

--- window flushes by trigger ---
  threshold            1
  window               1
"""


def test_dashboard_golden():
    text = render_dashboard(_dashboard_collector().snapshot())
    assert text == GOLDEN_DASHBOARD


def test_dashboard_empty_snapshot():
    clock = ManualClock()
    text = render_dashboard(MetricsCollector(clock=clock).snapshot())
    assert "(no tenants resolved yet)" in text
    assert "(no shared work recorded)" in text
    assert "(no observations)" in text
    assert "cache hit ratio: n/a" in text
