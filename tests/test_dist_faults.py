"""Crash-fault tolerance of the multiprocess runtime.

A :class:`KillPlan` SIGKILLs a worker process *before* it touches the
dispatched task — indistinguishable from a machine lost mid-stage, with
no exception to catch.  The supervisor must detect the death from the
pipe alone, replace the worker, and re-dispatch *only* the lost
vertex's task against the inputs already spilled to disk; outputs and
deterministic counters must match a clean run exactly.  Exhausting the
retry budget must fail structurally — a
:class:`~repro.exec.VertexFailedError` naming the vertex, caused by
:class:`~repro.exec.WorkerLost` — and preserve the spill directory with
its manifest for post-mortems.
"""

from __future__ import annotations

import os

import pytest

from repro.api import optimize_script
from repro.exec import (
    Cluster,
    FaultInjection,
    KillPlan,
    ProcessScheduler,
    RetryPolicy,
    VertexFailedError,
    WorkerLost,
    build_stage_graph,
)
from repro.exec.dist import read_manifest
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import PAPER_SCRIPTS, S1

MACHINES = 4

#: Deterministic counters compared between clean and crash-injected
#: runs.  ``worker_deaths``/``task_retries`` are excluded by design:
#: they are exactly what a kill changes.
COUNTERS = (
    "rows_extracted",
    "rows_shuffled",
    "rows_broadcast",
    "rows_spooled",
    "spool_reads",
    "rows_output",
    "rows_sorted",
    "rows_filtered",
    "max_partition_rows",
    "simulated_makespan",
)

_cache = {}


@pytest.fixture
def s1_plan(abcd_catalog):
    if "plan" not in _cache:
        config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
        _cache["plan"] = optimize_script(
            S1, abcd_catalog, config, exploit_cse=True
        ).plan
    return _cache["plan"]


@pytest.fixture
def s1_files(abcd_catalog):
    if "files" not in _cache:
        _cache["files"] = generate_for_catalog(abcd_catalog, seed=23)
    return _cache["files"]


def _make_cluster(files):
    cluster = Cluster(machines=MACHINES)
    for path, rows in files.items():
        cluster.load_file(path, rows)
    return cluster


def run_process(plan, files, workers=2, kill_plan=None, max_retries=3,
                rate=0.0, seed=0, **kwargs):
    scheduler = ProcessScheduler(
        _make_cluster(files),
        workers=workers,
        validate=True,
        faults=FaultInjection(rate=rate, seed=seed),
        retry=RetryPolicy(max_retries=max_retries, backoff=0.0),
        kill_plan=kill_plan,
        **kwargs,
    )
    outputs = scheduler.execute(plan)
    return outputs, scheduler


def _victim_vertex(plan) -> str:
    """A deterministic mid-graph vertex (has dependencies) to kill."""
    graph = build_stage_graph(plan)
    for vertex in graph.vertices:
        if vertex.deps and not vertex.is_spool:
            return vertex.name
    raise AssertionError("no mid-graph vertex found")


class TestWorkerDeathRecovery:
    def test_sigkill_mid_stage_recovers_byte_identically(self, s1_plan,
                                                         s1_files):
        clean_outputs, clean = run_process(s1_plan, s1_files)
        victim = _victim_vertex(s1_plan)
        outputs, sched = run_process(
            s1_plan, s1_files, kill_plan=KillPlan(vertex=victim)
        )
        assert set(outputs) == set(clean_outputs)
        for path in clean_outputs:
            assert (
                outputs[path].canonical_bytes()
                == clean_outputs[path].canonical_bytes()
            ), f"crash recovery changed {path}"
        assert sched.metrics.worker_deaths == 1
        assert clean.metrics.worker_deaths == 0

    def test_redispatch_is_bounded_to_the_lost_vertex(self, s1_plan,
                                                      s1_files):
        """Exactly one task — the killed vertex's — is retried; every
        other vertex runs its tasks once, from the spilled inputs
        already on disk (nothing upstream re-executes)."""
        victim = _victim_vertex(s1_plan)
        _outputs, sched = run_process(
            s1_plan, s1_files, kill_plan=KillPlan(vertex=victim)
        )
        assert sched.metrics.task_retries == 1
        for name, stats in sched.metrics.vertices.items():
            assert stats.launches == 1, name
            assert stats.retries == (1 if name == victim else 0), name

    def test_counters_not_double_counted_after_redispatch(self, s1_plan,
                                                          s1_files):
        """The dead attempt never replied, and a stale duplicate could
        never fill an occupied slot — so every deterministic counter
        and the operator census match a clean run exactly."""
        _clean_outputs, clean = run_process(s1_plan, s1_files)
        victim = _victim_vertex(s1_plan)
        _outputs, sched = run_process(
            s1_plan, s1_files, kill_plan=KillPlan(vertex=victim)
        )
        for counter in COUNTERS:
            assert getattr(sched.metrics, counter) == getattr(
                clean.metrics, counter
            ), f"counter {counter} diverged after crash recovery"
        assert (
            sched.metrics.operator_invocations
            == clean.metrics.operator_invocations
        )

    @pytest.mark.parametrize("name", sorted(PAPER_SCRIPTS))
    def test_global_kill_recovers_on_every_paper_script(self, name,
                                                        abcd_catalog):
        """An unnamed kill plan takes down whichever worker gets the
        nth dispatch; recovery must hold wherever the crash lands."""
        config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
        plan = optimize_script(
            PAPER_SCRIPTS[name], abcd_catalog, config, exploit_cse=True
        ).plan
        files = generate_for_catalog(abcd_catalog, seed=23)
        clean_outputs, _clean = run_process(plan, files)
        outputs, sched = run_process(
            plan, files, kill_plan=KillPlan(nth_task=1)
        )
        assert sched.metrics.worker_deaths == 1
        for path in clean_outputs:
            assert (
                outputs[path].canonical_bytes()
                == clean_outputs[path].canonical_bytes()
            ), f"{name}: crash recovery changed {path}"

    def test_repeated_kills_within_budget_still_recover(self, s1_plan,
                                                        s1_files):
        victim = _victim_vertex(s1_plan)
        _clean_outputs, clean = run_process(s1_plan, s1_files)
        outputs, sched = run_process(
            s1_plan, s1_files,
            kill_plan=KillPlan(vertex=victim, times=2),
            max_retries=3,
        )
        assert sched.metrics.worker_deaths == 2
        assert sched.metrics.vertices[victim].retries == 2
        for path in outputs:
            assert (
                outputs[path].canonical_bytes()
                == _clean_outputs[path].canonical_bytes()
            )
        assert clean.metrics.rows_output == sched.metrics.rows_output


class TestRetryExhaustion:
    def test_exhaustion_raises_typed_error_naming_the_vertex(
            self, s1_plan, s1_files, tmp_path):
        victim = _victim_vertex(s1_plan)
        with pytest.raises(VertexFailedError) as excinfo:
            run_process(
                s1_plan, s1_files,
                kill_plan=KillPlan(vertex=victim, times=100),
                max_retries=2,
                spill_dir=str(tmp_path),
            )
        assert excinfo.value.vertex == victim
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, WorkerLost)

    def test_failure_preserves_spill_dir_with_manifest(self, s1_plan,
                                                       s1_files, tmp_path):
        victim = _victim_vertex(s1_plan)
        scheduler = ProcessScheduler(
            _make_cluster(s1_files),
            workers=2,
            validate=True,
            retry=RetryPolicy(max_retries=1, backoff=0.0),
            kill_plan=KillPlan(vertex=victim, times=100),
            spill_dir=str(tmp_path),
        )
        with pytest.raises(VertexFailedError):
            scheduler.execute(s1_plan)
        assert os.path.isdir(scheduler.spill.path)
        doc = read_manifest(scheduler.spill.path)
        assert doc["status"] == "failed"
        assert "VertexFailedError" in doc["error"]
        # Committed vertices (the killed one's dependencies) are named
        # with their spilled files — the reusable-state inventory.
        assert doc["vertices"], "no committed vertices in the manifest"
        for entry in doc["vertices"].values():
            assert entry["vertex"] != victim
            for part in entry["parts"]:
                assert os.path.isfile(
                    os.path.join(scheduler.spill.path, part)
                )


class TestSpillLifecycle:
    def test_success_removes_spill_dir(self, s1_plan, s1_files, tmp_path):
        _outputs, sched = run_process(
            s1_plan, s1_files, spill_dir=str(tmp_path)
        )
        assert not os.path.exists(sched.spill.path)

    def test_keep_spill_preserves_complete_manifest(self, s1_plan,
                                                    s1_files, tmp_path):
        _outputs, sched = run_process(
            s1_plan, s1_files, spill_dir=str(tmp_path), keep_spill=True
        )
        assert os.path.isdir(sched.spill.path)
        doc = read_manifest(sched.spill.path)
        assert doc["status"] == "complete"
        graph = build_stage_graph(s1_plan)
        assert len(doc["vertices"]) == len(graph.vertices)


class TestInjectedFaultsOnProcessRuntime:
    def test_exception_faults_retry_like_the_thread_runtime(self, s1_plan,
                                                            s1_files):
        """Seeded *exception* injection (the thread scheduler's fault
        model) must also converge on the process runtime: errors ride
        the reply pipe, not the death path."""
        clean_outputs, _clean = run_process(s1_plan, s1_files)
        outputs, sched = run_process(
            s1_plan, s1_files, rate=0.4, seed=42, max_retries=12
        )
        assert sched.metrics.task_retries > 0
        assert sched.metrics.worker_deaths == 0
        for path in clean_outputs:
            assert (
                outputs[path].canonical_bytes()
                == clean_outputs[path].canonical_bytes()
            )
        for stats in sched.metrics.vertices.values():
            assert stats.launches == 1
