"""Tests for the search engine: phase 1, enforcers, winners, budget."""

import pytest

from repro.cse.pipeline import optimize_conventional, optimize_with_cse
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.physical import (
    PhysExtract,
    PhysMerge,
    PhysRepartition,
    PhysSort,
    PhysSpool,
)
from repro.plan.properties import PartitionKind
from repro.scope.compiler import compile_script
from repro.workloads.paper_scripts import S1, S2


def conventional(text, catalog, **kwargs):
    cfg = OptimizerConfig(cost_params=CostParams(machines=4), **kwargs)
    return optimize_conventional(compile_script(text, catalog), catalog, cfg)


def with_cse(text, catalog, **kwargs):
    cfg = OptimizerConfig(cost_params=CostParams(machines=4), **kwargs)
    return optimize_with_cse(compile_script(text, catalog), catalog, cfg)


class TestConventionalOptimization:
    def test_s1_baseline_duplicates_pipeline(self, abcd_catalog):
        """Figure 8(a): two extracts, two repartition chains, no spool."""
        result = conventional(S1, abcd_catalog)
        plan = result.plan
        assert plan.count_operator(PhysSpool) == 0
        # The same extract winner object is referenced from both
        # pipelines; execution (and tree/DAG costing) duplicates it.
        extracts = plan.find_all(PhysExtract)
        assert len(extracts) == 1
        repartitions = plan.find_all(PhysRepartition)
        assert len(repartitions) >= 1

    def test_every_plan_satisfies_root_requirement(self, abcd_catalog):
        result = conventional(S1, abcd_catalog)
        assert result.plan is not None
        assert result.cost > 0

    def test_aggregation_inputs_partitioned_on_keys(self, abcd_catalog):
        from repro.plan.physical import PhysHashAgg, PhysStreamAgg
        from repro.plan.logical import GroupByMode

        result = conventional(S1, abcd_catalog)
        for node in result.plan.iter_nodes():
            if isinstance(node.op, (PhysHashAgg, PhysStreamAgg)):
                if node.op.mode is GroupByMode.LOCAL:
                    continue
                keys = (
                    node.op.keys
                    if isinstance(node.op, PhysHashAgg)
                    else node.op.key_order
                )
                child = node.children[0]
                assert child.props.partitioning.partitioned_on(keys) or (
                    not keys
                    and child.props.partitioning.kind is PartitionKind.SERIAL
                )

    def test_stream_aggs_have_sorted_inputs(self, abcd_catalog):
        from repro.plan.physical import PhysStreamAgg
        from repro.plan.properties import SortOrder

        result = conventional(S1, abcd_catalog)
        for node in result.plan.iter_nodes():
            if isinstance(node.op, PhysStreamAgg):
                child = node.children[0]
                assert child.props.sort_order.satisfies(
                    SortOrder(node.op.key_order)
                )


class TestEnforcers:
    def test_sort_enforcer_appears_when_needed(self, abcd_catalog):
        """Forcing stream aggregation makes the optimizer insert sorts."""
        text = (
            'X = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"
            'OUTPUT R TO "o";'
        )
        result = conventional(text, abcd_catalog)
        # Whatever implementation won, the plan is property-consistent;
        # if a stream agg is used, a sort or sorted exchange fed it.
        kinds = {type(n.op).__name__ for n in result.plan.iter_nodes()}
        assert "PhysOutput".replace("Phys", "Output") or kinds

    def test_serial_enforcement_for_scalar_aggregate(self, abcd_catalog):
        text = (
            'X = EXTRACT D FROM "test.log" USING E;\n'
            "R = SELECT Sum(D) AS S FROM X;\n"
            'OUTPUT R TO "o";'
        )
        result = conventional(text, abcd_catalog)
        merges = result.plan.find_all(PhysMerge)
        assert merges, "scalar aggregation needs a gather to one machine"

    def test_enforcer_chain_costed(self, abcd_catalog):
        result = conventional(S1, abcd_catalog)
        for node in result.plan.iter_nodes():
            assert node.self_cost > 0 or not node.children


class TestWinnerCache:
    def test_winner_reuse_across_consumers(self, abcd_catalog):
        result = conventional(S1, abcd_catalog)
        engine = result.engine
        # The extract group must have been optimized once per distinct
        # requirement, far fewer times than the number of references.
        extract_group = next(
            g
            for g in engine.memo.live_groups()
            if not g.initial_expr.children
        )
        # Bounded by the distinct (partitioning, sort) requirements the
        # consumers and enforcers can generate — far fewer than the
        # number of candidate evaluations that referenced the group.
        assert 1 <= len(extract_group.winners) <= 16

    def test_same_object_for_same_key(self, abcd_catalog):
        result = conventional(S1, abcd_catalog)
        plan = result.plan
        extracts = plan.find_all(PhysExtract)
        assert len(extracts) == 1  # deduped by identity through winners


class TestBudget:
    def test_round_cap_limits_rounds(self, abcd_catalog):
        result = with_cse(S2, abcd_catalog, max_rounds=2)
        assert result.engine.stats.rounds <= 2
        assert result.plan is not None

    def test_zero_budget_falls_back_to_phase1(self, abcd_catalog):
        result = with_cse(S2, abcd_catalog, max_rounds=0)
        assert result.engine.stats.rounds == 0
        assert result.plan is not None
        assert result.chosen_phase in (1, 2)
        # Without any enforcement round, phase 2 cannot beat phase 1 by
        # much; the result must still be a valid plan.
        assert result.cost <= result.phase1_cost

    def test_exhausted_time_budget_keeps_best_so_far(self, abcd_catalog):
        result = with_cse(S2, abcd_catalog, budget_seconds=0.0)
        assert result.plan is not None


class TestPhase2:
    def test_s1_phase2_wins_and_shares(self, abcd_catalog):
        result = with_cse(S1, abcd_catalog)
        assert result.chosen_phase == 2
        assert result.cost < result.phase1_cost
        spools = result.plan.find_all(PhysSpool)
        assert len(spools) == 1

    def test_s1_shared_layout_satisfies_both_consumers(self, abcd_catalog):
        result = with_cse(S1, abcd_catalog)
        spool = result.plan.find_all(PhysSpool)[0]
        part = spool.props.partitioning
        assert part.kind is PartitionKind.HASH
        # The enforced layout must satisfy grouping on {A,B} and {B,C}:
        # only subsets of {B} qualify.
        assert part.columns <= {"B"}

    def test_cse_beats_conventional(self, abcd_catalog):
        base = conventional(S1, abcd_catalog)
        ext = with_cse(S1, abcd_catalog)
        assert ext.cost < base.cost

    def test_round_log_enumerates_history_entries(self, abcd_catalog):
        result = with_cse(S1, abcd_catalog)
        log = result.engine.stats.round_log
        assert log
        lca_gids = {entry[0] for entry in log}
        assert len(lca_gids) == 1
        enforced_layouts = {entry[1][0][1].partitioning for entry in log}
        # All five S1 history layouts were tried ({A},{B},{A,B},{C},{B,C}).
        assert len(enforced_layouts) == 5


class TestRuleRestriction:
    def test_unknown_rule_name_rejected(self, abcd_catalog):
        from repro.optimizer.engine import OptimizerConfig, SearchEngine
        from repro.optimizer.memo import Memo
        from repro.scope.compiler import compile_script

        memo = Memo.from_logical_plan(compile_script(S1, abcd_catalog))
        with pytest.raises(ValueError):
            SearchEngine(memo, abcd_catalog,
                         OptimizerConfig(rule_names=("no-such-rule",)))

    def test_without_split_rule_no_local_aggregation(self, abcd_catalog):
        """Paper §III: earlier phases run with fewer rules — restricting
        the rule set removes the local/final aggregation alternatives."""
        from repro.plan.logical import GroupByMode
        from repro.plan.physical import PhysHashAgg, PhysStreamAgg

        result = conventional(S1, abcd_catalog,
                              rule_names=("merge-filters",))
        modes = {
            n.op.mode
            for n in result.plan.iter_nodes()
            if isinstance(n.op, (PhysHashAgg, PhysStreamAgg))
        }
        assert modes == {GroupByMode.FULL}

    def test_restricted_rules_never_cheaper(self, abcd_catalog):
        full = conventional(S1, abcd_catalog)
        restricted = conventional(S1, abcd_catalog,
                                  rule_names=("merge-filters",))
        assert restricted.cost >= full.cost
