"""Tests for transformation and implementation rules."""

import pytest

from repro.optimizer.cardinality import CardinalityEstimator, annotate_memo
from repro.optimizer.memo import Memo
from repro.optimizer.rules.implementation import enumerate_implementations
from repro.optimizer.rules.transformation import (
    MergeConsecutiveFilters,
    PushFilterBelowJoin,
    PushFilterThroughProject,
    RuleEnv,
    SplitGroupBy,
)
from repro.plan.expressions import AggFunc
from repro.plan.logical import (
    GroupByMode,
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalProject,
)
from repro.plan.physical import (
    PhysHashAgg,
    PhysicalPlan,
    PhysMergeJoin,
    PhysStreamAgg,
)
from repro.plan.properties import (
    PartitioningReq,
    PartReqKind,
    ReqProps,
    SortOrder,
)
from repro.scope.compiler import compile_script
from repro.workloads.paper_scripts import S1, S4


def prepared(text, catalog):
    memo = Memo.from_logical_plan(compile_script(text, catalog))
    estimator = CardinalityEstimator(catalog, machines=4)
    annotate_memo(memo, estimator)
    return memo, RuleEnv(memo, estimator)


def find_group(memo, predicate):
    return next(g for g in memo.live_groups() if predicate(g.initial_expr.op))


class TestSplitGroupBy:
    def test_split_produces_final_over_local(self, abcd_catalog):
        memo, env = prepared(S1, abcd_catalog)
        group = find_group(
            memo,
            lambda op: isinstance(op, LogicalGroupBy)
            and op.keys == ("A", "B", "C"),
        )
        rule = SplitGroupBy()
        produced = list(rule.apply(memo, group.gid, group.initial_expr, env))
        assert len(produced) == 1
        final = produced[0]
        assert final.op.mode is GroupByMode.FINAL
        local_group = memo.group(final.children[0])
        assert local_group.initial_expr.op.mode is GroupByMode.LOCAL

    def test_merge_aggregates_use_merge_funcs(self, abcd_catalog):
        memo, env = prepared(
            'X = EXTRACT A,D FROM "test.log" USING E;\n'
            "R = SELECT A,Count(D) AS C,Min(D) AS M FROM X GROUP BY A;\n"
            'OUTPUT R TO "o";',
            abcd_catalog,
        )
        group = find_group(memo, lambda op: isinstance(op, LogicalGroupBy))
        final = next(
            SplitGroupBy().apply(memo, group.gid, group.initial_expr, env)
        )
        funcs = {a.alias: a.func for a in final.op.aggregates}
        assert funcs["C"] is AggFunc.SUM  # count of partials is summed
        assert funcs["M"] is AggFunc.MIN

    def test_local_and_final_not_resplit(self, abcd_catalog):
        memo, env = prepared(S1, abcd_catalog)
        group = find_group(
            memo,
            lambda op: isinstance(op, LogicalGroupBy)
            and op.keys == ("A", "B", "C"),
        )
        rule = SplitGroupBy()
        final = next(rule.apply(memo, group.gid, group.initial_expr, env))
        assert not list(rule.apply(memo, group.gid, final, env))

    def test_local_group_dedup(self, abcd_catalog):
        memo, env = prepared(S1, abcd_catalog)
        group = find_group(
            memo,
            lambda op: isinstance(op, LogicalGroupBy)
            and op.keys == ("A", "B", "C"),
        )
        rule = SplitGroupBy()
        a = next(rule.apply(memo, group.gid, group.initial_expr, env))
        b = next(rule.apply(memo, group.gid, group.initial_expr, env))
        assert a.children == b.children


class TestFilterRules:
    def test_merge_consecutive_filters(self, abcd_catalog):
        memo, env = prepared(
            'X = EXTRACT A,B FROM "test.log" USING E;\n'
            "Y = SELECT A,B FROM X WHERE A > 1;\n"
            "Z = SELECT A,B FROM Y WHERE B > 2;\n"
            'OUTPUT Z TO "o";',
            abcd_catalog,
        )
        outer = find_group(
            memo,
            lambda op: isinstance(op, LogicalFilter)
            and "B" in op.predicate.referenced_columns(),
        )
        produced = list(
            MergeConsecutiveFilters().apply(
                memo, outer.gid, outer.initial_expr, env
            )
        )
        assert len(produced) == 1
        merged = produced[0]
        assert merged.op.predicate.referenced_columns() == {"A", "B"}

    def test_push_filter_through_project(self, abcd_catalog):
        memo, env = prepared(
            'X = EXTRACT A,B FROM "test.log" USING E;\n'
            "Y = SELECT B AS P, A AS Q FROM X;\n"
            "Z = SELECT P,Q FROM Y WHERE P > 1;\n"
            'OUTPUT Z TO "o";',
            abcd_catalog,
        )
        outer = find_group(memo, lambda op: isinstance(op, LogicalFilter))
        produced = list(
            PushFilterThroughProject().apply(
                memo, outer.gid, outer.initial_expr, env
            )
        )
        assert len(produced) == 1
        assert isinstance(produced[0].op, LogicalProject)
        pushed_filter = memo.group(produced[0].children[0])
        assert isinstance(pushed_filter.initial_expr.op, LogicalFilter)
        refs = pushed_filter.initial_expr.op.predicate.referenced_columns()
        assert refs == {"B"}  # P maps back to B

    def test_push_filter_below_join_splits_sides(self, abcd_catalog):
        memo, env = prepared(
            'X = EXTRACT A,B FROM "test.log" USING E;\n'
            'Y = EXTRACT A,C FROM "test2.log" USING E;\n'
            "Z = SELECT X.A,B,C FROM X,Y WHERE X.A = Y.A AND B > 1 AND C > 2;\n"
            'OUTPUT Z TO "o";',
            abcd_catalog,
        )
        outer = find_group(memo, lambda op: isinstance(op, LogicalFilter))
        produced = list(
            PushFilterBelowJoin().apply(memo, outer.gid, outer.initial_expr, env)
        )
        assert produced
        join_expr = produced[0]
        assert isinstance(join_expr.op, LogicalJoin)
        left = memo.group(join_expr.children[0])
        right = memo.group(join_expr.children[1])
        assert isinstance(left.initial_expr.op, LogicalFilter)
        # Right side is a rename project over the filtered extract or a
        # filter directly, depending on rename placement.
        assert isinstance(right.initial_expr.op, (LogicalFilter, LogicalProject))


class TestImplementationRules:
    def req_grouping(self, *cols):
        return ReqProps(PartitioningReq.grouping(set(cols)))

    def gb_group(self, memo, keys):
        return find_group(
            memo,
            lambda op: isinstance(op, LogicalGroupBy) and op.keys == keys,
        )

    def test_group_by_offers_stream_and_hash(self, abcd_catalog):
        memo, env = prepared(S1, abcd_catalog)
        group = self.gb_group(memo, ("A", "B", "C"))
        cands = list(
            enumerate_implementations(
                memo, group.initial_expr, ReqProps.anything()
            )
        )
        kinds = {type(c.op) for c in cands}
        assert PhysStreamAgg in kinds
        assert PhysHashAgg in kinds

    def test_stream_agg_aligns_with_required_sort(self, abcd_catalog):
        """The interesting-order propagation behind Figure 8's (B,A,C)."""
        memo, env = prepared(S1, abcd_catalog)
        group = self.gb_group(memo, ("A", "B", "C"))
        req = ReqProps(sort_order=SortOrder.of("B", "A"))
        cands = [
            c
            for c in enumerate_implementations(memo, group.initial_expr, req)
            if isinstance(c.op, PhysStreamAgg)
        ]
        orders = {c.op.key_order for c in cands}
        assert ("B", "A", "C") in orders

    def test_agg_child_requirement_intersects_keys(self, abcd_catalog):
        memo, env = prepared(S1, abcd_catalog)
        group = self.gb_group(memo, ("A", "B", "C"))
        req = self.req_grouping("A", "B")
        cands = list(
            enumerate_implementations(memo, group.initial_expr, req)
        )
        for cand in cands:
            preq = cand.child_reqs[0].partitioning
            assert preq.kind is PartReqKind.RANGE
            assert preq.hi <= {"A", "B"}

    def test_incompatible_requirement_yields_no_direct_candidates(
        self, abcd_catalog
    ):
        memo, env = prepared(S1, abcd_catalog)
        group = self.gb_group(memo, ("A", "B", "C"))
        # Partitioning on D cannot be delivered by an agg on A,B,C.
        req = ReqProps(PartitioningReq.exact({"D"}))
        assert not list(
            enumerate_implementations(memo, group.initial_expr, req)
        )

    def test_join_candidates_co_partition_exactly(self, abcd_catalog):
        memo, env = prepared(S4, abcd_catalog)
        group = find_group(memo, lambda op: isinstance(op, LogicalJoin))
        cands = list(
            enumerate_implementations(
                memo, group.initial_expr, ReqProps.anything()
            )
        )
        merge_joins = [c for c in cands if isinstance(c.op, PhysMergeJoin)]
        assert merge_joins
        for cand in merge_joins:
            left_req, right_req = cand.child_reqs
            if left_req.partitioning.kind is PartReqKind.RANGE:
                assert left_req.partitioning.lo == left_req.partitioning.hi
