"""End-to-end coverage for UNION ALL and broadcast joins."""

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, PlanExecutor
from repro.naive import NaiveEvaluator
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.columns import ColumnType
from repro.plan.physical import PhysBroadcastJoin, PhysUnionAll
from repro.scope.catalog import Catalog
from repro.scope.compiler import compile_script
from repro.workloads.datagen import generate_for_catalog

UNION_SCRIPT = """
X = EXTRACT A,D FROM "test.log" USING E;
Y = EXTRACT A,D FROM "test2.log" USING E;
HighX = SELECT A,D FROM X WHERE D > 25;
HighY = SELECT A,D FROM Y WHERE D > 25;
Combined = SELECT A,D FROM HighX UNION ALL SELECT A,D FROM HighY;
Agg = SELECT A,Sum(D) AS S,Count(*) AS N FROM Combined GROUP BY A;
OUTPUT Agg TO "o";
"""

BROADCAST_SCRIPT = """
Facts = EXTRACT K,V FROM "facts.log" USING E;
Dim = EXTRACT K,Label FROM "dim.log" USING E;
J = SELECT Facts.K AS K,V,Label FROM Facts JOIN Dim ON Facts.K = Dim.K;
Agg = SELECT Label,Sum(V) AS S FROM J GROUP BY Label;
OUTPUT Agg TO "o";
"""


class TestUnionAll:
    def run(self, abcd_catalog, exploit_cse):
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        files = generate_for_catalog(abcd_catalog, seed=29)
        result = optimize_script(UNION_SCRIPT, abcd_catalog, config,
                                 exploit_cse=exploit_cse)
        cluster = Cluster(machines=4)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        expected = NaiveEvaluator(files).run(
            compile_script(UNION_SCRIPT, abcd_catalog)
        )
        return result, outputs, expected

    @pytest.mark.parametrize("exploit_cse", [False, True])
    def test_union_matches_oracle(self, abcd_catalog, exploit_cse):
        _result, outputs, expected = self.run(abcd_catalog, exploit_cse)
        assert outputs["o"].sorted_rows() == expected["o"]

    def test_union_operator_in_plan(self, abcd_catalog):
        result, _outputs, _expected = self.run(abcd_catalog, False)
        assert result.plan.find_all(PhysUnionAll)


class TestBroadcastJoin:
    @pytest.fixture
    def star_catalog(self):
        catalog = Catalog()
        catalog.register_file(
            "facts.log",
            [("K", ColumnType.INT), ("V", ColumnType.INT)],
            rows=5_000,
            ndv={"K": 8, "V": 200},
        )
        catalog.register_file(
            "dim.log",
            [("K", ColumnType.INT), ("Label", ColumnType.INT)],
            rows=8,
            ndv={"K": 8, "Label": 8},
        )
        return catalog

    def test_tiny_dimension_is_broadcast(self, star_catalog):
        """An 8-row dimension against 5000 facts: replicating the
        dimension beats shuffling the facts."""
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        result = optimize_script(BROADCAST_SCRIPT, star_catalog, config)
        assert result.plan.find_all(PhysBroadcastJoin)

    def test_broadcast_execution_correct(self, star_catalog):
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        files = generate_for_catalog(star_catalog, seed=29)
        result = optimize_script(BROADCAST_SCRIPT, star_catalog, config)
        cluster = Cluster(machines=4)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        executor = PlanExecutor(cluster, validate=True)
        outputs = executor.execute(result.plan)
        expected = NaiveEvaluator(files).run(
            compile_script(BROADCAST_SCRIPT, star_catalog)
        )
        assert outputs["o"].sorted_rows() == expected["o"]
        if result.plan.find_all(PhysBroadcastJoin):
            assert executor.metrics.rows_broadcast > 0


class TestFingerprintClasses:
    def test_three_way_duplicate_merged_to_one_spool(self, abcd_catalog):
        from repro.cse.fingerprint import identify_common_subexpressions
        from repro.optimizer.memo import Memo
        from repro.plan.logical import LogicalSpool

        text = (
            'X = EXTRACT A,D FROM "test.log" USING E;\n'
            "R1 = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"
            "R2 = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"
            "R3 = SELECT A,Sum(D) AS S FROM X GROUP BY A;\n"
            'OUTPUT R1 TO "a";\nOUTPUT R2 TO "b";\nOUTPUT R3 TO "c";'
        )
        memo = Memo.from_logical_plan(compile_script(text, abcd_catalog))
        report = identify_common_subexpressions(memo)
        assert len(report.merged) == 2
        spools = [
            g
            for g in memo.live_groups()
            if isinstance(g.initial_expr.op, LogicalSpool)
        ]
        assert len(spools) == 1
        assert len(memo.parents_of(spools[0].gid)) == 3

    def test_false_positive_buckets_counted(self, abcd_catalog):
        """Two different GROUP BYs over the same child collide by
        Definition 1 and must be told apart (counted, not merged)."""
        from repro.cse.fingerprint import identify_common_subexpressions
        from repro.optimizer.memo import Memo
        from repro.workloads.paper_scripts import S1

        memo = Memo.from_logical_plan(compile_script(S1, abcd_catalog))
        report = identify_common_subexpressions(memo)
        assert report.false_positives >= 1
        # ...and nothing got merged by accident (S1 has only the
        # explicitly shared group).
        assert not report.merged


class TestJoinCommutativity:
    @pytest.fixture
    def reversed_star_catalog(self):
        """Tiny LEFT input, huge RIGHT input: only the commuted join can
        broadcast the small side."""
        catalog = Catalog()
        catalog.register_file(
            "dim.log",
            [("K", ColumnType.INT), ("Label", ColumnType.INT)],
            rows=8,
            ndv={"K": 8, "Label": 8},
        )
        catalog.register_file(
            "facts.log",
            [("K", ColumnType.INT), ("V", ColumnType.INT)],
            rows=5_000,
            ndv={"K": 8, "V": 200},
        )
        return catalog

    SCRIPT = """
Dim = EXTRACT K,Label FROM "dim.log" USING E;
Facts = EXTRACT K,V FROM "facts.log" USING E;
J = SELECT Dim.K AS K,Label,V FROM Dim JOIN Facts ON Dim.K = Facts.K;
Agg = SELECT Label,Sum(V) AS S FROM J GROUP BY Label;
OUTPUT Agg TO "o";
"""

    def test_commuted_join_broadcasts_the_small_left_side(
        self, reversed_star_catalog
    ):
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        result = optimize_script(self.SCRIPT, reversed_star_catalog, config)
        broadcasts = result.plan.find_all(PhysBroadcastJoin)
        assert broadcasts, "the commuted join should enable a broadcast"
        # The broadcast (build) side must be the 8-row dimension.
        build = broadcasts[0].children[1]
        assert build.rows <= 8

    def test_commuted_execution_correct(self, reversed_star_catalog):
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        files = generate_for_catalog(reversed_star_catalog, seed=29)
        result = optimize_script(self.SCRIPT, reversed_star_catalog, config)
        cluster = Cluster(machines=4)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        outputs = PlanExecutor(cluster, validate=True).execute(result.plan)
        expected = NaiveEvaluator(files).run(
            compile_script(self.SCRIPT, reversed_star_catalog)
        )
        assert outputs["o"].sorted_rows() == expected["o"]

    def test_left_join_never_commuted(self, reversed_star_catalog):
        from repro.optimizer.rules.transformation import CommuteJoin, RuleEnv
        from repro.optimizer.cardinality import (
            CardinalityEstimator,
            annotate_memo,
        )
        from repro.optimizer.memo import Memo
        from repro.plan.logical import LogicalJoin

        text = self.SCRIPT.replace("JOIN Facts", "LEFT OUTER JOIN Facts")
        memo = Memo.from_logical_plan(
            compile_script(text, reversed_star_catalog)
        )
        estimator = CardinalityEstimator(reversed_star_catalog, machines=4)
        annotate_memo(memo, estimator)
        env = RuleEnv(memo, estimator)
        rule = CommuteJoin()
        for group in memo.live_groups():
            if isinstance(group.initial_expr.op, LogicalJoin):
                assert not list(
                    rule.apply(memo, group.gid, group.initial_expr, env)
                )
