"""Property tests for canonical output encoding and layout conversion.

``Dataset.canonical_bytes`` is the equality oracle of every differential
harness in this repo (sequential vs scheduler, row vs columnar), so it
must be a pure function of the *bag of rows*: invariant under partition
layout, row order, empty partitions — and identical across the
row↔columnar conversions.  Hypothesis drives all of that with typed,
nullable, unicode-bearing columns.

Columns are typed per-column (each one all-int, all-float or all-str)
because that is the only shape the executors produce; value equality
across types (``1 == 1.0``) with distinct ``repr`` would otherwise make
byte-level canonicalization order-dependent.  The deterministic
regression tests at the bottom cover the heterogeneous case that
``sorted_rows`` previously crashed on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import ColumnBatch, ColumnarDataset, Dataset
from repro.exec.columnar import from_row_dataset
from repro.exec.datasets import canonical_sort_key
from repro.plan.columns import Column, Schema

# -- strategies -------------------------------------------------------------

_COLUMN_NAMES = ("A", "B", "C", "D", "E")

_INT = st.integers(min_value=-10**6, max_value=10**6)
# Exclude NaN (not self-equal) and normalize -0.0: it equals 0.0 but
# reprs differently, which would legitimately break byte determinism.
_FLOAT = st.floats(allow_nan=False, allow_infinity=False, width=32).map(
    lambda x: 0.0 if x == 0 else x
)
_STR = st.text(max_size=8)  # full unicode, empty strings included

_COLUMN_KINDS = (_INT, _FLOAT, _STR)


@st.composite
def typed_tables(draw, min_rows=0, max_rows=30):
    """A (names, rows) pair with per-column typed, nullable values."""
    n_cols = draw(st.integers(min_value=1, max_value=len(_COLUMN_NAMES)))
    names = _COLUMN_NAMES[:n_cols]
    value_strategies = [
        st.one_of(st.none(), draw(st.sampled_from(_COLUMN_KINDS)))
        for _ in names
    ]
    n_rows = draw(st.integers(min_value=min_rows, max_value=max_rows))
    rows = [
        {name: draw(strategy)
         for name, strategy in zip(names, value_strategies)}
        for _ in range(n_rows)
    ]
    return names, rows


def _partitioned(names, rows, n_parts, order, offset=0):
    """Deterministically scatter ``rows`` (permuted) over partitions."""
    permuted = [rows[i] for i in order]
    partitions = [[] for _ in range(n_parts)]
    for i, row in enumerate(permuted):
        partitions[(i + offset) % n_parts].append(row)
    return Dataset(Schema([Column(n) for n in names]), partitions)


# -- canonical_bytes layout invariance --------------------------------------


@given(table=typed_tables(), data=st.data())
@settings(max_examples=150, deadline=None)
def test_canonical_bytes_is_layout_invariant(table, data):
    names, rows = table
    order = data.draw(st.permutations(range(len(rows))))
    a = _partitioned(names, rows, n_parts=1, order=range(len(rows)))
    b = _partitioned(
        names, rows,
        n_parts=data.draw(st.integers(min_value=1, max_value=6)),
        order=order,
        offset=data.draw(st.integers(min_value=0, max_value=5)),
    )
    assert a.canonical_bytes() == b.canonical_bytes()
    assert a.sorted_rows() == b.sorted_rows()


@given(table=typed_tables())
@settings(max_examples=60, deadline=None)
def test_empty_partitions_do_not_change_bytes(table):
    names, rows = table
    dense = _partitioned(names, rows, n_parts=2, order=range(len(rows)))
    sparse = Dataset(
        dense.schema,
        [[]] + [list(p) for p in dense.partitions] + [[], []],
    )
    assert dense.canonical_bytes() == sparse.canonical_bytes()


# -- row <-> columnar round trips -------------------------------------------


@given(table=typed_tables(), data=st.data())
@settings(max_examples=150, deadline=None)
def test_columnar_round_trip_preserves_rows_exactly(table, data):
    names, rows = table
    dataset = _partitioned(
        names, rows,
        n_parts=data.draw(st.integers(min_value=1, max_value=5)),
        order=range(len(rows)),
    )
    columnar = from_row_dataset(dataset)
    assert isinstance(columnar, ColumnarDataset)
    assert columnar.n_partitions == dataset.n_partitions
    assert columnar.total_rows() == dataset.total_rows()
    back = columnar.to_row_dataset()
    # Exact row equality partition by partition — not just canonical.
    assert back.partitions == dataset.partitions
    assert back.schema.names == dataset.schema.names
    assert back.canonical_bytes() == dataset.canonical_bytes()


@given(table=typed_tables())
@settings(max_examples=80, deadline=None)
def test_column_batch_round_trip(table):
    names, rows = table
    batch = ColumnBatch.from_rows(names, rows)
    assert len(batch) == len(rows)
    assert batch.to_rows() == rows
    for name in names:
        assert batch.columns[name] == [row[name] for row in rows]


@given(table=typed_tables(min_rows=1), data=st.data())
@settings(max_examples=80, deadline=None)
def test_column_batch_take_matches_row_gather(table, data):
    names, rows = table
    batch = ColumnBatch.from_rows(names, rows)
    indices = data.draw(st.lists(
        st.integers(min_value=0, max_value=len(rows) - 1), max_size=20
    ))
    taken = batch.take(indices)
    assert taken.to_rows() == [rows[i] for i in indices]


# -- total order over heterogeneous values ----------------------------------


_ANY_VALUE = st.one_of(
    st.none(), _INT, _FLOAT, st.text(max_size=5),
    st.tuples(st.integers(), st.integers()),
)


@given(st.lists(st.tuples(_ANY_VALUE, _ANY_VALUE), max_size=30))
@settings(max_examples=100, deadline=None)
def test_canonical_sort_key_totally_orders_mixed_tuples(tuples):
    """Sorting arbitrary mixed-type tuples must never raise TypeError."""
    ordered = sorted(tuples, key=canonical_sort_key)
    keys = [canonical_sort_key(t) for t in ordered]
    assert keys == sorted(keys)


# -- heterogeneous sorted_rows regression -----------------------------------


class TestHeterogeneousSortedRows:
    """``sorted_rows`` used to raise ``TypeError: '<' not supported``
    when one column position mixed ints and strings across rows."""

    def _mixed_dataset(self):
        return Dataset(
            Schema([Column("K"), Column("V")]),
            [
                [{"K": "beta", "V": 1}, {"K": 7, "V": None}],
                [{"K": None, "V": 2.5}, {"K": 7.5, "V": "x"}],
            ],
        )

    def test_no_type_error(self):
        rows = self._mixed_dataset().sorted_rows()
        assert len(rows) == 4

    def test_deterministic_order(self):
        # Numbers first (natively ordered), then strings, then NULLs.
        rows = self._mixed_dataset().sorted_rows()
        assert [r[0] for r in rows] == [7, 7.5, "beta", None]

    def test_canonical_bytes_stable_across_layouts(self):
        base = self._mixed_dataset()
        shuffled = Dataset(
            base.schema,
            [[], list(reversed(base.all_rows())), []],
        )
        assert base.canonical_bytes() == shuffled.canonical_bytes()
