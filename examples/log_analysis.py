"""A realistic click-stream analysis script.

This is the kind of workload the paper's introduction motivates: a large
service log is extracted once, sessionized (aggregated per user/query),
and the sessions relation is then consumed by several downstream
reports — top queries, per-region traffic, a self-join correlating a
user's activity across regions, and a health report that an analyst
wrote by copy-pasting an existing aggregation (a *textual* duplicate the
fingerprint step of Algorithm 1 finds and merges).

    python examples/log_analysis.py
"""

from repro import Catalog, ColumnType, optimize_script
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig

SCRIPT = """
Raw = EXTRACT UserId,Query,Region,Latency,Clicks FROM "clicks.log"
      USING ClickExtractor;
Good = SELECT UserId,Query,Region,Latency,Clicks FROM Raw
       WHERE Latency < 5000;

// Sessionize: per (user, query, region) activity — the big shared
// intermediate everything below consumes.
Sessions = SELECT UserId,Query,Region,Sum(Clicks) AS C,Count(*) AS N
           FROM Good GROUP BY UserId,Query,Region;

// Report 1: query popularity.
TopQueries = SELECT Query,Sum(C) AS Clicks FROM Sessions GROUP BY Query;

// Report 2: regional traffic.
Regional = SELECT Region,Sum(C) AS Clicks,Sum(N) AS Events
           FROM Sessions GROUP BY Region;

// Report 3: per-user engagement joined with per-user event counts.
UserClicks = SELECT UserId,Sum(C) AS Clicks FROM Sessions GROUP BY UserId;
UserEvents = SELECT UserId,Sum(N) AS Events FROM Sessions GROUP BY UserId;
Engagement = SELECT UserClicks.UserId,Clicks,Events
             FROM UserClicks, UserEvents
             WHERE UserClicks.UserId = UserEvents.UserId;

// Report 4: an analyst re-wrote the regional aggregation from scratch —
// textually identical to `Regional`, found by expression fingerprints.
Health = SELECT Region,Sum(C) AS Clicks,Sum(N) AS Events
         FROM Sessions GROUP BY Region;
Alerts = SELECT Region,Clicks FROM Health WHERE Events > 100;

OUTPUT TopQueries TO "top_queries.out";
OUTPUT Regional TO "regional.out";
OUTPUT Engagement TO "engagement.out";
OUTPUT Alerts TO "alerts.out";
"""


def main() -> None:
    catalog = Catalog()
    catalog.register_file(
        "clicks.log",
        [
            ("UserId", ColumnType.INT),
            ("Query", ColumnType.STRING),
            ("Region", ColumnType.INT),
            ("Latency", ColumnType.INT),
            ("Clicks", ColumnType.INT),
        ],
        rows=200_000_000,
        ndv={"UserId": 2_000_000, "Query": 500_000, "Region": 40,
             "Latency": 5_000, "Clicks": 50},
    )
    config = OptimizerConfig(cost_params=CostParams(machines=50))

    conventional = optimize_script(SCRIPT, catalog, config, exploit_cse=False)
    extended = optimize_script(SCRIPT, catalog, config, exploit_cse=True)
    details = extended.details

    print("=== Common subexpressions found (Algorithm 1) ===")
    print(f"shared groups:        {len(details.report.shared_groups)}")
    print(f"explicitly shared:    {len(details.report.explicit_shared)}")
    print(f"textual dups merged:  {len(details.report.merged)}")
    print()

    print("=== LCAs and phase-2 rounds ===")
    for shared_gid, lca_gid in sorted(details.propagation.lca.items()):
        consumers = sorted(details.propagation.consumers[shared_gid])
        print(f"shared group #{shared_gid}: consumers {consumers}, "
              f"LCA group #{lca_gid}")
    print(f"rounds evaluated: {details.engine.stats.rounds}")
    print()

    saving = 100 * (1 - extended.cost / conventional.cost)
    print("=== Estimated costs ===")
    print(f"conventional: {conventional.cost:>16,.0f}")
    print(f"with CSE:     {extended.cost:>16,.0f}   ({saving:.0f}% lower, "
          f"plan from phase {details.chosen_phase})")
    print()
    print("=== Chosen plan ===")
    print(extended.plan.pretty())


if __name__ == "__main__":
    main()
