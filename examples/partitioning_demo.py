"""Figure 1(b): why repartitioning on {B} can serve everyone.

Walks through the property algebra at the heart of the paper: a grouping
consumer's partitioning requirement is a *range* of column sets, data
hash-partitioned on a subset is partitioned on every superset, and the
history expansion of Section V enumerates the concrete layouts phase 2
can enforce.

    python examples/partitioning_demo.py
"""

from repro.cse.history import PropertyHistory
from repro.plan.properties import (
    Partitioning,
    PartitioningReq,
    ReqProps,
)


def main() -> None:
    print("=== The subset rule (Figure 1(b)) ===")
    requirement = PartitioningReq.grouping({"A", "B", "C"})
    print(f"grouping on (A,B,C) requires partitioning in the range "
          f"{requirement}")
    for cols in ({"A", "B", "C"}, {"B"}, {"A", "C"}, {"D"}, {"B", "D"}):
        layout = Partitioning.hashed(cols)
        verdict = "satisfies" if requirement.is_satisfied_by(layout) else \
            "does NOT satisfy"
        print(f"  hash({','.join(sorted(cols))}) {verdict} it")
    print()

    print("=== Competing consumers (script S1) ===")
    req_r1 = PartitioningReq.grouping({"A", "B"})
    req_r2 = PartitioningReq.grouping({"B", "C"})
    print(f"consumer R1 (GROUP BY A,B) requires {req_r1}")
    print(f"consumer R2 (GROUP BY B,C) requires {req_r2}")
    for cols in ({"A", "B"}, {"B", "C"}, {"B"}):
        layout = Partitioning.hashed(cols)
        both = req_r1.is_satisfied_by(layout) and req_r2.is_satisfied_by(layout)
        tag = "BOTH consumers" if both else "only one consumer"
        print(f"  hash({','.join(sorted(cols))}) serves {tag}")
    print("→ only a subset of {B} reconciles the two requirements; a "
          "conventional, locally-optimising pass never picks it.")
    print()

    print("=== The property history of the shared group (Section V) ===")
    history = PropertyHistory()
    history.record_requirement(ReqProps(req_r1))
    history.record_requirement(ReqProps(req_r2))
    print("recorded entries (expanded to concrete layouts):")
    for entry in history.entries:
        count = history.satisfaction_count(entry)
        print(f"  {entry}  — satisfies {count} of 2 recorded requirements")
    print()
    print("ranked for phase 2 (most promising first):")
    for entry in history.ranked_entries():
        print(f"  {entry}")


if __name__ == "__main__":
    main()
