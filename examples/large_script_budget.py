"""Large scripts and the Section VIII techniques.

Generates the LS1-shaped script (101 operators, 4 shared groups),
optimizes it under increasing round budgets, and compares the round
strategies of Section VIII: cartesian baseline, independent-group
exploitation (VIII-A), and promising-first ranking (VIII-B/C).  The
budget mechanism is *anytime*: every run returns a valid plan, and more
rounds only ever improve it.

    python examples/large_script_budget.py
"""

import time

from repro import optimize_script
from repro.cse.large_scripts import round_plans
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.workloads.large_scripts import make_large_script


def optimize(text, catalog, **kwargs):
    config = OptimizerConfig(cost_params=CostParams(machines=25), **kwargs)
    start = time.perf_counter()
    result = optimize_script(text, catalog, config)
    elapsed = time.perf_counter() - start
    return result, elapsed


def main() -> None:
    text, catalog, spec = make_large_script("LS1")
    print(f"generated {spec.name}: {spec.operator_count()} operators, "
          f"{len(spec.shared_consumers)} shared groups "
          f"(consumers {spec.shared_consumers})\n")

    baseline, _ = optimize(text, catalog, max_rounds=0)
    print(f"no re-optimization (phase 1 only): cost {baseline.cost:,.0f}\n")

    print("=== Anytime behaviour: cost vs round budget ===")
    print(f"{'rounds':>8}{'cost':>18}{'saving':>9}{'time':>8}")
    for budget in (1, 2, 4, 8, 16, None):
        result, elapsed = optimize(text, catalog, max_rounds=budget)
        used = result.details.engine.stats.rounds
        saving = 100 * (1 - result.cost / baseline.cost)
        label = "all" if budget is None else str(budget)
        print(f"{label:>8}{result.cost:>18,.0f}{saving:>8.1f}%"
              f"{elapsed:>7.2f}s")
    print()

    print("=== Round strategies (Section VIII) ===")
    full, t_full = optimize(text, catalog, exploit_independence=False,
                            rank_shared_groups=False, rank_properties=False)
    smart, t_smart = optimize(text, catalog)
    print(f"cartesian baseline : {full.details.engine.stats.rounds} rounds, "
          f"cost {full.cost:,.0f}, {t_full:.2f}s")
    print(f"VIII-A/B/C enabled : {smart.details.engine.stats.rounds} rounds, "
          f"cost {smart.cost:,.0f}, {t_smart:.2f}s")
    print()

    print("=== Per-LCA round plans (predicted) ===")
    for lca, plan in sorted(round_plans(smart.details.engine).items()):
        print(f"LCA group #{lca}: units {plan.units}, "
              f"{plan.planned_rounds} rounds "
              f"(cartesian would be {plan.cartesian_equivalent})")


if __name__ == "__main__":
    main()
