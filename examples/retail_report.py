"""Retail analytics: statistics from data, joins, CSE, sorted reports.

The closest thing to a production workflow the simulator supports:

1. generate a star-schema dataset (sales facts, customer and product
   dimensions, skewed quantities);
2. collect exact statistics — including equi-depth histograms — from
   the data itself (``register_data``);
3. optimize a five-report script whose queries share a pre-aggregated,
   dimension-enriched fact table (plus a copy-pasted duplicate query
   the fingerprint step finds);
4. execute on the simulated cluster, verify against the naive oracle,
   and print the per-report results.

    python examples/retail_report.py
"""

from repro.api import optimize_script
from repro.exec import Cluster, PlanExecutor
from repro.naive import NaiveEvaluator
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.optimizer.explain import cost_breakdown
from repro.plan.expressions import BinaryOp
from repro.scope.compiler import compile_script
from repro.workloads.retail import REPORT_SCRIPT, make_retail_catalog

MACHINES = 4


def main() -> None:
    catalog, data = make_retail_catalog(seed=11)
    sales = catalog.lookup("sales.log")
    print(f"collected statistics from data: {sales.rows:,} sales rows, "
          f"ndv(CustId)={sales.ndv_of('CustId')}, "
          f"{len(sales.histograms)} histograms")
    qty_hist = sales.histograms["Qty"]
    print(f"histogram says P(Qty > 40) = "
          f"{qty_hist.selectivity(BinaryOp.GT, 40):.3f} "
          f"(the magic-constant default would be 0.333)\n")

    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    conventional = optimize_script(REPORT_SCRIPT, catalog, config,
                                   exploit_cse=False)
    extended = optimize_script(REPORT_SCRIPT, catalog, config)
    report = extended.details.report
    print(f"common subexpressions: {len(report.shared_groups)} shared "
          f"groups ({len(report.merged)} textual duplicate(s) merged)")
    print(f"estimated cost: {conventional.cost:,.0f} -> {extended.cost:,.0f}")
    for category, value in sorted(cost_breakdown(extended.plan).items(),
                                  key=lambda kv: -kv[1]):
        print(f"  {category:<10}{value:>14,.0f}")
    print()

    cluster = Cluster(machines=MACHINES)
    for path, rows in data.items():
        cluster.load_file(path, rows)
    executor = PlanExecutor(cluster, validate=True)
    outputs = executor.execute(extended.plan)

    expected = NaiveEvaluator(data).run(compile_script(REPORT_SCRIPT, catalog))
    assert all(
        outputs[path].sorted_rows() == rows for path, rows in expected.items()
    ), "optimized plan diverged from the reference evaluation"

    print("=== reports (verified against the naive oracle) ===")
    for path in sorted(outputs):
        data_out = outputs[path]
        print(f"{path}: {data_out.total_rows()} rows")
        for row in data_out.sorted_rows()[:3]:
            print(f"   {row}")
    print("\n--- execution metrics ---")
    print(executor.metrics.summary())


if __name__ == "__main__":
    main()
