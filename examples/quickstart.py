"""Quickstart: the paper's motivating script S1, end to end.

Runs the script from Section I of the paper through both optimizers,
prints the two plans of Figure 8, executes them on the simulated
cluster, and verifies they produce identical results.

    python examples/quickstart.py
"""

from repro import Catalog, ColumnType, optimize_script
from repro.exec import Cluster, PlanExecutor
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.workloads.datagen import generate_for_catalog

SCRIPT = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) AS S1 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
"""

MACHINES = 4


def main() -> None:
    # 1. Register the input file and its statistics in the catalog.
    catalog = Catalog()
    catalog.register_file(
        "test.log",
        [(name, ColumnType.INT) for name in ("A", "B", "C", "D")],
        rows=20_000,
        ndv={"A": 10, "B": 8, "C": 12, "D": 500},
    )
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))

    # 2. Optimize conventionally and with common-subexpression support.
    conventional = optimize_script(SCRIPT, catalog, config, exploit_cse=False)
    extended = optimize_script(SCRIPT, catalog, config, exploit_cse=True)

    print("=== Conventional plan (Figure 8(a): pipeline runs twice) ===")
    print(conventional.plan.pretty())
    print("=== CSE plan (Figure 8(b): shared spool, one repartition) ===")
    print(extended.plan.pretty())
    saving = 100 * (1 - extended.cost / conventional.cost)
    print(f"estimated cost: {conventional.cost:,.0f} -> {extended.cost:,.0f} "
          f"({saving:.0f}% lower)\n")

    # 3. Execute both plans on the simulated cluster and compare.
    files = generate_for_catalog(catalog, seed=1)
    results = {}
    for label, plan in (("conventional", conventional.plan),
                        ("cse", extended.plan)):
        cluster = Cluster(machines=MACHINES)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        executor = PlanExecutor(cluster, validate=True)
        outputs = executor.execute(plan)
        results[label] = {
            path: data.sorted_rows() for path, data in outputs.items()
        }
        print(f"--- measured execution ({label}) ---")
        print(executor.metrics.summary())
        print()

    assert results["conventional"] == results["cse"]
    print("both plans produced identical results "
          f"({sum(len(r) for r in results['cse'].values())} output rows)")


if __name__ == "__main__":
    main()
