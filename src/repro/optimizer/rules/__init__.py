"""Optimizer rules: logical transformations and physical implementations."""

from .transformation import (
    DEFAULT_RULES,
    MergeConsecutiveFilters,
    PushFilterBelowJoin,
    PushFilterThroughProject,
    SplitGroupBy,
    TransformationRule,
)
from .implementation import Candidate, enumerate_implementations

__all__ = [
    "Candidate",
    "DEFAULT_RULES",
    "MergeConsecutiveFilters",
    "PushFilterBelowJoin",
    "PushFilterThroughProject",
    "SplitGroupBy",
    "TransformationRule",
    "enumerate_implementations",
]
