"""Physical implementation rules.

For a logical group expression and a set of required properties, these
rules enumerate :class:`Candidate` physical operators together with the
required properties of their children — the paper's ``DetChildProp``
(Algorithm 2, line 12).  A candidate may carry a *validator* re-checking
its real preconditions against the children's delivered properties
(``PropertySatisfied`` in the paper), which matters in phase 2 where a
child's requirement can be overridden by CSE enforcement.

Requirement derivation follows the SCOPE conventions:

* a grouping consumer on keys ``K`` requires its input partitioned on
  the range ``[∅, K]`` and sorted on some permutation of ``K``
  (StreamAgg) or not at all (HashAgg);
* co-partitioned joins require *exact* matching partitionings on the
  two sides (a range would let the sides pick different subsets and
  break co-partitioning);
* interesting sort orders are propagated: if the parent wants a sort
  whose columns are grouping keys, the StreamAgg picks a key permutation
  extending the parent's order — this is what makes Figure 8's
  ``Sort (B,A,C)`` (instead of ``(A,B,C)``) emerge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ...plan.logical import (
    GroupByMode,
    LogicalExtract,
    LogicalTopN,
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOutput,
    LogicalProject,
    LogicalSequence,
    LogicalSpool,
    LogicalUnionAll,
)
from ...plan.expressions import ColumnRef
from ...plan.physical import (
    PhysBroadcastJoin,
    PhysPassThrough,
    PhysExtract,
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysicalOp,
    PhysicalPlan,
    PhysMergeJoin,
    PhysOutput,
    PhysProject,
    PhysSequence,
    PhysSpool,
    PhysStreamAgg,
    PhysTopN,
    PhysUnionAll,
)
from ...plan.properties import (
    PartitioningReq,
    PartitionKind,
    PartReqKind,
    ReqProps,
    SortOrder,
)
from ..memo import GroupExpr, Memo

Validator = Callable[[Sequence[PhysicalPlan]], bool]


@dataclass
class Candidate:
    """One physical alternative: operator + per-child requirements."""

    op: PhysicalOp
    child_gids: Tuple[int, ...]
    child_reqs: Tuple[ReqProps, ...]
    validator: Optional[Validator] = None


ANY = ReqProps.anything()


def enumerate_implementations(
    memo: Memo, expr: GroupExpr, req: ReqProps
) -> Iterator[Candidate]:
    """Yield the physical candidates for ``expr`` under requirement ``req``."""
    op = expr.op
    if isinstance(op, LogicalExtract):
        yield Candidate(
            PhysExtract(op.file_id, op.path, op.extractor, op.schema), (), ()
        )
    elif isinstance(op, LogicalFilter):
        yield Candidate(PhysFilter(op.predicate), expr.children, (req,))
    elif isinstance(op, LogicalProject):
        yield from _project_candidates(op, expr, req)
    elif isinstance(op, LogicalGroupBy):
        yield from _group_by_candidates(op, expr, req)
    elif isinstance(op, LogicalJoin):
        yield from _join_candidates(memo, op, expr, req)
    elif isinstance(op, LogicalTopN):
        yield from _top_n_candidates(op, expr, req)
    elif isinstance(op, LogicalSpool):
        yield Candidate(PhysSpool(), expr.children, (req,))
        # Sharing stays cost-based: recomputing per consumer is an
        # alternative the optimizer may prefer for cheap intermediates.
        yield Candidate(PhysPassThrough(), expr.children, (req,))
    elif isinstance(op, LogicalOutput):
        if op.sort_columns:
            # A globally sorted output, two ways: gather-merge onto one
            # writer (serial), or range-partition + per-partition sort
            # (parallel sorted writers; the range layout makes the
            # concatenation of partitions globally ordered).
            yield Candidate(
                PhysOutput(op.path, op.sort_columns),
                expr.children,
                (ReqProps(PartitioningReq.serial(),
                          SortOrder(op.sort_columns)),),
            )
            yield Candidate(
                PhysOutput(op.path, op.sort_columns),
                expr.children,
                (ReqProps(PartitioningReq.range_sorted(op.sort_columns),
                          SortOrder(op.sort_columns)),),
            )
        else:
            yield Candidate(PhysOutput(op.path), expr.children, (ANY,))
    elif isinstance(op, LogicalSequence):
        yield Candidate(
            PhysSequence(len(expr.children)),
            expr.children,
            tuple(ANY for _ in expr.children),
        )
    elif isinstance(op, LogicalUnionAll):
        yield Candidate(
            PhysUnionAll(len(expr.children)),
            expr.children,
            tuple(ANY for _ in expr.children),
        )
    else:  # pragma: no cover - exhaustive over the logical algebra
        raise TypeError(f"no implementation rule for {type(op).__name__}")


# ---------------------------------------------------------------------------
# Project
# ---------------------------------------------------------------------------


def _project_candidates(op: LogicalProject, expr: GroupExpr,
                        req: ReqProps) -> Iterator[Candidate]:
    """Translate the requirement through the projection when possible."""
    inverse = {}
    for item in op.exprs:
        if isinstance(item.expr, ColumnRef) and item.alias not in inverse:
            inverse[item.alias] = item.expr.name

    preq = req.partitioning
    if preq.kind is PartReqKind.RANGE:
        if all(c in inverse for c in preq.lo):
            hi = frozenset(inverse[c] for c in preq.hi if c in inverse)
            lo = frozenset(inverse[c] for c in preq.lo)
            if lo <= hi and hi:
                child_preq = PartitioningReq.range(lo, hi)
            else:
                child_preq = PartitioningReq.none()
        else:
            child_preq = PartitioningReq.none()
    elif preq.kind is PartReqKind.RANGE_SORTED:
        if all(c in inverse for c in preq.sorted_order):
            child_preq = PartitioningReq.range_sorted(
                inverse[c] for c in preq.sorted_order
            )
        else:
            child_preq = PartitioningReq.none()
    else:
        child_preq = preq

    order: List[str] = []
    for col in req.sort_order.columns:
        if col not in inverse:
            break
        order.append(inverse[col])
    translated_fully = len(order) == len(req.sort_order.columns)
    child_sort = SortOrder(tuple(order)) if translated_fully else SortOrder()

    child_req = ReqProps(child_preq, child_sort)
    yield Candidate(PhysProject(op.exprs), expr.children, (child_req,))


# ---------------------------------------------------------------------------
# GroupBy
# ---------------------------------------------------------------------------


def _key_orders(keys: Tuple[str, ...], req: ReqProps) -> List[Tuple[str, ...]]:
    """Interesting sort permutations of the grouping keys.

    Always includes the keys as written; additionally, when the parent's
    required order is a sequence of grouping keys, an order extending it
    (so the aggregation's output satisfies the parent without a sort).
    """
    orders = [tuple(keys)]
    want = req.sort_order.columns
    if want and set(want) <= set(keys) and len(set(want)) == len(want):
        extended = tuple(want) + tuple(k for k in keys if k not in want)
        if extended not in orders:
            orders.append(extended)
    return orders


def _agg_child_partitioning(
    preq: PartitioningReq, keys: Tuple[str, ...]
) -> Optional[PartitioningReq]:
    """Child partitioning requirement of a FULL/FINAL aggregation.

    The aggregation needs its input partitioned on a subset of the keys
    (range ``[∅, keys]``); since it preserves partitioning, the child's
    layout must *also* satisfy the parent requirement.  Returns the
    intersection, or ``None`` when it is empty (the enforcer path covers
    that case by repartitioning above the aggregation).
    """
    if not keys:
        # Scalar aggregate: everything must be on one machine.
        if preq.kind in (PartReqKind.RANGE, PartReqKind.RANGE_SORTED):
            return None
        return PartitioningReq.serial()
    key_set = frozenset(keys)
    if preq.kind is PartReqKind.NONE:
        return PartitioningReq.grouping(keys)
    if preq.kind is PartReqKind.SERIAL:
        return PartitioningReq.serial()
    if preq.kind is PartReqKind.RANGE_SORTED:
        # The aggregation preserves a range layout only if the boundary
        # columns are grouping keys; require the longest usable prefix.
        prefix = []
        for col in preq.sorted_order:
            if col not in key_set:
                break
            prefix.append(col)
        if not prefix:
            return None
        return PartitioningReq.range_sorted(prefix)
    hi = preq.hi & key_set
    if not preq.lo <= hi or not hi:
        return None
    return PartitioningReq.range(preq.lo, hi)


def _stream_agg_validator(op: PhysStreamAgg) -> Validator:
    def validate(children: Sequence[PhysicalPlan]) -> bool:
        child = children[0]
        if not child.props.sort_order.satisfies(SortOrder(op.key_order)):
            return False
        if op.mode is not GroupByMode.LOCAL:
            return child.props.partitioning.partitioned_on(op.key_order) or (
                not op.key_order
                and child.props.partitioning.kind is PartitionKind.SERIAL
            )
        return True

    return validate


def _hash_agg_validator(op: PhysHashAgg) -> Validator:
    def validate(children: Sequence[PhysicalPlan]) -> bool:
        child = children[0]
        if op.mode is GroupByMode.LOCAL:
            return True
        if not op.keys:
            return child.props.partitioning.kind is PartitionKind.SERIAL
        return child.props.partitioning.partitioned_on(op.keys)

    return validate


def _local_agg_child_partitioning(
    preq: PartitioningReq, keys: Tuple[str, ...]
) -> PartitioningReq:
    """Child partitioning requirement of a LOCAL (per-partition) agg.

    A local aggregation imposes no partitioning of its own; it merely
    passes the parent's requirement through, restricted to columns that
    survive (the grouping keys).  An untranslatable requirement degrades
    to "no requirement" — the enforcer path repartitions above.
    """
    key_set = frozenset(keys)
    if preq.kind is PartReqKind.RANGE_SORTED:
        prefix = []
        for col in preq.sorted_order:
            if col not in key_set:
                break
            prefix.append(col)
        if prefix:
            return PartitioningReq.range_sorted(prefix)
        return PartitioningReq.none()
    if preq.kind is not PartReqKind.RANGE:
        return preq
    hi = preq.hi & key_set
    if hi and preq.lo <= hi:
        return PartitioningReq.range(preq.lo, hi)
    return PartitioningReq.none()


def _group_by_candidates(op: LogicalGroupBy, expr: GroupExpr,
                         req: ReqProps) -> Iterator[Candidate]:
    if op.mode is GroupByMode.LOCAL:
        child_preq = _local_agg_child_partitioning(req.partitioning, op.keys)
    else:
        child_preq = _agg_child_partitioning(req.partitioning, op.keys)
        if child_preq is None:
            return

    for key_order in _key_orders(op.keys, req):
        stream = PhysStreamAgg(key_order, op.aggregates, op.mode)
        child_req = ReqProps(child_preq, SortOrder(key_order))
        yield Candidate(
            stream, expr.children, (child_req,), _stream_agg_validator(stream)
        )

    hash_agg = PhysHashAgg(op.keys, op.aggregates, op.mode)
    yield Candidate(
        hash_agg,
        expr.children,
        (ReqProps(child_preq, SortOrder()),),
        _hash_agg_validator(hash_agg),
    )


def _top_n_candidates(op: LogicalTopN, expr: GroupExpr,
                      req: ReqProps) -> Iterator[Candidate]:
    if op.mode is GroupByMode.LOCAL:
        # Per-partition selection: no requirement of its own; pass the
        # parent's partitioning demand through (restricted to schema
        # columns, which a TopN always preserves).
        child_req = ReqProps(req.partitioning, SortOrder())
        yield Candidate(
            PhysTopN(op.n, op.order_columns, GroupByMode.LOCAL),
            expr.children,
            (child_req,),
        )
        return

    def serial_validator(children: Sequence[PhysicalPlan]) -> bool:
        return children[0].props.partitioning.kind is PartitionKind.SERIAL

    yield Candidate(
        PhysTopN(op.n, op.order_columns, op.mode),
        expr.children,
        (ReqProps.serial(),),
        serial_validator,
    )


# ---------------------------------------------------------------------------
# Join
# ---------------------------------------------------------------------------


def _aligned_right(left_cols, left_keys, right_keys) -> Tuple[str, ...]:
    """Right-side columns corresponding to a set of left join keys."""
    mapping = dict(zip(left_keys, right_keys))
    return tuple(sorted(mapping[c] for c in left_cols))


def _join_partition_choices(op: LogicalJoin, req: ReqProps):
    """Candidate (left cols, right cols) co-partitionings, or serial."""
    choices = []
    full_left = tuple(sorted(set(op.left_keys)))
    choices.append((full_left, _aligned_right(full_left, op.left_keys,
                                              op.right_keys)))
    preq = req.partitioning
    if preq.kind is PartReqKind.RANGE:
        key_set = set(op.left_keys)
        target = preq.hi & key_set
        if target and preq.lo <= target:
            cols = tuple(sorted(target))
            pair = (cols, _aligned_right(cols, op.left_keys, op.right_keys))
            if pair not in choices:
                choices.append(pair)
        if preq.lo and preq.lo <= key_set:
            cols = tuple(sorted(preq.lo))
            pair = (cols, _aligned_right(cols, op.left_keys, op.right_keys))
            if pair not in choices:
                choices.append(pair)
    return choices


def _co_partition_validator(left_keys, right_keys) -> Validator:
    mapping = dict(zip(left_keys, right_keys))

    def validate(children: Sequence[PhysicalPlan]) -> bool:
        left = children[0].props.partitioning
        right = children[1].props.partitioning
        if left.kind is PartitionKind.SERIAL and right.kind is PartitionKind.SERIAL:
            return True
        if left.kind is PartitionKind.HASH and right.kind is PartitionKind.HASH:
            if not left.columns <= set(mapping):
                return False
            return right.columns == frozenset(mapping[c] for c in left.columns)
        return False

    return validate


def _merge_join_validator(op: PhysMergeJoin) -> Validator:
    co_part = _co_partition_validator(op.left_keys, op.right_keys)

    def validate(children: Sequence[PhysicalPlan]) -> bool:
        if not co_part(children):
            return False
        left_ok = children[0].props.sort_order.satisfies(SortOrder(op.left_keys))
        right_ok = children[1].props.sort_order.satisfies(SortOrder(op.right_keys))
        return left_ok and right_ok

    return validate


def _join_key_orders(op: LogicalJoin, req: ReqProps):
    """Interesting merge-join key orders (left order, aligned right order)."""
    orders = [(op.left_keys, op.right_keys)]
    want = req.sort_order.columns
    left_set = set(op.left_keys)
    if want and set(want) <= left_set and len(set(want)) == len(want):
        mapping = dict(zip(op.left_keys, op.right_keys))
        left = tuple(want) + tuple(k for k in op.left_keys if k not in want)
        right = tuple(mapping[k] for k in left)
        if (left, right) not in orders:
            orders.append((left, right))
    return orders


def _join_candidates(memo: Memo, op: LogicalJoin, expr: GroupExpr,
                     req: ReqProps) -> Iterator[Candidate]:
    partition_pairs = list(_join_partition_choices(op, req))

    for left_cols, right_cols in partition_pairs:
        left_preq = PartitioningReq.exact(left_cols)
        right_preq = PartitioningReq.exact(right_cols)

        for left_order, right_order in _join_key_orders(op, req):
            merge = PhysMergeJoin(left_order, right_order, op.kind)
            yield Candidate(
                merge,
                expr.children,
                (
                    ReqProps(left_preq, SortOrder(left_order)),
                    ReqProps(right_preq, SortOrder(right_order)),
                ),
                _merge_join_validator(merge),
            )

        hash_join = PhysHashJoin(op.left_keys, op.right_keys, op.kind)
        yield Candidate(
            hash_join,
            expr.children,
            (ReqProps(left_preq, SortOrder()), ReqProps(right_preq, SortOrder())),
            _co_partition_validator(op.left_keys, op.right_keys),
        )

    # Serial variants (both inputs gathered onto one machine).
    serial = ReqProps.serial()
    merge = PhysMergeJoin(op.left_keys, op.right_keys, op.kind)
    yield Candidate(
        merge,
        expr.children,
        (
            ReqProps(serial.partitioning, SortOrder(op.left_keys)),
            ReqProps(serial.partitioning, SortOrder(op.right_keys)),
        ),
        _merge_join_validator(merge),
    )
    yield Candidate(
        PhysHashJoin(op.left_keys, op.right_keys, op.kind),
        expr.children,
        (serial, serial),
        _co_partition_validator(op.left_keys, op.right_keys),
    )

    # Broadcast: replicate the right side, keep the left side's layout.
    left_schema = memo.group(expr.children[0]).schema
    left_names = set(left_schema.names)
    preq = req.partitioning
    if preq.kind is PartReqKind.RANGE:
        hi = preq.hi & left_names
        if hi and preq.lo <= hi:
            left_req = PartitioningReq.range(preq.lo, hi)
        else:
            left_req = PartitioningReq.none()
    elif preq.kind is PartReqKind.RANGE_SORTED:
        # Only pass the order down if the left side produces it.
        if set(preq.sorted_order) <= left_names:
            left_req = preq
        else:
            left_req = PartitioningReq.none()
    else:
        left_req = preq

    def broadcast_validator(children: Sequence[PhysicalPlan]) -> bool:
        # Replicating onto a serial left side is pointless but harmless;
        # require a parallel-friendly left to keep plans sensible.
        return children[0].props.partitioning.kind is not PartitionKind.SERIAL

    yield Candidate(
        PhysBroadcastJoin(op.left_keys, op.right_keys, op.kind),
        expr.children,
        (ReqProps(left_req, SortOrder()), ANY),
        broadcast_validator,
    )
