"""Logical transformation rules.

Rules rewrite a group expression into logically equivalent alternatives
inside the same group, possibly creating new (deduplicated) groups for
new intermediate relations.  The rule surface is intentionally the one
the paper's plan space needs:

* :class:`SplitGroupBy` is the load-bearing rule — it rewrites a full
  aggregation into a final aggregation over a local (per-partition)
  pre-aggregation, enabling the ``local agg → repartition → global agg``
  shape of every plan in Figure 8;
* the filter rules (merge, push through project, push below join) give
  the logical-exploration step of Algorithm 2 realistic work and are
  exercised by the example workloads.

Each rule implements ``apply(memo, gid, expr, env) -> iterable of new
GroupExpr`` where ``env`` provides statistics derivation for new groups.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ...plan.expressions import (
    Aggregate,
    BinaryExpr,
    BinaryOp,
    ColumnRef,
    Expr,
    NamedExpr,
    conjuncts,
)
from ...plan.logical import (
    GroupByMode,
    JoinKind,
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOp,
    LogicalProject,
    LogicalTopN,
)
from ..memo import GroupExpr, Memo


class RuleEnv:
    """Services a rule needs to create new groups with statistics."""

    def __init__(self, memo: Memo, estimator):
        self.memo = memo
        self.estimator = estimator

    def make_group(self, op: LogicalOp, children: Tuple[int, ...]) -> int:
        """Get-or-create a group for ``op`` over ``children`` with stats."""
        schemas = [self.memo.group(c).schema for c in children]
        schema = op.derive_schema(schemas)
        gid = self.memo.get_or_create_group(op, children, schema)
        group = self.memo.group(gid)
        if group.stats is None:
            child_stats = [self.memo.group(c).stats for c in children]
            group.stats = self.estimator.derive(op, child_stats, schema)
        return gid


class TransformationRule:
    """Base class; subclasses are stateless and reusable."""

    name = "rule"

    def apply(self, memo: Memo, gid: int, expr: GroupExpr,
              env: RuleEnv) -> Iterable[GroupExpr]:
        raise NotImplementedError


class SplitGroupBy(TransformationRule):
    """``GB_full(keys)(x)  →  GB_final(keys)(GB_local(keys)(x))``.

    The local stage applies the original aggregates within each
    partition; the final stage merges partial states (SUM of partial
    SUMs/COUNTs, MIN of MINs, ...).  AVG was already decomposed into
    SUM + COUNT by the compiler, so every aggregate is splittable.
    """

    name = "split-groupby"

    def apply(self, memo, gid, expr, env):
        op = expr.op
        if not isinstance(op, LogicalGroupBy) or op.mode is not GroupByMode.FULL:
            return
        local_aggs = tuple(
            Aggregate(a.func.partial_func, a.arg, a.alias) for a in op.aggregates
        )
        merge_aggs = tuple(
            Aggregate(a.func.merge_func, ColumnRef(a.alias), a.alias)
            for a in op.aggregates
        )
        local_op = LogicalGroupBy(op.keys, local_aggs, GroupByMode.LOCAL)
        local_gid = env.make_group(local_op, expr.children)
        final_op = LogicalGroupBy(op.keys, merge_aggs, GroupByMode.FINAL)
        yield GroupExpr(final_op, (local_gid,))


class SplitTopN(TransformationRule):
    """``TopN_full(x)  →  TopN_full(TopN_local(x))``.

    The global top-n is contained in the union of the per-partition
    top-n's, so a local pre-selection shrinks the data crossing the
    gather to at most ``n × partitions`` rows.
    """

    name = "split-topn"

    def apply(self, memo, gid, expr, env):
        op = expr.op
        if not isinstance(op, LogicalTopN) or op.mode is not GroupByMode.FULL:
            return
        local_op = LogicalTopN(op.n, op.order_columns, GroupByMode.LOCAL)
        local_gid = env.make_group(local_op, expr.children)
        # FINAL marks the merged selection (same semantics as FULL) so
        # the rule does not re-split its own output.
        yield GroupExpr(
            LogicalTopN(op.n, op.order_columns, GroupByMode.FINAL),
            (local_gid,),
        )


class MergeConsecutiveFilters(TransformationRule):
    """``Filter(p)(Filter(q)(x))  →  Filter(p AND q)(x)``."""

    name = "merge-filters"

    def apply(self, memo, gid, expr, env):
        if not isinstance(expr.op, LogicalFilter):
            return
        child = memo.group(expr.children[0])
        for child_expr in list(child.exprs):
            if isinstance(child_expr.op, LogicalFilter):
                merged = BinaryExpr(
                    BinaryOp.AND, expr.op.predicate, child_expr.op.predicate
                )
                yield GroupExpr(LogicalFilter(merged), child_expr.children)


class PushFilterThroughProject(TransformationRule):
    """``Filter(p)(Project(es)(x)) → Project(es)(Filter(p')(x))``.

    Applies when every column referenced by ``p`` is a pass-through of
    the projection; ``p'`` is ``p`` with output names substituted by the
    underlying input names.
    """

    name = "push-filter-project"

    def apply(self, memo, gid, expr, env):
        if not isinstance(expr.op, LogicalFilter):
            return
        child = memo.group(expr.children[0])
        for child_expr in list(child.exprs):
            if not isinstance(child_expr.op, LogicalProject):
                continue
            mapping = {}
            for item in child_expr.op.exprs:
                if isinstance(item.expr, ColumnRef):
                    mapping[item.alias] = item.expr.name
            refs = expr.op.predicate.referenced_columns()
            if not refs <= set(mapping):
                continue
            pushed = _substitute(expr.op.predicate, mapping)
            filter_gid = env.make_group(LogicalFilter(pushed), child_expr.children)
            yield GroupExpr(child_expr.op, (filter_gid,))


class CommuteJoin(TransformationRule):
    """``Join(L, R)  →  Project(reorder)(Join(R, L))`` for inner joins.

    Commuting lets the physical rules consider the mirrored build/probe
    and broadcast sides (e.g. replicate a tiny *left* input).  The
    column order of a join output is part of its schema, so the
    commuted join lives in a new group and a reordering projection
    brings its columns back — that projection is what keeps both
    expressions in the same (schema-identical) group.

    LEFT joins do not commute.  The ``left gid < right gid`` guard makes
    the rule fire at most once per join (commuting the commuted join
    would reproduce the original shape ad infinitum otherwise).
    """

    name = "commute-join"

    def apply(self, memo, gid, expr, env):
        op = expr.op
        if not isinstance(op, LogicalJoin) or op.kind is not JoinKind.INNER:
            return
        left_gid, right_gid = expr.children
        if left_gid >= right_gid:
            return
        swapped = LogicalJoin(op.right_keys, op.left_keys, JoinKind.INNER)
        swapped_gid = env.make_group(swapped, (right_gid, left_gid))
        original_order = (
            memo.group(left_gid).schema.names
            + memo.group(right_gid).schema.names
        )
        reorder = LogicalProject(
            tuple(NamedExpr(ColumnRef(name), name) for name in original_order)
        )
        yield GroupExpr(reorder, (swapped_gid,))


class PushFilterBelowJoin(TransformationRule):
    """Push single-side conjuncts of a filter below an inner join."""

    name = "push-filter-join"

    def apply(self, memo, gid, expr, env):
        if not isinstance(expr.op, LogicalFilter):
            return
        child = memo.group(expr.children[0])
        for child_expr in list(child.exprs):
            if not isinstance(child_expr.op, LogicalJoin):
                continue
            left = memo.group(child_expr.children[0])
            right = memo.group(child_expr.children[1])
            left_cols = set(left.schema.names)
            right_cols = set(right.schema.names)
            left_preds: List[Expr] = []
            right_preds: List[Expr] = []
            rest: List[Expr] = []
            is_left_join = child_expr.op.kind is JoinKind.LEFT
            for conj in conjuncts(expr.op.predicate):
                refs = conj.referenced_columns()
                if refs <= left_cols:
                    # Safe for any join kind: unmatched left rows carry
                    # their own columns unchanged.
                    left_preds.append(conj)
                elif refs <= right_cols and not is_left_join:
                    # NOT safe below a LEFT join: filtering the right
                    # input before the join keeps null-padded rows a
                    # WHERE filter would have dropped.
                    right_preds.append(conj)
                else:
                    rest.append(conj)
            if not left_preds and not right_preds:
                continue
            new_left = child_expr.children[0]
            new_right = child_expr.children[1]
            if left_preds:
                new_left = env.make_group(
                    LogicalFilter(_and_all(left_preds)), (new_left,)
                )
            if right_preds:
                new_right = env.make_group(
                    LogicalFilter(_and_all(right_preds)), (new_right,)
                )
            join_expr = GroupExpr(child_expr.op, (new_left, new_right))
            if rest:
                join_gid = env.make_group(child_expr.op, (new_left, new_right))
                yield GroupExpr(LogicalFilter(_and_all(rest)), (join_gid,))
            else:
                yield join_expr


def _and_all(preds: List[Expr]) -> Expr:
    result = preds[0]
    for pred in preds[1:]:
        result = BinaryExpr(BinaryOp.AND, result, pred)
    return result


def _substitute(expr: Expr, mapping) -> Expr:
    """Rewrite column references through an alias mapping."""
    from ...plan.expressions import Literal, NotExpr

    if isinstance(expr, ColumnRef):
        return ColumnRef(mapping.get(expr.name, expr.name))
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, NotExpr):
        return NotExpr(_substitute(expr.operand, mapping))
    if isinstance(expr, BinaryExpr):
        return BinaryExpr(
            expr.op, _substitute(expr.left, mapping), _substitute(expr.right, mapping)
        )
    return expr


DEFAULT_RULES: Tuple[TransformationRule, ...] = (
    SplitGroupBy(),
    SplitTopN(),
    CommuteJoin(),
    MergeConsecutiveFilters(),
    PushFilterThroughProject(),
    PushFilterBelowJoin(),
)
