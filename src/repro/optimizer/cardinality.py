"""Cardinality and distinct-value estimation.

Logical statistics are derived bottom-up per memo group from catalog
statistics, using the standard textbook estimators (uniformity and
independence, capped by input size).  Each group gets a :class:`Stats`
object holding the estimated row count, a per-column NDV map, and the
average row width — everything the cost model needs.

The paper does not modify SCOPE's estimation ("these cost estimation
techniques are not modified in this paper"), so a standard estimator is
the faithful substrate here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..plan.columns import Schema
from ..plan.expressions import (
    AggFunc,
    BinaryExpr,
    BinaryOp,
    ColumnRef,
    Expr,
    Literal,
    NotExpr,
)
from ..plan.logical import (
    GroupByMode,
    JoinKind,
    LogicalExtract,
    LogicalTopN,
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOp,
    LogicalOutput,
    LogicalProject,
    LogicalSequence,
    LogicalSpool,
    LogicalUnionAll,
)
from ..scope.catalog import Catalog
from ..stats.fragments import expr_fingerprint

DEFAULT_SELECTIVITY = 1.0 / 3.0
EQUALITY_DEFAULT_NDV = 100


@dataclass
class Stats:
    """Estimated logical statistics of one relation."""

    rows: float
    ndv: Dict[str, float] = field(default_factory=dict)
    width: float = 8.0
    #: Per-column histograms, carried from the base table through
    #: filters and pass-through projections (an approximation: the
    #: distribution is assumed unchanged by uncorrelated predicates).
    histograms: Dict[str, object] = field(default_factory=dict)
    #: Canonical fingerprint of the fragment these stats describe (see
    #: ``repro.stats.fragments``); keys learned-cardinality corrections.
    fingerprint: Optional[str] = None
    #: True when ``rows`` comes from a published feedback correction
    #: rather than the closed-form estimator.
    corrected: bool = False

    def ndv_of(self, column: str) -> float:
        known = self.ndv.get(column)
        if known is None:
            return max(1.0, min(self.rows, EQUALITY_DEFAULT_NDV))
        return max(1.0, min(known, self.rows))

    def bytes(self) -> float:
        return self.rows * self.width

    def scaled(self, factor: float) -> "Stats":
        """Stats after keeping a ``factor`` fraction of the rows.

        NDVs shrink with the standard "balls in bins" damping: reducing
        rows by ``factor`` cannot reduce an NDV below the new row count.
        The fingerprint is intentionally dropped: a scaled copy no
        longer describes the fingerprinted fragment.
        """
        rows = max(1.0, self.rows * factor)
        ndv = {c: min(v, rows) for c, v in self.ndv.items()}
        return Stats(rows, ndv, self.width, dict(self.histograms))

    def clone(self) -> "Stats":
        return Stats(self.rows, dict(self.ndv), self.width,
                     dict(self.histograms), self.fingerprint, self.corrected)

    def with_rows(self, rows: float) -> "Stats":
        """Same fragment with a corrected row count; NDVs re-capped."""
        rows = max(1.0, float(rows))
        ndv = {c: min(v, rows) for c, v in self.ndv.items()}
        return Stats(rows, ndv, self.width, dict(self.histograms),
                     self.fingerprint, corrected=True)


class CardinalityEstimator:
    """Derives group statistics bottom-up.

    Parameters
    ----------
    catalog:
        Source of base-file statistics.
    machines:
        Cluster size; needed to bound the output of LOCAL (per-partition)
        pre-aggregations, whose row count is at most
        ``group_count × partitions``.
    corrections:
        Optional published :class:`repro.stats.store.CorrectionSet`
        (anything with ``rows_for(fingerprint)``); when a derived
        fragment's fingerprint has an active correction, its measured
        row count overrides the closed-form estimate.
    """

    def __init__(self, catalog: Catalog, machines: int = 100,
                 corrections=None):
        self._catalog = catalog
        self.machines = machines
        self.corrections = corrections

    # -- dispatch ---------------------------------------------------------

    def derive(self, op: LogicalOp, child_stats: Sequence[Stats],
               schema: Schema) -> Stats:
        """Estimate the output stats of ``op`` over ``child_stats``.

        Besides the row/NDV estimate, this stamps the fragment
        fingerprint onto the result and applies any active learned
        correction for it.  ``Spool``/``Output`` are cardinality- and
        fingerprint-transparent: they share their input's ``Stats``
        object, so the spool vertex and the computing vertex agree.
        """
        if isinstance(op, (LogicalSpool, LogicalOutput)):
            return child_stats[0]
        if isinstance(op, LogicalSequence):
            return Stats(rows=0.0, ndv={}, width=0.0)
        stats = self._derive_base(op, child_stats, schema)
        # Per-operator estimators may return a child's Stats object
        # verbatim (e.g. TopN whose limit exceeds the input); clone
        # before stamping so the child group's stats stay untouched.
        if any(stats is child for child in child_stats):
            stats = stats.clone()
        stats.fingerprint = expr_fingerprint(
            op, [child.fingerprint for child in child_stats]
        )
        stats.corrected = False
        if self.corrections is not None:
            corrected = self.corrections.rows_for(stats.fingerprint)
            if corrected is not None and corrected != stats.rows:
                stats = stats.with_rows(corrected)
        return stats

    def _derive_base(self, op: LogicalOp, child_stats: Sequence[Stats],
                     schema: Schema) -> Stats:
        if isinstance(op, LogicalExtract):
            return self._extract(op)
        if isinstance(op, LogicalFilter):
            return self._filter(op, child_stats[0])
        if isinstance(op, LogicalProject):
            return self._project(op, child_stats[0], schema)
        if isinstance(op, LogicalGroupBy):
            return self._group_by(op, child_stats[0], schema)
        if isinstance(op, LogicalJoin):
            return self._join(op, child_stats[0], child_stats[1], schema)
        if isinstance(op, LogicalUnionAll):
            return self._union(child_stats)
        if isinstance(op, LogicalTopN):
            return self._top_n(op, child_stats[0])
        raise TypeError(f"no estimator for {type(op).__name__}")

    # -- per-operator estimators --------------------------------------------

    def _extract(self, op: LogicalExtract) -> Stats:
        stats = self._catalog.lookup(op.path)
        ndv = {c: float(stats.ndv_of(c)) for c in op.schema.names}
        histograms = {
            c: h for c, h in stats.histograms.items() if c in op.schema
        }
        return Stats(float(stats.rows), ndv,
                     float(op.schema.row_width_bytes()), histograms)

    def _filter(self, op: LogicalFilter, child: Stats) -> Stats:
        return child.scaled(self._selectivity(op.predicate, child))

    def _selectivity(self, pred: Expr, child: Stats) -> float:
        if isinstance(pred, BinaryExpr):
            if pred.op is BinaryOp.AND:
                return self._selectivity(pred.left, child) * self._selectivity(
                    pred.right, child
                )
            if pred.op is BinaryOp.OR:
                a = self._selectivity(pred.left, child)
                b = self._selectivity(pred.right, child)
                return min(1.0, a + b - a * b)
            if pred.op.is_comparison:
                estimate = self._histogram_selectivity(pred, child)
                if estimate is not None:
                    return estimate
            if pred.op is BinaryOp.EQ:
                column = _single_column(pred)
                if column is not None:
                    return 1.0 / child.ndv_of(column)
                return DEFAULT_SELECTIVITY
            if pred.op is BinaryOp.NE:
                column = _single_column(pred)
                if column is not None:
                    return 1.0 - 1.0 / child.ndv_of(column)
                return 1.0 - DEFAULT_SELECTIVITY
            if pred.op.is_comparison:
                return DEFAULT_SELECTIVITY
        if isinstance(pred, NotExpr):
            return max(0.0, 1.0 - self._selectivity(pred.operand, child))
        return DEFAULT_SELECTIVITY

    def _histogram_selectivity(self, pred: BinaryExpr,
                               child: Stats) -> Optional[float]:
        """Histogram-based estimate for ``col CMP literal``, if possible."""
        column_side, literal_side, op = None, None, pred.op
        if isinstance(pred.left, ColumnRef) and isinstance(pred.right, Literal):
            column_side, literal_side = pred.left, pred.right
        elif isinstance(pred.right, ColumnRef) and isinstance(pred.left, Literal):
            # Mirror the comparison: k < col  ≡  col > k, etc.
            mirror = {
                BinaryOp.LT: BinaryOp.GT,
                BinaryOp.LE: BinaryOp.GE,
                BinaryOp.GT: BinaryOp.LT,
                BinaryOp.GE: BinaryOp.LE,
            }
            column_side, literal_side = pred.right, pred.left
            op = mirror.get(op, op)
        if column_side is None:
            return None
        value = literal_side.value
        if not isinstance(value, (int, float)):
            return None
        histogram = child.histograms.get(column_side.name)
        if histogram is None:
            return None
        return histogram.selectivity(op, float(value))

    def _project(self, op: LogicalProject, child: Stats, schema: Schema) -> Stats:
        ndv: Dict[str, float] = {}
        histograms: Dict[str, object] = {}
        for item in op.exprs:
            if isinstance(item.expr, ColumnRef):
                ndv[item.alias] = child.ndv_of(item.expr.name)
                source_hist = child.histograms.get(item.expr.name)
                if source_hist is not None:
                    histograms[item.alias] = source_hist
            else:
                refs = item.expr.referenced_columns()
                if refs:
                    # A function of its inputs has at most the product of
                    # their NDVs, at most the row count.
                    prod = 1.0
                    for ref in refs:
                        prod = min(child.rows, prod * child.ndv_of(ref))
                    ndv[item.alias] = prod
                else:
                    ndv[item.alias] = 1.0
        return Stats(child.rows, ndv, float(schema.row_width_bytes()),
                     histograms)

    def _group_count(self, keys, child: Stats) -> float:
        if not keys:
            return 1.0
        count = 1.0
        for key in keys:
            count = min(child.rows, count * child.ndv_of(key))
        return count

    def _group_by(self, op: LogicalGroupBy, child: Stats, schema: Schema) -> Stats:
        groups = self._group_count(op.keys, child)
        if op.mode is GroupByMode.LOCAL:
            # A per-partition pre-aggregation emits at most one row per
            # (group, partition) and never more than its input.
            rows = min(child.rows, groups * self.machines)
        else:
            rows = groups
        ndv: Dict[str, float] = {}
        for key in op.keys:
            ndv[key] = min(child.ndv_of(key), rows)
        for agg in op.aggregates:
            if agg.func is AggFunc.COUNT:
                ndv[agg.alias] = min(rows, math.sqrt(max(rows, 1.0)))
            else:
                ndv[agg.alias] = min(rows, max(1.0, rows / 2.0))
        return Stats(rows, ndv, float(schema.row_width_bytes()))

    def _join(self, op: LogicalJoin, left: Stats, right: Stats,
              schema: Schema) -> Stats:
        denom = 1.0
        for lk, rk in zip(op.left_keys, op.right_keys):
            denom *= max(left.ndv_of(lk), right.ndv_of(rk))
        rows = max(1.0, left.rows * right.rows / max(denom, 1.0))
        if op.kind is JoinKind.LEFT:
            # Every left row survives, matched or not.
            rows = max(rows, left.rows)
        ndv = {}
        for col, val in left.ndv.items():
            ndv[col] = min(val, rows)
        for col, val in right.ndv.items():
            ndv.setdefault(col, min(val, rows))
        return Stats(rows, ndv, float(schema.row_width_bytes()))

    def _top_n(self, op: LogicalTopN, child: Stats) -> Stats:
        if op.mode is GroupByMode.LOCAL:
            limit = float(op.n * self.machines)
        else:  # FULL and FINAL both produce the global answer
            limit = float(op.n)
        if child.rows <= limit:
            return child
        return child.scaled(limit / child.rows)

    def _union(self, child_stats: Sequence[Stats]) -> Stats:
        rows = sum(s.rows for s in child_stats)
        ndv: Dict[str, float] = {}
        for stats in child_stats:
            for col, val in stats.ndv.items():
                ndv[col] = min(rows, ndv.get(col, 0.0) + val)
        width = child_stats[0].width if child_stats else 8.0
        return Stats(rows, ndv, width)


def _single_column(pred: BinaryExpr) -> Optional[str]:
    """Column name of a ``col = literal`` (or ``literal = col``) predicate."""
    if isinstance(pred.left, ColumnRef) and isinstance(pred.right, Literal):
        return pred.left.name
    if isinstance(pred.right, ColumnRef) and isinstance(pred.left, Literal):
        return pred.right.name
    return None


def annotate_memo(memo, estimator: CardinalityEstimator) -> None:
    """Fill ``group.stats`` for every live group, bottom-up.

    Uses each group's *initial* expression, mirroring how the fingerprint
    step works on the pre-exploration memo.  Rule-created groups get
    stats at creation time via :func:`stats_for_expr`.
    """
    def fill(gid: int) -> Stats:
        group = memo.group(gid)
        if group.stats is not None:
            return group.stats
        expr = group.initial_expr
        child_stats = [fill(c) for c in expr.children]
        group.stats = estimator.derive(expr.op, child_stats, group.schema)
        return group.stats

    fill(memo.root)


def stats_for_expr(memo, estimator: CardinalityEstimator, op: LogicalOp,
                   children) -> Stats:
    """Stats for a rule-created expression over existing groups."""
    child_stats = [memo.group(c).stats for c in children]
    schema = op.derive_schema([memo.group(c).schema for c in children])
    return estimator.derive(op, child_stats, schema)
