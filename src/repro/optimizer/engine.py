"""The Cascades-style search engine.

Implements the recursive, property-driven group optimization of the
paper:

* :meth:`SearchEngine.optimize_group` is Algorithm 2/4 — winner caching
  per (required properties, enforcement context), phase-1 recording of
  shared-group property histories, and the phase-2 **rounds** at LCA
  groups that re-optimize the sub-DAG once per enforceable combination
  of shared-group layouts;
* :meth:`SearchEngine._log_phys_opt` is Algorithm 5 — logical
  exploration, physical implementation with per-child requirement
  derivation, property-satisfaction checks, and the enforcement override
  when a child is a shared group bound in the current context;
* enforcer operators (repartition / gather-merge / sort) are generated
  as additional alternatives of the group being optimized, which is how
  Figure 8's ``Repartition + SortMerge`` pairs appear.

Winner-cache correctness across phase-2 rounds hinges on the cache key:
it includes the projection of the enforcement context onto the shared
groups reachable from the group being optimized, plus the phase when the
group's subtree contains an LCA (DESIGN.md, decision 1).  Sub-plans not
above any shared group are therefore computed once and reused by every
round.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..cse.history import HistoryEntry, PropertyHistory
from ..obs.tracer import NULL_TRACER
from ..plan.physical import (
    PhysicalOp,
    PhysicalPlan,
    PhysMerge,
    PhysRangeRepartition,
    PhysRepartition,
    PhysSort,
)
from ..plan.properties import (
    PartReqKind,
    PhysicalProps,
    ReqProps,
    SortOrder,
)
from ..scope.catalog import Catalog
from .cardinality import CardinalityEstimator
from .cost import CostModel, CostParams
from .memo import Memo
from .rules import DEFAULT_RULES, enumerate_implementations
from .rules.transformation import RuleEnv
from .trace import OptimizerTrace

PHASE_CONVENTIONAL = 1
PHASE_CSE = 2


def _op_columns(op: PhysicalOp) -> set:
    """Columns an enforcer operator references."""
    if isinstance(op, PhysRepartition):
        return set(op.columns) | set(op.merge_sort.columns)
    if isinstance(op, PhysRangeRepartition):
        return set(op.order) | set(op.merge_sort.columns)
    if isinstance(op, PhysSort):
        return set(op.order.columns)
    if isinstance(op, PhysMerge):
        return set(op.merge_sort.columns)
    return set()

ANY = ReqProps.anything()


@dataclass
class OptimizerConfig:
    """Knobs of the optimizer and of the CSE extensions."""

    cost_params: CostParams = field(default_factory=CostParams)
    #: Cap for expanding partition-range requirements into history
    #: entries (Section V; DESIGN.md decision 3).
    history_max_subset: Optional[int] = 4
    #: Wall-clock optimization budget in seconds (None = unlimited); the
    #: paper gives large scripts 30/60 s budgets (Section IX).
    budget_seconds: Optional[float] = None
    #: Hard cap on phase-2 rounds (None = unlimited).
    max_rounds: Optional[int] = None
    #: Section VIII-A: optimize independent shared groups greedily.
    exploit_independence: bool = True
    #: Section VIII-B: order shared groups by repartitioning savings.
    rank_shared_groups: bool = True
    #: Section VIII-C: order history entries by phase-1 win frequency.
    rank_properties: bool = True
    #: Restrict the transformation rules by name (paper, Section III:
    #: earlier optimization phases use fewer rules).  ``None`` = all.
    rule_names: Optional[Tuple[str, ...]] = None
    #: Record search decisions in ``SearchEngine.trace`` (see
    #: ``repro.optimizer.trace``).
    trace: bool = False


class Budget:
    """Wall-clock + round budget shared by an optimization run."""

    def __init__(self, seconds: Optional[float], max_rounds: Optional[int]):
        self._deadline = None if seconds is None else time.monotonic() + seconds
        self._max_rounds = max_rounds
        self.rounds_used = 0

    def allow_round(self) -> bool:
        if self._max_rounds is not None and self.rounds_used >= self._max_rounds:
            return False
        if self._deadline is not None and time.monotonic() > self._deadline:
            return False
        return True

    def charge_round(self) -> None:
        self.rounds_used += 1


@dataclass
class EngineStats:
    """Counters for tests, benchmarks and EXPLAIN output."""

    groups_optimized: int = 0
    candidates_tried: int = 0
    rounds: int = 0
    round_log: List[Tuple[int, Tuple[Tuple[int, HistoryEntry], ...]]] = field(
        default_factory=list
    )
    budget_exhausted: bool = False


EnforceCtx = Dict[int, HistoryEntry]
EMPTY_CTX: EnforceCtx = {}


class SearchEngine:
    """Optimizes one memo.  Create one engine per optimization run."""

    def __init__(self, memo: Memo, catalog: Catalog,
                 config: Optional[OptimizerConfig] = None,
                 corrections=None):
        self.memo = memo
        self.config = config or OptimizerConfig()
        self.cost_model = CostModel(self.config.cost_params)
        self.estimator = CardinalityEstimator(
            catalog, machines=self.config.cost_params.machines,
            corrections=corrections,
        )
        self.rule_env = RuleEnv(memo, self.estimator)
        if self.config.rule_names is None:
            self.rules = DEFAULT_RULES
        else:
            allowed = set(self.config.rule_names)
            self.rules = tuple(r for r in DEFAULT_RULES if r.name in allowed)
            unknown = allowed - {r.name for r in DEFAULT_RULES}
            if unknown:
                raise ValueError(f"unknown transformation rules: {sorted(unknown)}")
        self.stats = EngineStats()
        self.budget = Budget(self.config.budget_seconds, self.config.max_rounds)
        #: LCA gid -> independent sets, attached by the CSE pipeline.
        self.independent_sets: Dict[int, List[FrozenSet[int]]] = {}
        self._shared_reach_cache: Dict[int, FrozenSet[int]] = {}
        self._has_lca_below_cache: Dict[int, bool] = {}
        #: Populated when ``config.trace`` is set.
        self.trace: Optional[OptimizerTrace] = (
            OptimizerTrace() if self.config.trace else None
        )
        #: Span tracer for phase-2 round attribution (see
        #: :meth:`bind_observability`); the null tracer is free.
        self.tracer = NULL_TRACER

    def bind_observability(self, tracer) -> None:
        """Attach a :class:`repro.obs.Tracer` to this engine.

        Phase-2 rounds then record ``optimize.round`` spans, and — when
        ``config.trace`` is also set — the structured
        :class:`~repro.optimizer.trace.TraceEvent` stream is published
        onto the tracer's shared bus instead of a private one, so one
        export carries both.  Must be called before the first
        optimization; rebinding after events were recorded would split
        the stream.
        """
        if not tracer.enabled:
            return
        self.tracer = tracer
        if self.trace is not None and not self.trace.bus.events:
            self.trace.bus = tracer.bus

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def optimize(self, phase: int = PHASE_CONVENTIONAL) -> Optional[PhysicalPlan]:
        """Optimize the memo root under no external requirements."""
        assert self.memo.root is not None
        return self.optimize_group(self.memo.root, ANY, EMPTY_CTX, phase)

    def refresh_cse_annotations(self, independent_sets) -> None:
        """Install the propagation results before phase 2 runs.

        The ``has-LCA-below`` cache was populated during phase 1, when no
        LCA links existed yet; it must be dropped so phase-2 winner keys
        separate from phase-1 ones above the LCAs.
        """
        self.independent_sets = independent_sets
        self._has_lca_below_cache.clear()

    def plan_cost(self, plan: PhysicalPlan) -> float:
        """DAG-aware cost of a finished plan (see CostModel.dag_cost).

        Cached on the plan object itself — an id()-keyed dict would be
        poisoned by CPython reusing addresses of discarded candidates.
        """
        cached = getattr(plan, "_dag_cost", None)
        if cached is None:
            cached = self.cost_model.dag_cost(plan)
            plan._dag_cost = cached
        return cached

    # ------------------------------------------------------------------
    # Algorithm 2 / 4: OptimizeGroup
    # ------------------------------------------------------------------

    def optimize_group(self, gid: int, req: ReqProps, ctx: EnforceCtx,
                       phase: int) -> Optional[PhysicalPlan]:
        group = self.memo.group(gid)
        key = self._winner_key(gid, req, ctx, phase)
        if key in group.winners:
            return group.winners[key]
        self.stats.groups_optimized += 1

        # Algorithm 2 lines 1-3 / Algorithm 4 lines 1-3: record the
        # property history of shared groups during phase 1.
        if phase == PHASE_CONVENTIONAL and group.is_shared:
            if group.history is None:
                group.history = PropertyHistory(self.config.history_max_subset)
            group.history.record_requirement(req)

        pending_lca: List[int] = []
        if phase == PHASE_CSE and group.lca_for:
            pending_lca = [s for s in group.lca_for if s not in ctx]

        if pending_lca:
            plan = self._optimize_with_rounds(gid, req, ctx, pending_lca, phase)
        else:
            plan = self._log_phys_opt(gid, req, ctx, phase)

        group.winners[key] = plan
        if self.trace is not None:
            self.trace.group_optimized(
                gid, req, phase, plan.cost if plan is not None else None
            )

        # Section VIII-C ranking signal: which layout won locally.
        if phase == PHASE_CONVENTIONAL and group.is_shared and plan is not None:
            group.history.note_winner(plan.props)
        return plan

    def _winner_key(self, gid: int, req: ReqProps, ctx: EnforceCtx, phase: int):
        reach = self._shared_reach(gid)
        if ctx:
            relevant = [(g, entry) for g, entry in ctx.items() if g in reach]
            projected = tuple(sorted(relevant, key=lambda item: item[0]))
        else:
            projected = ()
        phase_key = phase if self._has_lca_below(gid) else PHASE_CONVENTIONAL
        return (req, projected, phase_key)

    def _shared_reach(self, gid: int) -> FrozenSet[int]:
        cached = self._shared_reach_cache.get(gid)
        if cached is not None:
            return cached
        group = self.memo.group(gid)
        acc = set()
        if group.is_shared:
            acc.add(gid)
        for expr in group.exprs:
            for child in expr.children:
                acc |= self._shared_reach(child)
        result = frozenset(acc)
        self._shared_reach_cache[gid] = result
        return result

    def _has_lca_below(self, gid: int) -> bool:
        cached = self._has_lca_below_cache.get(gid)
        if cached is not None:
            return cached
        group = self.memo.group(gid)
        result = bool(group.lca_for) or any(
            self._has_lca_below(child)
            for expr in group.exprs
            for child in expr.children
        )
        self._has_lca_below_cache[gid] = result
        return result

    # ------------------------------------------------------------------
    # Phase-2 rounds (Algorithm 4 lines 4-12 + Section VIII)
    # ------------------------------------------------------------------

    def _ordered_shared(self, shared_gids: List[int]) -> List[int]:
        """Order shared groups for round generation (Section VIII-B)."""
        if not self.config.rank_shared_groups:
            return list(shared_gids)

        def repart_savings(gid: int) -> float:
            group = self.memo.group(gid)
            consumers = len(self.memo.parents_of(gid))
            volume = group.stats.bytes() if group.stats else 0.0
            return (max(consumers, 1) - 1) * volume * self.config.cost_params.net_byte

        return sorted(shared_gids, key=repart_savings, reverse=True)

    def _entries_for(self, gid: int) -> Tuple[HistoryEntry, ...]:
        history = self.memo.group(gid).history
        if history is None or not len(history):
            return ()
        if self.config.rank_properties:
            return history.ranked_entries()
        return history.entries

    def _independent_partition(self, lca_gid: int,
                               ordered: List[int]) -> List[List[int]]:
        """Split the LCA's shared groups into units optimized greedily.

        With independence exploitation on, each independent set is one
        unit (cartesian *within* a unit, greedy *across* units); with it
        off, everything is one unit — the full cartesian product of the
        base algorithm.
        """
        if not self.config.exploit_independence:
            return [ordered]
        sets = self.independent_sets.get(lca_gid)
        if not sets:
            return [ordered]
        units: List[List[int]] = []
        seen = set()
        for gid in ordered:
            if gid in seen:
                continue
            unit = next((s for s in sets if gid in s), frozenset({gid}))
            members = [g for g in ordered if g in unit]
            seen.update(members)
            units.append(members)
        return units

    def _optimize_with_rounds(self, gid: int, req: ReqProps, ctx: EnforceCtx,
                              pending: List[int], phase: int
                              ) -> Optional[PhysicalPlan]:
        ordered = self._ordered_shared(pending)
        entries: Dict[int, Tuple[HistoryEntry, ...]] = {}
        for shared_gid in list(ordered):
            shared_entries = self._entries_for(shared_gid)
            if not shared_entries:
                # No recorded history (the group was never optimized in
                # phase 1, e.g. pruned); it cannot be enforced.
                ordered.remove(shared_gid)
            else:
                entries[shared_gid] = shared_entries
        if not ordered:
            return self._log_phys_opt(gid, req, ctx, phase)

        units = self._independent_partition(gid, ordered)
        current: Dict[int, HistoryEntry] = {
            g: entries[g][0] for g in ordered
        }
        evaluated: set = set()
        best_plan: Optional[PhysicalPlan] = None
        best_cost = float("inf")
        best_combo = dict(current)

        def run_round(assignment: Dict[int, HistoryEntry]):
            nonlocal best_plan, best_cost
            signature = tuple(sorted(assignment.items()))
            if signature in evaluated:
                return None
            if not self.budget.allow_round():
                self.stats.budget_exhausted = True
                return StopIteration
            evaluated.add(signature)
            self.budget.charge_round()
            self.stats.rounds += 1
            self.stats.round_log.append((gid, signature))
            ctx2 = dict(ctx)
            ctx2.update(assignment)
            with self.tracer.span("optimize.round", lca=gid,
                                  round=self.stats.rounds) as round_span:
                plan = self._log_phys_opt(gid, req, ctx2, phase)
                if plan is None:
                    round_span.set(feasible=False)
                    if self.trace is not None:
                        self.trace.round_evaluated(gid, assignment, phase,
                                                   None)
                    return None
                cost = self.plan_cost(plan)
                round_span.set(feasible=True, cost=cost)
            if self.trace is not None:
                self.trace.round_evaluated(gid, assignment, phase, cost)
            if cost < best_cost:
                best_cost = cost
                best_plan = plan
                best_combo.update(assignment)
            return cost

        stopped = False
        for unit in units:
            if stopped:
                break
            unit_best_cost = float("inf")
            unit_best = {g: current[g] for g in unit}
            for combo in itertools.product(*(entries[g] for g in unit)):
                assignment = dict(current)
                assignment.update(dict(zip(unit, combo)))
                outcome = run_round(assignment)
                if outcome is StopIteration:
                    stopped = True
                    break
                if outcome is not None and outcome < unit_best_cost:
                    unit_best_cost = outcome
                    unit_best = dict(zip(unit, combo))
            # Greedy across units: freeze this unit's best choice.
            current.update(unit_best)

        if best_plan is None:
            # Budget exhausted before any round completed: fall back to
            # un-enforced optimization (equivalent to the phase-1 plan).
            return self._log_phys_opt(gid, req, ctx, phase)
        return best_plan

    # ------------------------------------------------------------------
    # Algorithm 5: LogPhysOpt
    # ------------------------------------------------------------------

    def _candidate_metric(self, group, plan: PhysicalPlan) -> float:
        """Cost metric for comparing candidates of one group.

        For a shared group the winner will be referenced once per
        consumer, so materialize-vs-recompute must be judged by the
        total cost across that multiplicity (a spool pays build once +
        k reads; a pass-through pays k full recomputations).  For
        ordinary groups this is the plain DAG cost.
        """
        if group.is_shared:
            refs = self.memo.initial_reference_count(group.gid)
            if refs > 1:
                return self.cost_model.referenced_cost(plan, refs)
        return self.plan_cost(plan)

    def _log_phys_opt(self, gid: int, req: ReqProps, ctx: EnforceCtx,
                      phase: int) -> Optional[PhysicalPlan]:
        group = self.memo.group(gid)
        self._explore(gid)

        best: Optional[PhysicalPlan] = None
        best_cost = float("inf")

        for expr in list(group.exprs):
            for cand in enumerate_implementations(self.memo, expr, req):
                self.stats.candidates_tried += 1
                child_plans: List[PhysicalPlan] = []
                feasible = True
                for cgid, creq in zip(cand.child_gids, cand.child_reqs):
                    child_group = self.memo.group(cgid)
                    if (
                        phase == PHASE_CSE
                        and child_group.is_shared
                        and cgid in ctx
                    ):
                        # Algorithm 5 lines 10-11: enforce the property
                        # set propagated from the LCA, then compensate up
                        # to what this candidate actually needs.
                        enforced = ctx[cgid].as_req()
                        cplan = self.optimize_group(cgid, enforced, ctx, phase)
                        if cplan is not None:
                            cplan = self._compensate(cplan, creq)
                    else:
                        cplan = self.optimize_group(cgid, creq, ctx, phase)
                    if cplan is None:
                        feasible = False
                        break
                    child_plans.append(cplan)
                if not feasible:
                    continue
                if cand.validator is not None and not cand.validator(child_plans):
                    continue
                props = cand.op.derive_props([p.props for p in child_plans])
                if not props.satisfies(req):
                    continue
                node = self._make_node(cand.op, child_plans, gid, req)
                cost = self._candidate_metric(group, node)
                if cost < best_cost:
                    best, best_cost = node, cost

        schema_names = set(group.schema.names)
        for chain, inner_req in self._enforcers(req):
            if inner_req == req:
                continue
            if not all(
                _op_columns(op) <= schema_names for op in chain
            ):
                # The requirement names columns this group does not
                # produce; no enforcer can conjure them.
                continue
            inner = self.optimize_group(gid, inner_req, ctx, phase)
            if inner is None:
                continue
            node = inner
            for op in reversed(chain):  # innermost first
                node = self._make_node(op, [node], gid, req)
            if not node.props.satisfies(req):
                continue
            cost = self._candidate_metric(group, node)
            if cost < best_cost:
                best, best_cost = node, cost

        return best

    # ------------------------------------------------------------------
    # Enforcers and compensation
    # ------------------------------------------------------------------

    def _enforcers(self, req: ReqProps) -> Iterator[Tuple[List[PhysicalOp], ReqProps]]:
        """Enforcer alternatives: (operator chain outer-first, inner req).

        Each alternative strictly weakens the requirement passed to the
        inner optimization, so the recursion terminates.
        """
        preq = req.partitioning
        sort = req.sort_order

        if sort.is_sorted:
            yield [PhysSort(sort)], ReqProps(preq, SortOrder())

        if preq.kind is PartReqKind.RANGE:
            choices = [tuple(sorted(preq.hi))]
            if preq.lo and preq.lo != preq.hi:
                choices.append(tuple(sorted(preq.lo)))
            none = ReqProps()
            for cols in choices:
                if sort.is_sorted:
                    yield (
                        [PhysRepartition(cols, merge_sort=sort)],
                        ReqProps(none.partitioning, sort),
                    )
                    yield (
                        [PhysSort(sort), PhysRepartition(cols)],
                        ReqProps(),
                    )
                else:
                    yield [PhysRepartition(cols)], ReqProps()
        elif preq.kind is PartReqKind.RANGE_SORTED:
            order = preq.sorted_order
            if sort.is_sorted:
                yield (
                    [PhysRangeRepartition(order, merge_sort=sort)],
                    ReqProps(sort_order=sort),
                )
                yield [PhysSort(sort), PhysRangeRepartition(order)], ReqProps()
            else:
                yield [PhysRangeRepartition(order)], ReqProps()
        elif preq.kind is PartReqKind.SERIAL:
            if sort.is_sorted:
                yield [PhysMerge(merge_sort=sort)], ReqProps(sort_order=sort)
                yield [PhysSort(sort), PhysMerge()], ReqProps()
            else:
                yield [PhysMerge()], ReqProps()

    def _compensate(self, plan: PhysicalPlan, creq: ReqProps) -> PhysicalPlan:
        schema_names = set(plan.schema.names)
        wanted = set(creq.sort_order.columns)
        preq = creq.partitioning
        if preq.kind is PartReqKind.RANGE:
            wanted |= set(preq.hi)
        elif preq.kind is PartReqKind.RANGE_SORTED:
            wanted |= set(preq.sorted_order)
        if not wanted <= schema_names:
            # The consumer's requirement names columns the enforced
            # layout does not carry; return the plan as-is and let the
            # candidate's validator reject the combination.
            return plan
        return self._compensate_checked(plan, creq)

    def _compensate_checked(self, plan: PhysicalPlan,
                            creq: ReqProps) -> PhysicalPlan:
        """Upgrade an enforced shared-group plan to a candidate's needs.

        When phase 2 overrides a child requirement with the enforced
        layout, the consumer may still need e.g. a different sort order
        (Figure 8(b): the right consumer re-sorts the spooled result on
        ``(C,B)``).  Partitioning mismatches repartition — legal, and
        priced, so the rounds can judge whether the enforcement pays.
        """
        node = plan
        if not creq.partitioning.is_satisfied_by(node.props.partitioning):
            preq = creq.partitioning
            keep = node.props.sort_order
            merge_sort = keep if keep.is_sorted else SortOrder()
            if preq.kind is PartReqKind.SERIAL:
                op: PhysicalOp = PhysMerge(merge_sort=keep)
            elif preq.kind is PartReqKind.RANGE_SORTED:
                op = PhysRangeRepartition(preq.sorted_order,
                                          merge_sort=merge_sort)
            else:
                cols = tuple(sorted(preq.hi))
                op = PhysRepartition(cols, merge_sort=merge_sort)
            node = self._make_node(op, [node], plan.group_id, creq)
        if not node.props.sort_order.satisfies(creq.sort_order):
            node = self._make_node(
                PhysSort(creq.sort_order), [node], plan.group_id, creq
            )
        return node

    # ------------------------------------------------------------------
    # Node construction and exploration
    # ------------------------------------------------------------------

    def _make_node(self, op: PhysicalOp, children: Sequence[PhysicalPlan],
                   gid: int, req: ReqProps) -> PhysicalPlan:
        group = self.memo.group(gid)
        out_stats = group.stats
        child_stats = [self.memo.group(c.group_id).stats for c in children]
        props = op.derive_props([c.props for c in children])
        self_cost = self.cost_model.operator_cost(
            op, out_stats, children, child_stats
        )
        cost = self_cost + sum(c.cost for c in children)
        return PhysicalPlan(
            op=op,
            children=tuple(children),
            schema=group.schema,
            props=props,
            group_id=gid,
            required=req,
            cost=cost,
            self_cost=self_cost,
            rows=out_stats.rows if out_stats else 0.0,
        )

    def _explore(self, gid: int) -> None:
        """Apply the transformation rules to fixpoint (logical step).

        Each expression is processed exactly once: rule outputs appended
        to the group are picked up by the advancing cursor, so the
        fixpoint costs O(produced expressions), not O(n²) re-derivations.
        """
        group = self.memo.group(gid)
        if 1 in group.explored_spaces:
            return
        group.explored_spaces.add(1)
        cursor = 0
        while cursor < len(group.exprs):
            expr = group.exprs[cursor]
            cursor += 1
            for rule in self.rules:
                produced = rule.apply(self.memo, gid, expr, self.rule_env)
                if produced is None:
                    continue
                added = 0
                for new_expr in produced:
                    if self.memo.add_expr_to_group(gid, new_expr):
                        added += 1
                if added and self.trace is not None:
                    self.trace.rule_fired(gid, rule.name, added)
