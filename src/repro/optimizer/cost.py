"""The cost model.

Costs estimate end-to-end job cost on a shared-nothing cluster of
``machines`` workers, in abstract units.  The defining characteristics
of the cloud setting (paper, Section IX: "operations that exchange data
among the cluster machines ... are in general very costly"):

* **exchange operators dominate** — repartitioning pays for the full
  data volume over the network plus staging I/O, regardless of
  parallelism;
* **CPU-side operators scale with the effective degree of parallelism**
  of their input layout: serial = 1, random = all machines, hash = at
  most the NDV of the partitioning columns (few distinct keys ⇒ few
  useful partitions ⇒ skew);
* repartitioning onto a *smaller* column set is mildly penalised through
  that same NDV-bound parallelism, which is why a conventional,
  locally-optimising pass picks the full grouping key ``{A,B,C}`` while
  the paper's phase 2 can still globally justify ``{B}``.

Tree vs DAG costing: ``plan.cost`` is the conventional *tree* cost (a
shared subexpression reached through two consumers is paid twice — the
duplicated execution of Figure 8(a)).  :meth:`CostModel.dag_cost` prices
a plan as a DAG: every distinct node is paid once and each extra
consumer of a spool pays only the spool re-read.  The CSE machinery
compares candidate plans by DAG cost (DESIGN.md, decision 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..plan.physical import (
    PhysBroadcastJoin,
    PhysPassThrough,
    PhysRangeRepartition,
    PhysExtract,
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysicalOp,
    PhysicalPlan,
    PhysMerge,
    PhysMergeJoin,
    PhysOutput,
    PhysProject,
    PhysRepartition,
    PhysSequence,
    PhysSort,
    PhysSpool,
    PhysStreamAgg,
    PhysTopN,
    PhysUnionAll,
)
from ..plan.properties import PartitionKind, Partitioning
from .cardinality import Stats

import math


@dataclass(frozen=True)
class CostParams:
    """Tunable constants of the cost model (abstract units per byte/row).

    The defaults are calibrated so the Figure 7 reproduction lands in
    the paper's 21–57% savings band (see EXPERIMENTS.md); they are not
    magic — any setting where exchanges and extraction dominate CPU
    reproduces the paper's qualitative behaviour.
    """

    machines: int = 25
    #: Reading a byte from the distributed input store (per machine).
    read_byte: float = 1.0
    #: Writing a byte of final output.
    write_byte: float = 1.0
    #: Shipping a byte through an exchange (network + staging I/O).
    net_byte: float = 2.0
    #: Spool materialisation per byte (SCOPE spools persist to the
    #: distributed store, so this is priced like an output write).
    spool_write_byte: float = 1.0
    #: Re-reading a byte of a spooled result.
    spool_read_byte: float = 1.0
    #: Row-at-a-time CPU work (filter/project/stream-agg/merge-join).
    cpu_row: float = 0.5
    #: Hash-table probe/build work per row.
    hash_row: float = 0.8
    #: Sort work multiplier (× rows × log2 rows-per-partition).
    sort_row: float = 0.25
    #: Exponent of the skew penalty ``(machines / parallelism) ** exp``
    #: applied to exchanges landing on low-NDV partitioning columns.
    skew_exp: float = 0.3
    #: Fixed per-operator scheduling overhead (vertex startup).
    startup: float = 1.0
    #: Multiplier on the volume of a gather-merge: a single receiver
    #: must ingest the whole dataset serially, unlike a repartition
    #: whose receivers ingest in parallel.  Discourages plans that
    #: funnel large intermediates onto one machine.
    serial_sink_penalty: float = 5.0


class CostModel:
    """Computes per-operator and whole-plan costs."""

    def __init__(self, params: CostParams = CostParams()):
        if params.machines < 1:
            raise ValueError("the cluster needs at least one machine")
        if params.net_byte <= 0 or params.read_byte <= 0:
            raise ValueError("I/O and network cost constants must be positive")
        self.params = params

    # -- parallelism -------------------------------------------------------

    def parallelism(self, partitioning: Partitioning, stats: Stats) -> float:
        """Effective degree of parallelism of data laid out this way."""
        machines = float(self.params.machines)
        if partitioning.kind is PartitionKind.SERIAL:
            return 1.0
        if partitioning.kind is PartitionKind.RANDOM:
            return machines
        # HASH and RANGE layouts: useful parallelism is bounded by the
        # number of distinct partitioning keys.
        ndv = 1.0
        for col in partitioning.columns:
            ndv = min(stats.rows if stats.rows > 0 else 1.0, ndv * stats.ndv_of(col))
        return max(1.0, min(machines, ndv))

    # -- per-operator self cost ---------------------------------------------

    def operator_cost(
        self,
        op: PhysicalOp,
        out_stats: Stats,
        child_plans: Sequence[PhysicalPlan],
        child_stats: Sequence[Stats],
    ) -> float:
        """Cost contributed by this operator alone (children excluded)."""
        p = self.params
        cost = p.startup

        def in_rows(i: int = 0) -> float:
            return child_stats[i].rows if child_stats else 0.0

        def in_bytes(i: int = 0) -> float:
            return child_stats[i].bytes() if child_stats else 0.0

        def in_dop(i: int = 0) -> float:
            return self.parallelism(child_plans[i].props.partitioning, child_stats[i])

        if isinstance(op, PhysExtract):
            return cost + out_stats.bytes() * p.read_byte / p.machines

        if isinstance(op, (PhysFilter, PhysProject)):
            return cost + in_rows() * p.cpu_row / in_dop()

        if isinstance(op, PhysSort):
            rows = in_rows()
            dop = in_dop()
            per_part = max(2.0, rows / dop)
            return cost + rows * math.log2(per_part) * p.sort_row / dop

        if isinstance(op, PhysStreamAgg):
            return cost + in_rows() * p.cpu_row / in_dop()

        if isinstance(op, PhysHashAgg):
            return cost + in_rows() * p.hash_row / in_dop()

        if isinstance(op, PhysTopN):
            rows = in_rows()
            dop = in_dop()
            per_part = max(2.0, rows / dop)
            # Heap-select: one pass with a log(n)-ish heap per partition.
            return cost + rows * math.log2(max(2.0, op.n)) * p.sort_row / dop

        if isinstance(op, PhysRangeRepartition):
            # Same exchange volume as a hash repartition, plus a small
            # boundary-computation pass over the key values.
            volume = in_bytes()
            out_part = Partitioning.ranged(op.order)
            dop_out = self.parallelism(out_part, out_stats)
            skew = (p.machines / dop_out) ** p.skew_exp
            cost += volume * p.net_byte * skew
            cost += in_rows() * 0.05  # quantile sampling
            if op.merge_sort.is_sorted:
                cost += in_rows() * p.cpu_row / dop_out
            return cost

        if isinstance(op, PhysRepartition):
            volume = in_bytes()
            out_part = Partitioning.hashed(op.columns)
            dop_out = self.parallelism(out_part, out_stats)
            skew = (p.machines / dop_out) ** p.skew_exp
            cost += volume * p.net_byte * skew
            if op.merge_sort.is_sorted:
                # Receiving side performs a k-way merge of sorted runs.
                cost += in_rows() * p.cpu_row / dop_out
            return cost

        if isinstance(op, PhysMerge):
            cost += in_bytes() * p.net_byte * p.serial_sink_penalty
            if op.merge_sort.is_sorted:
                cost += in_rows() * p.cpu_row
            return cost

        if isinstance(op, PhysMergeJoin):
            dop = max(1.0, min(in_dop(0), in_dop(1)))
            return cost + (in_rows(0) + in_rows(1)) * p.cpu_row / dop

        if isinstance(op, PhysHashJoin):
            dop = max(1.0, min(in_dop(0), in_dop(1)))
            return cost + (in_rows(1) * p.hash_row + in_rows(0) * p.cpu_row) / dop

        if isinstance(op, PhysBroadcastJoin):
            dop = in_dop(0)
            broadcast = in_bytes(1) * p.net_byte * dop
            probe = (in_rows(1) * p.hash_row * dop + in_rows(0) * p.cpu_row) / dop
            return cost + broadcast + probe

        if isinstance(op, PhysSpool):
            # Build once plus a single read; extra consumers are charged
            # by dag_cost / spool_read_cost.
            volume = in_bytes()
            return cost + volume * (p.spool_write_byte + p.spool_read_byte)

        if isinstance(op, PhysOutput):
            return cost + in_bytes() * p.write_byte / in_dop()

        if isinstance(op, PhysPassThrough):
            # A no-op: consumers recompute the input; the re-execution is
            # charged by the per-reference walk in dag_cost.
            return 0.0

        if isinstance(op, (PhysSequence, PhysUnionAll)):
            return cost

        raise TypeError(f"no cost formula for {type(op).__name__}")

    # -- whole-plan costing ---------------------------------------------------

    def spool_read_cost(self, spool: PhysicalPlan) -> float:
        """Cost of one additional consumer re-reading a spooled result."""
        child_bytes = spool.rows * spool.schema.row_width_bytes()
        return child_bytes * self.params.spool_read_byte

    def dag_cost(self, plan: PhysicalPlan) -> float:
        """Price a plan with materialization-aware sharing.

        Only SPOOL nodes are materialized by the runtime: the first
        reference pays the build (plus one read), every further
        reference pays just a re-read.  A multi-referenced *non-spool*
        node is re-executed per reference — exactly the runtime's
        semantics — so it is charged once per path, like in a tree.

        Sub-plans containing no spool are priced by their precomputed
        tree cost, which keeps the walk linear in practice.
        """
        has_spool: Dict[int, bool] = {}

        def check(node: PhysicalPlan) -> bool:
            cached = has_spool.get(id(node))
            if cached is not None:
                return cached
            result = isinstance(node.op, PhysSpool) or any(
                check(child) for child in node.children
            )
            has_spool[id(node)] = result
            return result

        seen_spools: set = set()

        def walk(node: PhysicalPlan) -> float:
            if isinstance(node.op, PhysSpool):
                if id(node) in seen_spools:
                    return self.spool_read_cost(node)
                seen_spools.add(id(node))
                return node.self_cost + walk(node.children[0])
            if not check(node):
                return node.cost
            return node.self_cost + sum(walk(child) for child in node.children)

        check(plan)
        return walk(plan)

    def referenced_cost(self, plan: PhysicalPlan, references: int) -> float:
        """Total cost of a plan consumed through ``references`` edges.

        The first reference pays the full DAG cost; each further
        reference pays the *marginal* cost of re-reaching the result —
        spool re-reads for materialized parts, full re-execution for
        everything else.  This is the metric by which a shared group's
        candidates (materialize vs recompute) are compared: it makes the
        sharing decision itself cost-based.
        """
        has_spool: Dict[int, bool] = {}

        def check(node: PhysicalPlan) -> bool:
            cached = has_spool.get(id(node))
            if cached is not None:
                return cached
            result = isinstance(node.op, PhysSpool) or any(
                check(child) for child in node.children
            )
            has_spool[id(node)] = result
            return result

        seen_spools: set = set()

        def walk(node: PhysicalPlan) -> float:
            if isinstance(node.op, PhysSpool):
                if id(node) in seen_spools:
                    return self.spool_read_cost(node)
                seen_spools.add(id(node))
                return node.self_cost + walk(node.children[0])
            if not check(node):
                return node.cost
            return node.self_cost + sum(walk(child) for child in node.children)

        check(plan)
        total = 0.0
        for _ in range(max(1, references)):
            # seen_spools persists across references: later walks pay
            # only re-reads for already-built spools.
            total += walk(plan)
        return total
