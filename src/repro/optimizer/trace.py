"""Optimizer tracing: a structured record of search decisions.

Enabled with ``OptimizerConfig(trace=True)``; the engine then publishes
:class:`TraceEvent` records for every group optimization, transformation
rule firing, and phase-2 round.  The trace answers the questions that
come up when a plan looks wrong: *which requirements was this group
optimized under?  which enforcement rounds ran, and what did each cost?
did the rule I added ever fire?*

Events flow through an :class:`~repro.obs.bus.EventBus` rather than a
private list: pass ``bus=tracer.bus`` (or rebind :attr:`OptimizerTrace.bus`
before the first event) and the optimizer's records interleave with the
execution events on the same stream, ready for the JSON-lines and Chrome
sinks of :mod:`repro.obs.sinks`.  Publishing is append-only and cheap;
rendering is done on demand by :func:`render_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..obs.bus import EventBus


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    ``kind`` is one of ``"group"``, ``"rule"``, ``"round"``; the other
    fields are populated as applicable.  ``rule_name`` is the structured
    identity of the fired rule — use it instead of parsing ``detail``,
    which is display text and may contain spaces.
    """

    kind: str
    gid: int
    phase: int = 0
    detail: str = ""
    cost: Optional[float] = None
    rule_name: str = ""
    produced: int = 0


class OptimizerTrace:
    """Publishes engine events onto a (possibly shared) event bus.

    Without an explicit ``bus`` each trace gets a private one, which
    keeps concurrent engines (the CSE pipeline also prices a fallback
    memo) from interleaving their records.
    """

    def __init__(self, bus: Optional[EventBus] = None):
        self.bus = bus if bus is not None else EventBus()

    @property
    def events(self) -> List[TraceEvent]:
        """This trace's records, filtered out of the bus stream."""
        return self.bus.of_type(TraceEvent)

    def group_optimized(self, gid: int, req, phase: int,
                        cost: Optional[float]) -> None:
        self.bus.publish(
            TraceEvent("group", gid, phase, detail=str(req), cost=cost)
        )

    def rule_fired(self, gid: int, rule_name: str, produced: int) -> None:
        self.bus.publish(
            TraceEvent("rule", gid, detail=f"{rule_name} (+{produced})",
                       rule_name=rule_name, produced=produced)
        )

    def round_evaluated(self, lca_gid: int, assignment, phase: int,
                        cost: Optional[float]) -> None:
        detail = ", ".join(
            f"#{gid}→{entry}" for gid, entry in sorted(assignment.items())
        )
        self.bus.publish(
            TraceEvent("round", lca_gid, phase, detail=detail, cost=cost)
        )

    # -- queries -----------------------------------------------------------

    def rounds(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "round"]

    def rules(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "rule"]

    def groups(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "group"]

    def rule_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.rules():
            counts[event.rule_name] = counts.get(event.rule_name, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.events)


def render_trace(trace: OptimizerTrace, max_groups: int = 40) -> str:
    """Readable multi-section rendering of a trace."""
    lines: List[str] = []

    counts = trace.rule_counts()
    lines.append("=== transformation rules fired ===")
    if counts:
        for name, count in sorted(counts.items(), key=lambda kv: (-kv[1],
                                                                  kv[0])):
            lines.append(f"  {name:<24}{count:>6}×")
    else:
        lines.append("  (none)")

    rounds = trace.rounds()
    lines.append(f"=== phase-2 rounds ({len(rounds)}) ===")
    for event in rounds:
        cost = f"{event.cost:,.0f}" if event.cost is not None else "infeasible"
        lines.append(f"  LCA #{event.gid}: {{{event.detail}}} -> {cost}")

    groups = trace.groups()
    lines.append(
        f"=== group optimizations ({len(groups)}, showing ≤{max_groups}) ==="
    )
    for event in groups[:max_groups]:
        cost = f"{event.cost:,.0f}" if event.cost is not None else "no plan"
        lines.append(
            f"  phase {event.phase} group #{event.gid} [{event.detail}] "
            f"-> {cost}"
        )
    if len(groups) > max_groups:
        lines.append(f"  ... {len(groups) - max_groups} more")
    return "\n".join(lines)
