"""Optimizer tracing: a structured record of search decisions.

Enabled with ``OptimizerConfig(trace=True)``; the engine then appends
:class:`TraceEvent` records for every group optimization, transformation
rule firing, and phase-2 round.  The trace answers the questions that
come up when a plan looks wrong: *which requirements was this group
optimized under?  which enforcement rounds ran, and what did each cost?
did the rule I added ever fire?*

The trace is append-only and cheap (tuples into a list); rendering is
done on demand by :func:`render_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    ``kind`` is one of ``"group"``, ``"rule"``, ``"round"``; the other
    fields are populated as applicable.
    """

    kind: str
    gid: int
    phase: int = 0
    detail: str = ""
    cost: Optional[float] = None


@dataclass
class OptimizerTrace:
    """Append-only sink for engine events."""

    events: List[TraceEvent] = field(default_factory=list)

    def group_optimized(self, gid: int, req, phase: int,
                        cost: Optional[float]) -> None:
        self.events.append(
            TraceEvent("group", gid, phase, detail=str(req), cost=cost)
        )

    def rule_fired(self, gid: int, rule_name: str, produced: int) -> None:
        self.events.append(
            TraceEvent("rule", gid, detail=f"{rule_name} (+{produced})")
        )

    def round_evaluated(self, lca_gid: int, assignment, phase: int,
                        cost: Optional[float]) -> None:
        detail = ", ".join(
            f"#{gid}→{entry}" for gid, entry in sorted(assignment.items())
        )
        self.events.append(
            TraceEvent("round", lca_gid, phase, detail=detail, cost=cost)
        )

    # -- queries -----------------------------------------------------------

    def rounds(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "round"]

    def rules(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "rule"]

    def groups(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "group"]

    def rule_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.rules():
            name = event.detail.split(" ")[0]
            counts[name] = counts.get(name, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.events)


def render_trace(trace: OptimizerTrace, max_groups: int = 40) -> str:
    """Readable multi-section rendering of a trace."""
    lines: List[str] = []

    counts = trace.rule_counts()
    lines.append("=== transformation rules fired ===")
    if counts:
        for name, count in sorted(counts.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<24}{count:>6}×")
    else:
        lines.append("  (none)")

    rounds = trace.rounds()
    lines.append(f"=== phase-2 rounds ({len(rounds)}) ===")
    for event in rounds:
        cost = f"{event.cost:,.0f}" if event.cost is not None else "infeasible"
        lines.append(f"  LCA #{event.gid}: {{{event.detail}}} -> {cost}")

    groups = trace.groups()
    lines.append(
        f"=== group optimizations ({len(groups)}, showing ≤{max_groups}) ==="
    )
    for event in groups[:max_groups]:
        cost = f"{event.cost:,.0f}" if event.cost is not None else "no plan"
        lines.append(
            f"  phase {event.phase} group #{event.gid} [{event.detail}] "
            f"-> {cost}"
        )
    if len(groups) > max_groups:
        lines.append(f"  ... {len(groups) - max_groups} more")
    return "\n".join(lines)
