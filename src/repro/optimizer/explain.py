"""EXPLAIN support: structured plan reports and exports.

Provides three views of an optimized plan:

* :func:`explain_text` — the operator tree with per-node rows, costs,
  and delivered physical properties (plus a cost breakdown by operator
  class, which makes the "exchanges dominate" story visible);
* :func:`explain_dict` — a JSON-serializable structure for tooling;
* :func:`to_dot` — a Graphviz rendering of the plan DAG in which shared
  spools visibly fan out to their consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..plan.physical import (
    PhysBroadcastJoin,
    PhysExtract,
    PhysicalPlan,
    PhysMerge,
    PhysOutput,
    PhysRangeRepartition,
    PhysRepartition,
    PhysSpool,
)

#: Operator classes for the cost breakdown.
_CATEGORIES = (
    ("exchange", (PhysRepartition, PhysRangeRepartition, PhysMerge,
                  PhysBroadcastJoin)),
    ("scan", (PhysExtract,)),
    ("spool", (PhysSpool,)),
    ("output", (PhysOutput,)),
)


def _category(node: PhysicalPlan) -> str:
    for name, types in _CATEGORIES:
        if isinstance(node.op, types):
            return name
    return "compute"


def cost_breakdown(plan: PhysicalPlan) -> Dict[str, float]:
    """Self-cost totals per operator category (each node counted once)."""
    totals: Dict[str, float] = {}
    for node in plan.iter_nodes():
        category = _category(node)
        totals[category] = totals.get(category, 0.0) + node.self_cost
    return totals


def explain_dict(plan: PhysicalPlan) -> Dict[str, Any]:
    """JSON-serializable plan description.

    Shared sub-plans appear once, referenced by node id from all their
    consumers (``{"ref": <id>}``).
    """
    ids: Dict[int, int] = {}

    def visit(node: PhysicalPlan) -> Dict[str, Any]:
        existing = ids.get(id(node))
        if existing is not None:
            return {"ref": existing}
        node_id = len(ids)
        ids[id(node)] = node_id
        return {
            "id": node_id,
            "operator": node.op.name,
            "detail": node.op.detail(),
            "rows": node.rows,
            "cost": node.cost,
            "self_cost": node.self_cost,
            "partitioning": str(node.props.partitioning),
            "sort_order": str(node.props.sort_order),
            "schema": list(node.schema.names),
            "children": [visit(child) for child in node.children],
        }

    return visit(plan)


def explain_text(plan: PhysicalPlan,
                 total_cost: Optional[float] = None) -> str:
    """Readable report: plan tree plus a cost breakdown."""
    lines: List[str] = []
    lines.append(plan.pretty().rstrip())
    lines.append("")
    breakdown = cost_breakdown(plan)
    total = sum(breakdown.values())
    shown_total = total_cost if total_cost is not None else total
    lines.append(f"total cost (DAG): {shown_total:,.1f}")
    lines.append("self-cost by operator class:")
    for name, value in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        share = 100.0 * value / total if total else 0.0
        lines.append(f"  {name:<10}{value:>16,.1f}  ({share:.1f}%)")
    spools = plan.find_all(PhysSpool)
    if spools:
        lines.append(f"shared spools: {len(spools)}")
    return "\n".join(lines)


def explain_normalized(plan: PhysicalPlan) -> str:
    """Stable plan rendering for golden-snapshot tests.

    Shows the operator tree, operator details, delivered physical
    properties and output schemas — the plan's *shape* — but no row or
    cost estimates, so snapshots survive cost-model recalibrations that
    do not change the chosen plan.  Shared sub-plans appear once and are
    referenced as ``*<id>`` from every other consumer.
    """
    ids: Dict[int, int] = {}
    lines: List[str] = []

    def visit(node: PhysicalPlan, depth: int) -> None:
        pad = "  " * depth
        seen = ids.get(id(node))
        if seen is not None:
            lines.append(f"{pad}*{seen}")
            return
        node_id = len(ids)
        ids[id(node)] = node_id
        detail = node.op.detail()
        detail = f" {detail}" if detail else ""
        schema = ",".join(node.schema.names)
        lines.append(
            f"{pad}#{node_id} {node.op.name}{detail} "
            f"[{node.props.partitioning} | {node.props.sort_order}] "
            f"({schema})"
        )
        for child in node.children:
            visit(child, depth + 1)

    visit(plan, 0)
    return "\n".join(lines) + "\n"


def to_dot(plan: PhysicalPlan, name: str = "plan") -> str:
    """Graphviz (dot) rendering of the plan DAG."""
    ids: Dict[int, int] = {}
    nodes: List[str] = []
    edges: List[str] = []

    def visit(node: PhysicalPlan) -> int:
        existing = ids.get(id(node))
        if existing is not None:
            return existing
        node_id = len(ids)
        ids[id(node)] = node_id
        detail = node.op.detail()
        label = node.op.name + (f"\\n{detail}" if detail else "")
        label += f"\\nrows={node.rows:.0f}"
        shape = "box"
        style = ""
        if isinstance(node.op, PhysSpool):
            shape = "cylinder"
            style = ', style=filled, fillcolor="lightyellow"'
        elif isinstance(node.op, (PhysRepartition, PhysMerge)):
            style = ', style=filled, fillcolor="lightblue"'
        nodes.append(f'  n{node_id} [label="{label}", shape={shape}{style}];')
        for child in node.children:
            child_id = visit(child)
            edges.append(f"  n{node_id} -> n{child_id};")
        return node_id

    visit(plan)
    body = "\n".join(nodes + edges)
    return f"digraph {name} {{\n  rankdir=BT;\n{body}\n}}\n"


@dataclass
class Stage:
    """One execution stage: a pipeline between exchange boundaries.

    This is how the Dryad/Cosmos layer would run the plan: every
    exchange (repartition / gather) or materialization point cuts the
    DAG into stages whose vertices execute machine-locally.
    """

    index: int
    operators: List[str] = field(default_factory=list)
    #: Stages whose output this stage consumes (via an exchange/spool).
    inputs: List[int] = field(default_factory=list)
    #: Rows entering the stage's boundary operator (0 for leaf stages).
    boundary_rows: float = 0.0
    #: The boundary operator that starts this stage ("" for the root).
    boundary: str = ""


def _is_stage_boundary(node: PhysicalPlan) -> bool:
    return isinstance(
        node.op,
        (PhysRepartition, PhysRangeRepartition, PhysMerge, PhysSpool,
         PhysBroadcastJoin),
    )


def stage_graph(plan: PhysicalPlan) -> List[Stage]:
    """Cut a plan into Dryad-style stages at exchange boundaries.

    Returns stages in a bottom-up order; stage 0 contains the deepest
    pipeline.  A shared spool produces one stage consumed by several
    later stages.
    """
    stages: List[Stage] = []
    node_stage: Dict[int, int] = {}

    def new_stage(boundary: str = "", rows: float = 0.0) -> Stage:
        stage = Stage(index=len(stages), boundary=boundary,
                      boundary_rows=rows)
        stages.append(stage)
        return stage

    def visit(node: PhysicalPlan) -> int:
        """Returns the index of the stage *producing* this node."""
        cached = node_stage.get(id(node))
        if cached is not None:
            return cached
        child_stages = [visit(child) for child in node.children]
        if _is_stage_boundary(node):
            rows = node.children[0].rows if node.children else 0.0
            stage = new_stage(boundary=node.op.name, rows=rows)
            stage.inputs = sorted(set(child_stages))
        else:
            # Fuse into the (single-input) child's stage when possible;
            # multi-input compute nodes fuse into the left input's stage
            # and record the others as stage inputs.
            if child_stages:
                stage = stages[child_stages[0]]
                for other in child_stages[1:]:
                    if other != stage.index and other not in stage.inputs:
                        stage.inputs.append(other)
            else:
                stage = new_stage()
        stage.operators.append(node.op.name)
        node_stage[id(node)] = stage.index
        return stage.index

    visit(plan)
    return stages


def render_stages(stages: List[Stage]) -> str:
    """Readable stage listing (bottom-up)."""
    lines = [f"{len(stages)} execution stages:"]
    for stage in stages:
        inputs = (
            " <- " + ",".join(f"S{i}" for i in stage.inputs)
            if stage.inputs
            else ""
        )
        boundary = (
            f" [{stage.boundary}, {stage.boundary_rows:,.0f} rows in]"
            if stage.boundary
            else ""
        )
        ops = " → ".join(stage.operators)
        lines.append(f"  S{stage.index}{boundary}{inputs}: {ops}")
    return "\n".join(lines)


def compare_plans(conventional: PhysicalPlan, extended: PhysicalPlan,
                  conventional_cost: float, extended_cost: float) -> str:
    """Side-by-side summary of a baseline/CSE plan pair."""
    def stats(plan: PhysicalPlan) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in plan.iter_nodes():
            counts[_category(node)] = counts.get(_category(node), 0) + 1
        return counts

    base = stats(conventional)
    ext = stats(extended)
    categories = sorted(set(base) | set(ext))
    lines = [
        f"{'':<12}{'conventional':>14}{'with CSE':>12}",
        f"{'cost':<12}{conventional_cost:>14,.0f}{extended_cost:>12,.0f}",
    ]
    for category in categories:
        lines.append(
            f"{category:<12}{base.get(category, 0):>14}{ext.get(category, 0):>12}"
        )
    ratio = extended_cost / conventional_cost if conventional_cost else 1.0
    lines.append(f"{'ratio':<12}{'':>14}{ratio:>12.2f}")
    return "\n".join(lines)
