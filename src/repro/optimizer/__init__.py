"""Cascades-style optimizer: memo, rules, cost model, search engine."""

from .cardinality import CardinalityEstimator, Stats, annotate_memo
from .cost import CostModel, CostParams
from .engine import (
    PHASE_CONVENTIONAL,
    PHASE_CSE,
    Budget,
    EngineStats,
    OptimizerConfig,
    SearchEngine,
)
from .explain import (
    compare_plans,
    cost_breakdown,
    explain_dict,
    explain_text,
    render_stages,
    stage_graph,
    to_dot,
)
from .memo import Group, GroupExpr, Memo
from .trace import OptimizerTrace, TraceEvent, render_trace

__all__ = [
    "Budget",
    "compare_plans",
    "cost_breakdown",
    "explain_dict",
    "explain_text",
    "render_stages",
    "stage_graph",
    "to_dot",
    "CardinalityEstimator",
    "CostModel",
    "CostParams",
    "EngineStats",
    "Group",
    "GroupExpr",
    "Memo",
    "OptimizerConfig",
    "OptimizerTrace",
    "TraceEvent",
    "render_trace",
    "PHASE_CONVENTIONAL",
    "PHASE_CSE",
    "SearchEngine",
    "Stats",
    "annotate_memo",
]
