"""The memo: compact storage for all rewritings of a script.

The memo is the central Cascades data structure (paper, Section III):

* each :class:`Group` holds a set of logically-equivalent
  :class:`GroupExpr` entries — "All the group expressions of a group
  generate the same set of tuples";
* each group expression is one operator whose children are *group
  numbers*, not plans;
* ingestion creates **one group per distinct DAG node** without value
  deduplication, so that textually duplicated subexpressions remain
  separate groups for Algorithm 1 (fingerprinting) to find and merge —
  exactly the paper's pipeline;
* groups created later by transformation rules *are* deduplicated by
  value (operator + child group ids) to keep the search space compact.

The memo also carries the per-group annotations the CSE framework needs:
the shared flag, the property history (Section V), the shared-groups-
below lists and LCA links (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..plan.columns import Schema
from ..plan.logical import LogicalOp, LogicalPlan, LogicalSpool


@dataclass(frozen=True, eq=False)
class GroupExpr:
    """One operator with children referenced by group number.

    Hashing an operator payload walks its whole expression tree, and the
    memo hashes expressions constantly (deduplication in ``add_expr``,
    the rule-created-group index), so the hash is computed once and
    cached on the instance.
    """

    op: LogicalOp
    children: Tuple[int, ...]

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.op, self.children))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, GroupExpr):
            return NotImplemented
        return self.children == other.children and self.op == other.op

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kids = ",".join(str(c) for c in self.children)
        return f"{self.op.name}({kids})"


class Group:
    """A set of logically equivalent expressions plus CSE annotations."""

    def __init__(self, gid: int, schema: Schema):
        self.gid = gid
        self.schema = schema
        self.exprs: List[GroupExpr] = []
        self._expr_set: Set[GroupExpr] = set()
        #: Marked by Algorithm 1 when this group roots a shared
        #: subexpression (always a SPOOL group in our pipeline).
        self.is_shared = False
        #: True once Algorithm 1 merged this group away.
        self.dead = False
        #: Property history recorded during phase 1 (Section V); the CSE
        #: pipeline attaches a ``repro.cse.history.PropertyHistory``.
        self.history = None
        #: ``repro.cse.propagation.ShrdGrpInfo`` list: shared groups at
        #: or below this group, with consumer bookkeeping (Section VI).
        self.shared_below: List = []
        #: Shared group ids for which this group is the LCA.
        self.lca_for: List[int] = []
        #: Winner cache: (ReqProps, enforcement key, space id) -> winner.
        self.winners: Dict = {}
        #: Logical statistics (rows, ndv, width), filled lazily.
        self.stats = None
        #: Phases whose transformation rules already ran to fixpoint.
        self.explored_spaces: Set[int] = set()

    @property
    def initial_expr(self) -> GroupExpr:
        """The first (pre-exploration) expression — used by fingerprints."""
        return self.exprs[0]

    def add_expr(self, expr: GroupExpr) -> bool:
        """Add an expression unless an identical one is present."""
        if expr in self._expr_set:
            return False
        self.exprs.append(expr)
        self._expr_set.add(expr)
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = " shared" if self.is_shared else ""
        return f"Group#{self.gid}{flags}[{'; '.join(map(str, self.exprs))}]"


class Memo:
    """The memo structure plus DAG bookkeeping helpers."""

    def __init__(self):
        self.groups: List[Group] = []
        self.root: Optional[int] = None
        # Value index for *rule-created* groups only (see module doc).
        self._value_index: Dict[GroupExpr, int] = {}
        self._parents_cache: Optional[Dict[int, Set[int]]] = None
        self._ref_counts: Optional[Dict[int, int]] = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_logical_plan(cls, plan: LogicalPlan) -> "Memo":
        """Ingest a logical DAG, one group per distinct DAG node."""
        memo = cls()
        mapping: Dict[int, int] = {}

        def visit(node: LogicalPlan) -> int:
            gid = mapping.get(id(node))
            if gid is not None:
                return gid
            child_gids = tuple(visit(c) for c in node.children)
            gid = memo._alloc_group(node.schema)
            memo.groups[gid].add_expr(GroupExpr(node.op, child_gids))
            mapping[id(node)] = gid
            return gid

        memo.root = visit(plan)
        return memo

    def _alloc_group(self, schema: Schema) -> int:
        gid = len(self.groups)
        self.groups.append(Group(gid, schema))
        self._parents_cache = None
        self._ref_counts = None
        return gid

    def group(self, gid: int) -> Group:
        return self.groups[gid]

    def add_expr_to_group(self, gid: int, expr: GroupExpr) -> bool:
        """Register a rule-produced alternative in an existing group."""
        added = self.group(gid).add_expr(expr)
        if added:
            # Initial-expression reference counts are unaffected: rule
            # alternatives never change a group's initial expression.
            self._parents_cache = None
        return added

    def get_or_create_group(self, op: LogicalOp, children: Tuple[int, ...],
                            schema: Schema) -> int:
        """Find or create a group for a rule-created expression."""
        expr = GroupExpr(op, children)
        gid = self._value_index.get(expr)
        if gid is not None:
            return gid
        gid = self._alloc_group(schema)
        self.groups[gid].add_expr(expr)
        self._value_index[expr] = gid
        return gid

    # -- DAG bookkeeping -------------------------------------------------

    def live_groups(self) -> List[Group]:
        return [g for g in self.groups if not g.dead]

    def parents_of(self, gid: int) -> Set[int]:
        """Groups having at least one expression referencing ``gid``."""
        if self._parents_cache is None:
            cache: Dict[int, Set[int]] = {g.gid: set() for g in self.groups}
            for group in self.groups:
                if group.dead:
                    continue
                for expr in group.exprs:
                    for child in expr.children:
                        cache[child].add(group.gid)
            self._parents_cache = cache
        return self._parents_cache[gid]

    def initial_reference_count(self, gid: int) -> int:
        """References to ``gid`` in the initial operator DAG.

        This is the execution multiplicity of a shared group: how many
        consumer edges will read its result in any complete plan.  Used
        by the engine's cost-based materialize-vs-recompute decision.
        """
        if self._ref_counts is None:
            counts: Dict[int, int] = {}
            for parent in self.reachable_from_root():
                for child in self.group(parent).initial_expr.children:
                    counts[child] = counts.get(child, 0) + 1
            self._ref_counts = counts
        return self._ref_counts.get(gid, 0)

    def reachable_from_root(self) -> Set[int]:
        """Group ids reachable from the root via any expression."""
        assert self.root is not None
        seen: Set[int] = set()
        stack = [self.root]
        while stack:
            gid = stack.pop()
            if gid in seen:
                continue
            seen.add(gid)
            for expr in self.group(gid).exprs:
                stack.extend(expr.children)
        return seen

    def operator_count(self) -> int:
        """Number of distinct operators in the initial DAG.

        Counts one (initial) expression per live, reachable group — the
        quantity the paper reports as "operators in the initial operator
        DAG" for LS1 (101) and LS2 (1034).
        """
        return len([g for g in self.reachable_from_root()
                    if not self.group(g).dead])

    # -- surgery used by Algorithm 1 --------------------------------------

    def redirect_references(self, old_gid: int, new_gid: int,
                            skip_group: Optional[int] = None) -> int:
        """Rewrite every child reference to ``old_gid`` into ``new_gid``.

        Returns the number of rewritten expressions.  ``skip_group``
        protects the freshly inserted SPOOL group from rewriting its own
        child pointer.
        """
        rewritten = 0
        for group in self.groups:
            if group.dead or group.gid == skip_group:
                continue
            changed = False
            new_exprs: List[GroupExpr] = []
            for expr in group.exprs:
                if old_gid in expr.children:
                    kids = tuple(
                        new_gid if c == old_gid else c for c in expr.children
                    )
                    expr = GroupExpr(expr.op, kids)
                    changed = True
                    rewritten += 1
                new_exprs.append(expr)
            if changed:
                group.exprs = []
                group._expr_set = set()
                for expr in new_exprs:
                    group.add_expr(expr)
        if self.root == old_gid:
            self.root = new_gid
        self._parents_cache = None
        self._ref_counts = None
        return rewritten

    def merge_group_into(self, dup_gid: int, keep_gid: int) -> None:
        """Remove a duplicate subexpression root, repointing consumers.

        Implements Algorithm 1 line 7: "Remove from M all but one of the
        subexpressions".
        """
        if dup_gid == keep_gid:
            return
        self.redirect_references(dup_gid, keep_gid)
        self.group(dup_gid).dead = True
        self._parents_cache = None
        self._ref_counts = None

    def insert_spool_above(self, gid: int) -> int:
        """Insert a SPOOL group on top of ``gid`` (Algorithm 1, line 8).

        All existing consumers are repointed to the new SPOOL group,
        which is marked shared.
        """
        spool_gid = self._alloc_group(self.group(gid).schema)
        self.redirect_references(gid, spool_gid, skip_group=spool_gid)
        self.group(spool_gid).add_expr(GroupExpr(LogicalSpool(), (gid,)))
        self.group(spool_gid).is_shared = True
        self._parents_cache = None
        self._ref_counts = None
        return spool_gid

    def shared_groups(self) -> List[Group]:
        return [g for g in self.live_groups() if g.is_shared]

    # -- debugging ---------------------------------------------------------

    def dump(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"root: {self.root}"]
        for group in self.groups:
            if group.dead:
                continue
            flags = " shared" if group.is_shared else ""
            exprs = "; ".join(str(e) for e in group.exprs)
            lines.append(f"  #{group.gid}{flags}: {exprs}")
        return "\n".join(lines)
