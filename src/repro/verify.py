"""Static plan-invariant verification (``repro.verify``).

The optimizer deliberately picks *locally sub-optimal* physical
properties for shared subexpressions (the paper's whole point), which
makes its plans easy to break subtly: a property-history entry enforced
at the wrong group, a compensation sort that never materializes, a
winner cached under a stale enforcement context — all of these produce
plans that look plausible and may even return correct results on small
data.  The runtime re-validates properties against *data* (see
``repro.exec.runtime``), but that safety net only fires for the rows a
test happens to generate.  This module is the static counterpart: it
walks any optimized physical DAG and independently re-derives and
checks every invariant the optimizer is supposed to maintain, *before*
execution.

Invariant catalog (see ``docs/verification.md`` for the full rationale):

===========================  ==============================================
``unresolved-column``        every column an operator references (predicate,
                             projection, keys, sort/partition columns)
                             resolves against its producer's schema
``schema-mismatch``          each node's output schema is the one its
                             operator derives from its children's schemas
``props-mismatch``           delivered physical properties equal the
                             properties independently re-derived bottom-up
``required-unsatisfied``     delivered partitioning/sorting satisfies the
                             requirement the node was optimized for,
                             including SCOPE's range-requirement subset rule
``input-precondition``       operator preconditions hold: stream aggregates
                             get sorted input, FULL/FINAL aggregations get
                             input partitioned on a subset of their keys,
                             FULL top-n and scalar aggregates get serial
                             input, sorted outputs get serial or
                             range-partitioned sorted input, merging
                             exchanges get sorted input
``join-colocation``          join inputs are compatibly partitioned
                             (serial+serial, or hash on aligned key subsets)
``spool-integrity``          spools pass properties through unchanged and
                             the DAG contains a single producer per
                             (shared group, required-properties) pair, so
                             every consumer reads the same materialization
``dop-mismatch``             the degree of parallelism changes only at
                             exchange boundaries (serial↔parallel
                             transitions inside a machine-local pipeline
                             are impossible to execute)
``invalid-estimate``         estimated rows / cost / self-cost are finite
                             and non-negative
===========================  ==============================================

Entry points::

    report = verify_plan(result.plan)      # -> VerificationReport
    check_plan(result.plan)                # raises PlanVerificationError

The verifier is wired into :func:`repro.api.optimize_script` (the
``verify`` flag, default controlled by :func:`set_default_verify` /
``REPRO_VERIFY``), into the CSE pipeline (every phase plan can be
self-checked), and into the ``repro verify`` CLI subcommand.
"""

from __future__ import annotations

import enum
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .plan.logical import GroupByMode
from .plan.physical import (
    PhysBroadcastJoin,
    PhysExtract,
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysicalPlan,
    PhysMerge,
    PhysMergeJoin,
    PhysOutput,
    PhysPassThrough,
    PhysProject,
    PhysRangeRepartition,
    PhysRepartition,
    PhysSequence,
    PhysSort,
    PhysSpool,
    PhysStreamAgg,
    PhysTopN,
    PhysUnionAll,
)
from .plan.properties import (
    PartitioningReq,
    PartitionKind,
    SortOrder,
)


class Invariant(enum.Enum):
    """The classes of invariant the verifier checks."""

    UNRESOLVED_COLUMN = "unresolved-column"
    SCHEMA_MISMATCH = "schema-mismatch"
    PROPS_MISMATCH = "props-mismatch"
    REQUIRED_UNSATISFIED = "required-unsatisfied"
    INPUT_PRECONDITION = "input-precondition"
    JOIN_COLOCATION = "join-colocation"
    SPOOL_INTEGRITY = "spool-integrity"
    DOP_MISMATCH = "dop-mismatch"
    INVALID_ESTIMATE = "invalid-estimate"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Violation:
    """One invariant violation, anchored to a specific plan node."""

    invariant: Invariant
    node_id: int
    operator: str
    message: str

    def __str__(self) -> str:
        return (
            f"[{self.invariant.value}] node#{self.node_id} "
            f"{self.operator}: {self.message}"
        )


@dataclass
class VerificationReport:
    """Outcome of one static verification pass over a plan DAG."""

    violations: List[Violation] = field(default_factory=list)
    nodes_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_invariant(self) -> Dict[Invariant, List[Violation]]:
        grouped: Dict[Invariant, List[Violation]] = {}
        for violation in self.violations:
            grouped.setdefault(violation.invariant, []).append(violation)
        return grouped

    def codes(self) -> Tuple[str, ...]:
        """The distinct violated invariant codes, sorted."""
        return tuple(sorted({v.invariant.value for v in self.violations}))

    def render(self) -> str:
        """Human-readable structured report (used by ``repro verify``)."""
        if self.ok:
            return (
                f"plan OK: {self.nodes_checked} nodes, "
                f"{len(Invariant)} invariant classes checked"
            )
        lines = [
            f"plan INVALID: {len(self.violations)} violation(s) over "
            f"{self.nodes_checked} nodes"
        ]
        for invariant, violations in sorted(
            self.by_invariant().items(), key=lambda kv: kv[0].value
        ):
            lines.append(f"  {invariant.value} ({len(violations)}):")
            for violation in violations:
                lines.append(
                    f"    node#{violation.node_id} {violation.operator}: "
                    f"{violation.message}"
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-serializable report for tooling."""
        return {
            "ok": self.ok,
            "nodes_checked": self.nodes_checked,
            "violations": [
                {
                    "invariant": v.invariant.value,
                    "node": v.node_id,
                    "operator": v.operator,
                    "message": v.message,
                }
                for v in self.violations
            ],
        }

    def raise_if_failed(self, context: str = "") -> None:
        if not self.ok:
            raise PlanVerificationError(self, context)


class PlanVerificationError(RuntimeError):
    """An optimized plan failed static invariant verification."""

    def __init__(self, report: VerificationReport, context: str = ""):
        self.report = report
        prefix = f"{context}: " if context else ""
        super().__init__(f"{prefix}{report.render()}")


#: Operators allowed to change the degree of parallelism (exchanges and
#: structural roots; everything else runs inside a machine-local
#: pipeline and must preserve its input's parallelism).
_DOP_EXEMPT = (
    PhysExtract,
    PhysRepartition,
    PhysRangeRepartition,
    PhysMerge,
    PhysOutput,
    PhysSequence,
    PhysUnionAll,
)

#: Enforcer operators the engine stacks *within* one memo group.  The
#: inner nodes of such a stack are intentionally partial (a repartition
#: below a compensating sort does not yet satisfy the sort requirement),
#: so the required-properties invariant applies to the top of the stack.
_ENFORCER_OPS = (PhysSort, PhysRepartition, PhysRangeRepartition, PhysMerge)


class _Verifier:
    """One verification pass; collects violations over a plan DAG."""

    def __init__(self, plan: PhysicalPlan):
        self.plan = plan
        self.report = VerificationReport()
        # Deterministic ids: pre-order position in the DAG walk.
        self.node_ids: Dict[int, int] = {}
        self.nodes: List[PhysicalPlan] = []
        for node in plan.iter_nodes():
            self.node_ids[id(node)] = len(self.nodes)
            self.nodes.append(node)
        self.parents: Dict[int, List[PhysicalPlan]] = {}
        for node in self.nodes:
            for child in node.children:
                self.parents.setdefault(id(child), []).append(node)

    # -- helpers -----------------------------------------------------------

    def _flag(self, invariant: Invariant, node: PhysicalPlan,
              message: str) -> None:
        self.report.violations.append(
            Violation(
                invariant=invariant,
                node_id=self.node_ids[id(node)],
                operator=node.op.name,
                message=message,
            )
        )

    def _check_columns(self, node: PhysicalPlan, columns, child_index: int,
                       what: str) -> None:
        child = node.children[child_index]
        missing = sorted(set(columns) - set(child.schema.names))
        if missing:
            self._flag(
                Invariant.UNRESOLVED_COLUMN,
                node,
                f"{what} references {missing} not produced by its input "
                f"(input schema: {list(child.schema.names)})",
            )

    # -- the pass ----------------------------------------------------------

    def run(self) -> VerificationReport:
        for node in self.nodes:
            self.report.nodes_checked += 1
            self._check_estimates(node)
            self._check_column_resolution(node)
            self._check_schema(node)
            self._check_derived_props(node)
            self._check_required(node)
            self._check_preconditions(node)
            self._check_join_colocation(node)
            self._check_dop(node)
        self._check_spools()
        return self.report

    # -- invalid-estimate --------------------------------------------------

    def _check_estimates(self, node: PhysicalPlan) -> None:
        for name in ("rows", "cost", "self_cost"):
            value = getattr(node, name)
            if not math.isfinite(value) or value < 0:
                self._flag(
                    Invariant.INVALID_ESTIMATE,
                    node,
                    f"estimated {name} is {value!r} "
                    f"(must be finite and non-negative)",
                )

    # -- unresolved-column -------------------------------------------------

    def _check_column_resolution(self, node: PhysicalPlan) -> None:
        op = node.op
        if isinstance(op, PhysFilter):
            self._check_columns(
                node, op.predicate.referenced_columns(), 0, "predicate"
            )
        elif isinstance(op, PhysProject):
            refs = set()
            for ne in op.exprs:
                refs |= ne.referenced_columns()
            self._check_columns(node, refs, 0, "projection")
        elif isinstance(op, PhysSort):
            self._check_columns(node, op.order.columns, 0, "sort order")
        elif isinstance(op, PhysRepartition):
            self._check_columns(
                node, set(op.columns) | set(op.merge_sort.columns), 0,
                "partitioning columns",
            )
        elif isinstance(op, PhysRangeRepartition):
            self._check_columns(
                node, set(op.order) | set(op.merge_sort.columns), 0,
                "range boundary columns",
            )
        elif isinstance(op, PhysMerge):
            self._check_columns(node, op.merge_sort.columns, 0, "merge order")
        elif isinstance(op, PhysStreamAgg):
            refs = set(op.key_order)
            for agg in op.aggregates:
                refs |= agg.referenced_columns()
            self._check_columns(node, refs, 0, "aggregation")
        elif isinstance(op, PhysHashAgg):
            refs = set(op.keys)
            for agg in op.aggregates:
                refs |= agg.referenced_columns()
            self._check_columns(node, refs, 0, "aggregation")
        elif isinstance(op, PhysTopN):
            self._check_columns(node, op.order_columns, 0, "top-n order")
        elif isinstance(op, (PhysMergeJoin, PhysHashJoin, PhysBroadcastJoin)):
            self._check_columns(node, op.left_keys, 0, "left join keys")
            self._check_columns(node, op.right_keys, 1, "right join keys")
        elif isinstance(op, PhysOutput):
            self._check_columns(node, op.sort_columns, 0, "output sort")

    # -- schema-mismatch ---------------------------------------------------

    def _check_schema(self, node: PhysicalPlan) -> None:
        op = node.op
        if isinstance(op, PhysExtract):
            if node.schema != op.schema:
                self._flag(
                    Invariant.SCHEMA_MISMATCH, node,
                    f"scan schema {list(node.schema.names)} differs from the "
                    f"extractor's schema {list(op.schema.names)}",
                )
            return
        if not node.children:
            return
        child = node.children[0]
        if isinstance(op, (PhysFilter, PhysSort, PhysSpool, PhysPassThrough,
                           PhysTopN, PhysRepartition, PhysRangeRepartition,
                           PhysMerge, PhysOutput)):
            if node.schema != child.schema:
                self._flag(
                    Invariant.SCHEMA_MISMATCH, node,
                    f"schema {list(node.schema.names)} differs from its "
                    f"input's schema {list(child.schema.names)} "
                    f"(operator preserves the schema)",
                )
        elif isinstance(op, PhysProject):
            expected = tuple(ne.alias for ne in op.exprs)
            if node.schema.names != expected:
                self._flag(
                    Invariant.SCHEMA_MISMATCH, node,
                    f"schema {list(node.schema.names)} differs from the "
                    f"projection aliases {list(expected)}",
                )
        elif isinstance(op, (PhysStreamAgg, PhysHashAgg)):
            keys = op.key_order if isinstance(op, PhysStreamAgg) else op.keys
            expected_names = set(keys) | {a.alias for a in op.aggregates}
            if set(node.schema.names) != expected_names:
                self._flag(
                    Invariant.SCHEMA_MISMATCH, node,
                    f"schema {list(node.schema.names)} differs from keys + "
                    f"aggregate aliases {sorted(expected_names)}",
                )
        elif isinstance(op, (PhysMergeJoin, PhysHashJoin, PhysBroadcastJoin)):
            left, right = node.children
            expected_set = set(left.schema.names) | set(right.schema.names)
            expected_len = len(left.schema) + len(right.schema)
            if (set(node.schema.names) != expected_set
                    or len(node.schema) != expected_len):
                self._flag(
                    Invariant.SCHEMA_MISMATCH, node,
                    f"schema {list(node.schema.names)} is not the "
                    f"concatenation of its inputs' schemas "
                    f"({list(left.schema.names)} ⊕ {list(right.schema.names)})",
                )
        elif isinstance(op, PhysUnionAll):
            arities = {len(c.schema) for c in node.children}
            if len(arities) > 1:
                self._flag(
                    Invariant.SCHEMA_MISMATCH, node,
                    f"UNION ALL inputs differ in arity: {sorted(arities)}",
                )
            elif node.schema != child.schema:
                self._flag(
                    Invariant.SCHEMA_MISMATCH, node,
                    f"schema {list(node.schema.names)} differs from the "
                    f"first input's schema {list(child.schema.names)}",
                )
        elif isinstance(op, PhysSequence):
            if len(node.schema) != 0:
                self._flag(
                    Invariant.SCHEMA_MISMATCH, node,
                    f"Sequence produces no rows but carries schema "
                    f"{list(node.schema.names)}",
                )

    # -- props-mismatch ----------------------------------------------------

    def _check_derived_props(self, node: PhysicalPlan) -> None:
        try:
            derived = node.op.derive_props([c.props for c in node.children])
        except (IndexError, ValueError) as exc:
            self._flag(
                Invariant.PROPS_MISMATCH, node,
                f"property derivation failed: {exc}",
            )
            return
        if derived != node.props:
            self._flag(
                Invariant.PROPS_MISMATCH, node,
                f"claims {node.props} but re-derivation from its inputs "
                f"gives {derived}",
            )

    # -- required-unsatisfied ----------------------------------------------

    def _is_enforcer_intermediate(self, node: PhysicalPlan) -> bool:
        """Inner node of a same-group enforcer/compensation stack?

        The engine builds enforcer chains (e.g. ``Sort`` over
        ``Repartition``) inside one memo group; only the chain's top must
        satisfy the group's requirement.  An inner node is recognized by
        a parent enforcer implementing the same group.
        """
        if node.group_id is None:
            return False
        return any(
            parent.group_id == node.group_id
            and isinstance(parent.op, _ENFORCER_OPS)
            for parent in self.parents.get(id(node), ())
        )

    def _check_required(self, node: PhysicalPlan) -> None:
        if node.required is None:
            return
        if node.props.satisfies(node.required):
            return
        if self._is_enforcer_intermediate(node):
            return
        self._flag(
            Invariant.REQUIRED_UNSATISFIED, node,
            f"delivers {node.props} which does not satisfy the required "
            f"properties {node.required} it was optimized for",
        )

    # -- input-precondition ------------------------------------------------

    def _require_sorted(self, node: PhysicalPlan, child_index: int,
                        order: SortOrder, what: str) -> None:
        child = node.children[child_index]
        if not child.props.sort_order.satisfies(order):
            self._flag(
                Invariant.INPUT_PRECONDITION, node,
                f"{what} requires input sorted on {order} but the input "
                f"delivers sort={child.props.sort_order}",
            )

    def _check_preconditions(self, node: PhysicalPlan) -> None:
        op = node.op
        if isinstance(op, PhysStreamAgg):
            self._require_sorted(
                node, 0, SortOrder(op.key_order), "stream aggregation"
            )
            if op.mode is not GroupByMode.LOCAL:
                self._check_grouping_partitioning(node, op.key_order)
        elif isinstance(op, PhysHashAgg):
            if op.mode is not GroupByMode.LOCAL:
                self._check_grouping_partitioning(node, op.keys)
        elif isinstance(op, PhysMergeJoin):
            self._require_sorted(
                node, 0, SortOrder(op.left_keys), "merge join (left)"
            )
            self._require_sorted(
                node, 1, SortOrder(op.right_keys), "merge join (right)"
            )
        elif isinstance(op, PhysBroadcastJoin):
            left = node.children[0]
            if left.props.partitioning.kind is PartitionKind.SERIAL:
                self._flag(
                    Invariant.INPUT_PRECONDITION, node,
                    "broadcast join over a serial left side replicates the "
                    "build side for no benefit (the optimizer never emits "
                    "this shape)",
                )
        elif isinstance(op, PhysTopN):
            if op.mode is not GroupByMode.LOCAL:
                child = node.children[0]
                if child.props.partitioning.kind is not PartitionKind.SERIAL:
                    self._flag(
                        Invariant.INPUT_PRECONDITION, node,
                        f"final top-{op.n} needs all rows in one partition "
                        f"but the input is {child.props.partitioning}",
                    )
        elif isinstance(op, PhysOutput) and op.sort_columns:
            child = node.children[0]
            order = SortOrder(op.sort_columns)
            self._require_sorted(node, 0, order, "sorted output")
            part = child.props.partitioning
            range_req = PartitioningReq.range_sorted(op.sort_columns)
            if not range_req.is_satisfied_by(part):
                self._flag(
                    Invariant.INPUT_PRECONDITION, node,
                    f"globally sorted output needs serial or range-"
                    f"partitioned input on a prefix of "
                    f"({','.join(op.sort_columns)}) but the input is {part}",
                )
        elif isinstance(op, (PhysRepartition, PhysRangeRepartition)):
            if op.merge_sort.is_sorted:
                self._require_sorted(
                    node, 0, op.merge_sort, "merging exchange"
                )
        elif isinstance(op, PhysMerge):
            if op.merge_sort.is_sorted:
                self._require_sorted(node, 0, op.merge_sort, "sorted gather")

    def _check_grouping_partitioning(self, node: PhysicalPlan, keys) -> None:
        """FULL/FINAL aggregation: input partitioned on a subset of keys.

        This is SCOPE's ``[∅, keys]`` range requirement — the subset rule
        that lets a shared subexpression partitioned on ``{B}`` feed both
        an ``{A,B}`` and a ``{B,C}`` grouping (paper, Figure 1).
        """
        child = node.children[0]
        part = child.props.partitioning
        if not keys:
            if part.kind is not PartitionKind.SERIAL:
                self._flag(
                    Invariant.INPUT_PRECONDITION, node,
                    f"scalar aggregation needs a single partition but the "
                    f"input is {part}",
                )
            return
        if not part.partitioned_on(keys):
            self._flag(
                Invariant.INPUT_PRECONDITION, node,
                f"grouping on ({','.join(keys)}) needs input partitioned on "
                f"a subset of the keys (or serial) but the input is {part}",
            )

    # -- join-colocation ---------------------------------------------------

    def _check_join_colocation(self, node: PhysicalPlan) -> None:
        op = node.op
        if not isinstance(op, (PhysMergeJoin, PhysHashJoin)):
            return
        left = node.children[0].props.partitioning
        right = node.children[1].props.partitioning
        if (left.kind is PartitionKind.SERIAL
                and right.kind is PartitionKind.SERIAL):
            return
        if (left.kind is PartitionKind.HASH
                and right.kind is PartitionKind.HASH):
            mapping = dict(zip(op.left_keys, op.right_keys))
            if not left.columns <= set(mapping):
                self._flag(
                    Invariant.JOIN_COLOCATION, node,
                    f"left input is partitioned on {sorted(left.columns)} "
                    f"which is not a subset of the join keys "
                    f"{sorted(set(op.left_keys))}",
                )
                return
            expected = frozenset(mapping[c] for c in left.columns)
            if right.columns != expected:
                self._flag(
                    Invariant.JOIN_COLOCATION, node,
                    f"inputs are not co-partitioned: left on "
                    f"{sorted(left.columns)} maps to {sorted(expected)} but "
                    f"the right input is partitioned on "
                    f"{sorted(right.columns)}",
                )
            return
        self._flag(
            Invariant.JOIN_COLOCATION, node,
            f"incompatible input layouts: left={left} right={right} "
            f"(need serial+serial or aligned hash+hash)",
        )

    # -- dop-mismatch ------------------------------------------------------

    def _check_dop(self, node: PhysicalPlan) -> None:
        op = node.op
        if isinstance(op, _DOP_EXEMPT) or not node.children:
            return
        parallel = node.props.partitioning.is_parallel
        if isinstance(op, (PhysMergeJoin, PhysHashJoin)):
            left, right = node.children
            if (left.props.partitioning.is_parallel
                    != right.props.partitioning.is_parallel):
                self._flag(
                    Invariant.DOP_MISMATCH, node,
                    f"join inputs disagree on parallelism: "
                    f"left={left.props.partitioning} "
                    f"right={right.props.partitioning}",
                )
            reference = left.props.partitioning.is_parallel
        elif isinstance(op, PhysBroadcastJoin):
            # The replicated right side is an exchange; only the left
            # (pass-through) side pins the node's parallelism.
            reference = node.children[0].props.partitioning.is_parallel
        else:
            reference = node.children[0].props.partitioning.is_parallel
        if parallel != reference:
            self._flag(
                Invariant.DOP_MISMATCH, node,
                f"parallelism changes at a non-exchange operator: input is "
                f"{'parallel' if reference else 'serial'} but the operator "
                f"delivers {'parallel' if parallel else 'serial'} "
                f"{node.props.partitioning}",
            )

    # -- spool-integrity ---------------------------------------------------

    def _check_spools(self) -> None:
        producers: Dict[Tuple, PhysicalPlan] = {}
        for node in self.nodes:
            if not isinstance(node.op, PhysSpool):
                continue
            child = node.children[0]
            if node.props != child.props:
                self._flag(
                    Invariant.SPOOL_INTEGRITY, node,
                    f"spool must pass its input's properties through "
                    f"unchanged but claims {node.props} over "
                    f"{child.props}",
                )
            if node.group_id is None:
                continue
            key = (node.group_id, node.required)
            other = producers.get(key)
            if other is not None:
                self._flag(
                    Invariant.SPOOL_INTEGRITY, node,
                    f"duplicate spool for shared group #{node.group_id} "
                    f"under {node.required}: node#{self.node_ids[id(other)]} "
                    f"already materializes it (consumers would build the "
                    f"result twice)",
                )
            else:
                producers[key] = node


def verify_plan(plan: PhysicalPlan) -> VerificationReport:
    """Statically verify a physical plan DAG; returns the full report."""
    return _Verifier(plan).run()


def check_plan(plan: PhysicalPlan, context: str = "") -> PhysicalPlan:
    """Verify ``plan``; raise :class:`PlanVerificationError` on violations.

    Returns the plan unchanged so it can be used inline::

        return check_plan(engine.optimize(...), "phase 1")
    """
    verify_plan(plan).raise_if_failed(context)
    return plan


# ---------------------------------------------------------------------------
# Default-verification switch (used by repro.api and the test suite)
# ---------------------------------------------------------------------------

_default_verify = os.environ.get("REPRO_VERIFY", "") not in ("", "0", "false")


def set_default_verify(enabled: bool) -> None:
    """Globally default ``optimize_script(..., verify=None)`` to ``enabled``.

    The test suite turns this on (see ``tests/conftest.py``), so every
    plan any test optimizes is statically verified; ``REPRO_VERIFY=1``
    does the same for ad-hoc runs.
    """
    global _default_verify
    _default_verify = bool(enabled)


def default_verify() -> bool:
    """Current default for the ``verify`` flag of the optimize entrypoints."""
    return _default_verify


def verify_enabled(override: "Optional[bool]" = None) -> bool:
    """Resolve a per-call ``verify`` override against the global default.

    This is the one place the tri-state contract lives: ``None`` defers
    to :func:`default_verify`, anything else wins.  Every code path that
    hands a plan to a caller — fresh optimization *and* plan-cache hits
    — resolves through here, so the test suite's autouse default covers
    them all identically.
    """
    return _default_verify if override is None else bool(override)


def maybe_check_plan(plan: PhysicalPlan, context: str = "",
                     verify: "Optional[bool]" = None) -> PhysicalPlan:
    """:func:`check_plan` gated by :func:`verify_enabled`.

    Used by the service's cache-hit path so cached plans are re-checked
    under exactly the same switch as freshly optimized ones.
    """
    if verify_enabled(verify):
        check_plan(plan, context)
    return plan
