"""Naive single-node reference evaluator — the correctness oracle.

Evaluates a *logical* plan DAG directly over in-memory rows, with no
optimizer and no distribution.  Tests compare its per-output results
against executing the optimized physical plans on the simulated cluster:
if the optimizer or the runtime mishandles properties, splits, spools or
enforcement, the multisets differ and the test fails.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .exec.datasets import canonical_sort_key
from .plan.expressions import Row, Value
from .plan.logical import (
    GroupByMode,
    JoinKind,
    LogicalExtract,
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOutput,
    LogicalPlan,
    LogicalProject,
    LogicalSequence,
    LogicalSpool,
    LogicalTopN,
    LogicalUnionAll,
)


class NaiveEvaluator:
    """Evaluates logical DAGs over ``{path: [row dict, ...]}`` inputs."""

    def __init__(self, files: Dict[str, List[Row]]):
        self._files = files
        self._cache: Dict[int, List[Row]] = {}
        self._outputs_with_schema: Dict[str, Tuple] = {}

    def run(self, plan: LogicalPlan) -> Dict[str, List[Tuple[Value, ...]]]:
        """Evaluate the whole script; returns canonical rows per output.

        Rows are tuples in output-schema order, sorted, so results can be
        compared directly with ``Dataset.sorted_rows()``.
        """
        self._outputs_with_schema.clear()
        self._cache.clear()
        self._eval(plan)
        canonical: Dict[str, List[Tuple[Value, ...]]] = {}
        for path, (schema, rows) in self._outputs_with_schema.items():
            names = schema.names
            tuples = [tuple(row[c] for c in names) for row in rows]
            canonical[path] = sorted(tuples, key=canonical_sort_key)
        return canonical

    def _eval(self, node: LogicalPlan) -> List[Row]:
        cached = self._cache.get(id(node))
        if cached is not None:
            return cached
        op = node.op
        if isinstance(op, LogicalExtract):
            rows = [
                {c: row[c] for c in op.schema.names}
                for row in self._files[op.path]
            ]
        elif isinstance(op, LogicalFilter):
            rows = [
                row
                for row in self._eval(node.children[0])
                if op.predicate.evaluate(row)
            ]
        elif isinstance(op, LogicalProject):
            rows = [
                {ne.alias: ne.expr.evaluate(row) for ne in op.exprs}
                for row in self._eval(node.children[0])
            ]
        elif isinstance(op, LogicalGroupBy):
            if op.mode is not GroupByMode.FULL:
                raise ValueError(
                    "the naive evaluator runs pre-optimization DAGs only"
                )
            rows = self._group_by(op, self._eval(node.children[0]))
        elif isinstance(op, LogicalJoin):
            rows = self._join(op, node)
        elif isinstance(op, LogicalUnionAll):
            rows = []
            for child in node.children:
                rows.extend(self._eval(child))
        elif isinstance(op, LogicalTopN):
            if op.mode is not GroupByMode.FULL:
                raise ValueError(
                    "the naive evaluator runs pre-optimization DAGs only"
                )
            child_rows = self._eval(node.children[0])
            names = node.schema.names
            tiebreak = [c for c in names if c not in op.order_columns]
            key_cols = list(op.order_columns) + tiebreak
            rows = sorted(
                child_rows,
                key=lambda row: tuple(
                    (row[c] is None, row[c]) for c in key_cols
                ),
            )[: op.n]
        elif isinstance(op, LogicalSpool):
            rows = self._eval(node.children[0])
        elif isinstance(op, LogicalOutput):
            rows = self._eval(node.children[0])
            self._outputs_with_schema[op.path] = (node.schema, rows)
        elif isinstance(op, LogicalSequence):
            for child in node.children:
                self._eval(child)
            rows = []
        else:  # pragma: no cover - exhaustive over the logical algebra
            raise TypeError(f"naive evaluator: unsupported {type(op).__name__}")
        self._cache[id(node)] = rows
        return rows

    def _group_by(self, op: LogicalGroupBy, rows: List[Row]) -> List[Row]:
        groups: Dict[Tuple, List] = {}
        for row in rows:
            key = tuple(row[c] for c in op.keys)
            states = groups.get(key)
            if states is None:
                states = [agg.init_state() for agg in op.aggregates]
            groups[key] = [
                agg.accumulate(state, row)
                for agg, state in zip(op.aggregates, states)
            ]
        out: List[Row] = []
        for key, states in groups.items():
            row: Row = dict(zip(op.keys, key))
            for agg, state in zip(op.aggregates, states):
                row[agg.alias] = agg.finalize(state)
            out.append(row)
        return out

    def _join(self, op: LogicalJoin, node: LogicalPlan) -> List[Row]:
        left = self._eval(node.children[0])
        right = self._eval(node.children[1])
        table: Dict[Tuple, List[Row]] = {}
        for row in right:
            table.setdefault(tuple(row[c] for c in op.right_keys), []).append(row)
        padding = {c: None for c in node.children[1].schema.names}
        out: List[Row] = []
        for row in left:
            key = tuple(row[c] for c in op.left_keys)
            matches = () if None in key else table.get(key, ())
            if matches:
                for match in matches:
                    out.append({**row, **match})
            elif op.kind is JoinKind.LEFT:
                out.append({**row, **padding})
        return out
