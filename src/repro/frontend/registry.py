"""Dialect registry: name -> (parse, compile) plus auto-detection.

Every language frontend registers one :class:`Dialect`; callers compile
any script through :func:`compile_text` without caring which language
it is written in.  ``dialect="auto"`` resolves by file extension first
(``.sql`` -> sql) and otherwise by content: a script whose first
keyword is ``SELECT`` or ``WITH`` is SQL (SCOPE statements always start
with ``name =`` or ``OUTPUT``).

The built-in dialects are registered lazily on first use so importing
either frontend never has to import the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .errors import FrontendError


@dataclass(frozen=True)
class Dialect:
    """One registered query language."""

    name: str
    description: str
    #: File extensions (with the dot) that auto-detect to this dialect.
    extensions: Tuple[str, ...]
    #: ``parse(text) -> AST`` (dialect-specific node types).
    parse: Callable
    #: ``compile(text, catalog, tracer=None) -> LogicalPlan``.
    compile: Callable


_REGISTRY: Dict[str, Dialect] = {}
_BUILTINS_LOADED = False


def register_dialect(dialect: Dialect) -> Dialect:
    _REGISTRY[dialect.name] = dialect
    return dialect


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from ..scope.compiler import compile_script
    from ..scope.parser import parse as parse_scope
    from ..sql.compiler import compile_sql
    from ..sql.parser import parse_sql

    register_dialect(Dialect(
        name="scope",
        description="SCOPE script subset (the paper's language)",
        extensions=(".scope", ".script"),
        parse=parse_scope,
        compile=compile_script,
    ))
    register_dialect(Dialect(
        name="sql",
        description="SQL subset with WITH-clause CTE sharing",
        extensions=(".sql",),
        parse=parse_sql,
        compile=compile_sql,
    ))


def get_dialect(name: str) -> Dialect:
    _ensure_builtins()
    dialect = _REGISTRY.get(name)
    if dialect is None:
        raise FrontendError(
            f"unknown dialect {name!r} "
            f"(available: {', '.join(dialect_names())})"
        )
    return dialect


def dialect_names() -> Tuple[str, ...]:
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def detect_dialect(text: Optional[str] = None,
                   path: Optional[str] = None) -> str:
    """Resolve "auto" to a concrete dialect name.

    The extension wins when ``path`` carries a registered one; otherwise
    the script content decides: skipping blank and comment lines
    (``//`` and ``--``), a first keyword of ``SELECT`` or ``WITH`` means
    SQL, anything else (``name =``, ``OUTPUT``) means SCOPE.
    """
    _ensure_builtins()
    if path is not None:
        lowered = path.lower()
        for dialect in _REGISTRY.values():
            if lowered.endswith(dialect.extensions):
                return dialect.name
    if text is not None:
        for line in text.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith(("//", "--")):
                continue
            first = stripped.split(None, 1)[0].upper()
            return "sql" if first in ("SELECT", "WITH") else "scope"
    return "scope"


def resolve_dialect(dialect: str, text: Optional[str] = None,
                    path: Optional[str] = None) -> str:
    """Validate ``dialect``, resolving "auto" via :func:`detect_dialect`."""
    if dialect == "auto":
        return detect_dialect(text=text, path=path)
    return get_dialect(dialect).name


def compile_text(text: str, catalog, dialect: str = "auto",
                 tracer=None, path: Optional[str] = None):
    """Compile ``text`` under the named (or detected) dialect.

    Returns the logical DAG; everything downstream of the frontends —
    CSE detection, optimization, verification, caching, execution — is
    dialect-independent.
    """
    name = resolve_dialect(dialect, text=text, path=path)
    return get_dialect(name).compile(text, catalog, tracer=tracer)
