"""Frontend layer shared by the query-language dialects.

``repro.frontend.errors`` carries the common diagnostic machinery —
every dialect error is a :class:`FrontendError`, located errors render
identical source excerpts — and ``repro.frontend.registry`` maps
dialect names ("scope", "sql") to their parse/compile entry points,
with extension- and content-based auto-detection.
"""

from .errors import (
    FrontendError,
    LocatedError,
    format_diagnostic,
    render_excerpt,
)
from .registry import (
    Dialect,
    compile_text,
    detect_dialect,
    dialect_names,
    get_dialect,
    register_dialect,
    resolve_dialect,
)

__all__ = [
    "Dialect",
    "FrontendError",
    "LocatedError",
    "compile_text",
    "detect_dialect",
    "dialect_names",
    "format_diagnostic",
    "get_dialect",
    "register_dialect",
    "render_excerpt",
]
