"""Shared frontend error types and diagnostic rendering.

Both language frontends (``repro.scope``, ``repro.sql``) raise errors
rooted here, so callers can catch one base class and every dialect's
lex/parse errors render the *same* source excerpt::

    parse error at 2:8: expected FROM, found 'WHER'
      2 | SELECT a WHER b = 1
        |        ^

The excerpt format is pinned by ``tests/test_frontend_errors.py`` —
change it deliberately, in one place, for every dialect at once.
"""

from __future__ import annotations

from typing import Optional


class FrontendError(Exception):
    """Base class for all query-frontend errors (any dialect)."""


class LocatedError(FrontendError):
    """A frontend error that points at a source position.

    Subclasses set ``kind`` ("lex error", "parse error", ...); the
    formatted message is ``"{kind} at {line}:{column}: {message}"`` so
    existing callers matching on the string keep working.  ``source``
    (the full script text) is optional; when attached,
    :func:`format_diagnostic` appends the offending line with a caret.
    """

    kind = "error"

    def __init__(self, message: str, line: int, column: int,
                 source: Optional[str] = None):
        super().__init__(f"{self.kind} at {line}:{column}: {message}")
        self.message = message
        self.line = line
        self.column = column
        self.source = source


def render_excerpt(source: str, line: int, column: int) -> str:
    """The offending source line with a caret under ``column``.

    Returns an empty string when the position falls outside ``source``
    (a defensive frontend bug should not mask the original error).
    """
    lines = source.splitlines()
    if not 1 <= line <= len(lines):
        return ""
    text = lines[line - 1]
    gutter = str(line)
    caret_pad = " " * max(0, min(column, len(text) + 1) - 1)
    return (
        f"  {gutter} | {text}\n"
        f"  {' ' * len(gutter)} | {caret_pad}^"
    )


def format_diagnostic(error: FrontendError,
                      source: Optional[str] = None) -> str:
    """One-stop diagnostic: the message plus a source excerpt.

    ``source`` overrides any text attached to the error; non-located
    errors (resolution, catalog) render as their message alone.
    """
    text = str(error)
    if not isinstance(error, LocatedError):
        return text
    script = source if source is not None else error.source
    if script is None:
        return text
    excerpt = render_excerpt(script, error.line, error.column)
    return f"{text}\n{excerpt}" if excerpt else text
