"""Synthetic large scripts with the published shape of LS1 and LS2.

The paper evaluates two Microsoft-internal log-analysis scripts:

* **LS1** — 101 operators in the initial operator DAG, 4 shared groups
  (3 with two consumers, 1 with three);
* **LS2** — 1034 operators, 17 shared groups (15 with two consumers, one
  with four, one with five).

Those scripts are proprietary, so we generate scripts that reproduce the
*published* structure exactly: per shared relation, an extraction from
its own log, a chain of filtering stages (the "initial processing" the
paper describes), a shared aggregation consumed by several differently-
keyed aggregations, and one output per consumer.  Operator counts are
arithmetic in the generator parameters and are asserted in tests against
``Memo.operator_count()``.

Each pipeline uses its own input file; otherwise the extraction stages
of different pipelines would themselves be common subexpressions and the
shared-group count would not match the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..plan.columns import ColumnType
from ..scope.catalog import Catalog

#: Columns of every generated log file.
LOG_COLUMNS = ("U", "Q", "T", "L")

#: Grouping-key subsets used round-robin by the consumers of a shared
#: relation; distinct keys per consumer create the conflicting
#: partitioning requirements the paper's phase 2 reconciles.
CONSUMER_KEYS: Tuple[Tuple[str, ...], ...] = (
    ("U", "Q"),
    ("Q", "T"),
    ("U", "T"),
    ("U",),
    ("Q",),
    ("T",),
)


@dataclass
class LargeScriptSpec:
    """Parameters of one generated script.

    A script consists of *shared* pipelines (extract → filter chain →
    shared aggregation → several differently-keyed consumers → outputs)
    and *unshared* pipelines (extract → filter chain → aggregation →
    output).  The unshared pipelines model the bulk of a real script
    that the CSE machinery cannot improve; their weight is what places a
    script's overall saving inside the paper's 21–57% band.
    """

    name: str
    #: Consumers per shared relation, e.g. LS1 = (2, 2, 2, 3).
    shared_consumers: Tuple[int, ...]
    #: Filtering stages between each extract and its shared aggregation.
    pre_chain: Tuple[int, ...]
    #: Filtering-chain length of each unshared pipeline.
    unshared_chains: Tuple[int, ...] = ()
    rows_per_log: int = 50_000_000
    #: Row count of the unshared pipelines' logs (dilutes the savings).
    rows_per_unshared_log: int = 50_000_000
    ndv: Dict[str, int] = field(
        default_factory=lambda: {"U": 40, "Q": 40, "T": 40, "L": 1_000_000}
    )

    def operator_count(self) -> int:
        """Operators in the initial DAG this spec compiles to.

        Shared pipeline: 1 extract + chain filters + 1 shared group-by +
        per consumer (1 group-by + 1 output).  Unshared pipeline:
        1 extract + chain filters + 1 group-by + 1 output.  Plus the
        Sequence root.
        """
        total = 1  # Sequence
        for consumers, chain in zip(self.shared_consumers, self.pre_chain):
            total += 1 + chain + 1 + 2 * consumers
        for chain in self.unshared_chains:
            total += 3 + chain
        return total


def _pipeline_text(index: int, consumers: int, chain: int) -> List[str]:
    log = f"log{index}.data"
    lines = [
        f'P{index}_0 = EXTRACT U,Q,T,L FROM "{log}" USING LogExtractor;'
    ]
    prev = f"P{index}_0"
    for stage in range(1, chain + 1):
        # Distinct predicates keep the chain stages structurally distinct
        # (identical stages would be found by the fingerprint step and
        # change the shared-group count).
        current = f"P{index}_{stage}"
        lines.append(
            f"{current} = SELECT U,Q,T,L FROM {prev} WHERE L > {stage};"
        )
        prev = current
    shared = f"R{index}"
    lines.append(
        f"{shared} = SELECT U,Q,T,Sum(L) AS SL FROM {prev} GROUP BY U,Q,T;"
    )
    for consumer in range(consumers):
        keys = CONSUMER_KEYS[consumer % len(CONSUMER_KEYS)]
        key_list = ",".join(keys)
        target = f"C{index}_{consumer}"
        lines.append(
            f"{target} = SELECT {key_list},Sum(SL) AS S{consumer} "
            f"FROM {shared} GROUP BY {key_list};"
        )
        lines.append(f'OUTPUT {target} TO "out_{index}_{consumer}.out";')
    return lines


def _unshared_pipeline_text(index: int, chain: int) -> List[str]:
    log = f"ulog{index}.data"
    lines = [
        f'W{index}_0 = EXTRACT U,Q,T,L FROM "{log}" USING LogExtractor;'
    ]
    prev = f"W{index}_0"
    for stage in range(1, chain + 1):
        current = f"W{index}_{stage}"
        lines.append(
            f"{current} = SELECT U,Q,T,L FROM {prev} WHERE L > {stage};"
        )
        prev = current
    keys = CONSUMER_KEYS[index % len(CONSUMER_KEYS)]
    key_list = ",".join(keys)
    lines.append(
        f"WAGG{index} = SELECT {key_list},Sum(L) AS SL FROM {prev} "
        f"GROUP BY {key_list};"
    )
    lines.append(f'OUTPUT WAGG{index} TO "uout_{index}.out";')
    return lines


def build_script(spec: LargeScriptSpec) -> str:
    """Render the SCOPE script text for ``spec``."""
    if len(spec.pre_chain) != len(spec.shared_consumers):
        raise ValueError("pre_chain and shared_consumers lengths must match")
    lines: List[str] = []
    for index, (consumers, chain) in enumerate(
        zip(spec.shared_consumers, spec.pre_chain)
    ):
        lines.extend(_pipeline_text(index, consumers, chain))
    for index, chain in enumerate(spec.unshared_chains):
        lines.extend(_unshared_pipeline_text(index, chain))
    return "\n".join(lines) + "\n"


def build_catalog(spec: LargeScriptSpec) -> Catalog:
    """Catalog registering every log file the script extracts."""
    catalog = Catalog()
    columns = [(name, ColumnType.INT) for name in LOG_COLUMNS]
    for index in range(len(spec.shared_consumers)):
        catalog.register_file(
            f"log{index}.data",
            columns,
            rows=spec.rows_per_log,
            ndv=dict(spec.ndv),
        )
    for index in range(len(spec.unshared_chains)):
        catalog.register_file(
            f"ulog{index}.data",
            columns,
            rows=spec.rows_per_unshared_log,
            ndv=dict(spec.ndv),
        )
    return catalog


def _chain_lengths(total_pre: int, pipelines: int) -> Tuple[int, ...]:
    base = total_pre // pipelines
    extra = total_pre % pipelines
    return tuple(base + (1 if i < extra else 0) for i in range(pipelines))


def ls1_spec() -> LargeScriptSpec:
    """LS1: 101 operators, 4 shared groups (3×2 consumers, 1×3).

    Six unshared pipelines over larger logs dilute the sharing benefit
    to the paper's reported ≈21% saving.
    """
    consumers = (2, 2, 2, 3)
    # Shared part: Σ (2 + 2 + 2·c_i) = 34 operators.  Sequence: 1.
    # Unshared part: 6 pipelines × (3 + 8) = 66.  Total = 101.
    spec = LargeScriptSpec(
        name="LS1",
        shared_consumers=consumers,
        pre_chain=(2, 2, 2, 2),
        unshared_chains=(8,) * 6,
        rows_per_unshared_log=460_000_000,
    )
    assert spec.operator_count() == 101
    return spec


def ls2_spec() -> LargeScriptSpec:
    """LS2: 1034 operators, 17 shared groups (15×2, 1×4, 1×5).

    29 unshared pipelines over smaller logs land the overall saving near
    the paper's ≈45%.
    """
    consumers = tuple([2] * 15 + [4, 5])
    # Shared part: Σ (2 + 2 + 2·c_i) = 146 operators.  Sequence: 1.
    # Unshared part: 29 pipelines, chains summing to 800 → 887.
    spec = LargeScriptSpec(
        name="LS2",
        shared_consumers=consumers,
        pre_chain=(2,) * 17,
        unshared_chains=_chain_lengths(800, 29),
        rows_per_unshared_log=53_000_000,
    )
    assert spec.operator_count() == 1034
    return spec


LARGE_SPECS = {"LS1": ls1_spec, "LS2": ls2_spec}


def make_large_script(name: str) -> Tuple[str, Catalog, LargeScriptSpec]:
    """Script text + catalog + spec for ``"LS1"`` or ``"LS2"``."""
    spec = LARGE_SPECS[name]()
    return build_script(spec), build_catalog(spec), spec
