"""The Figure 7 harness: estimated costs with and without CSE.

Reproduces the paper's main result table: for every evaluation script
(S1–S4, LS1, LS2), the estimated plan cost under conventional
optimization and under the CSE-exploiting optimizer, plus the ratio.
The paper's measured ratios are included for comparison:

========  =========================  ==============
script    paper estimated costs      paper ratio
========  =========================  ==============
S1        8185 → 5037                 62%
S2        (bar chart)                 45%
S3        (bar chart)                 55%
S4        (bar chart)                 43%
LS1       (bar chart)                 79%
LS2       (bar chart, /10 scale)      55%
========  =========================  ==============

Absolute numbers are not comparable (our substrate is a simulator with
its own cost units); the ratios and their ordering are the reproduction
target.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..api import optimize_script
from ..cse.pipeline import optimize_local_best
from ..optimizer.cost import CostParams
from ..optimizer.engine import OptimizerConfig
from ..plan.pruning import prune_columns
from ..scope.compiler import compile_script
from .large_scripts import make_large_script
from .paper_scripts import PAPER_SCRIPTS, make_catalog

#: Cost ratio (CSE / conventional) the paper reports per script.
PAPER_RATIOS: Dict[str, float] = {
    "S1": 0.62,
    "S2": 0.45,
    "S3": 0.55,
    "S4": 0.43,
    "LS1": 0.79,
    "LS2": 0.55,
}

#: Optimization time budget per script (paper, Section IX).
BUDGETS: Dict[str, Optional[float]] = {
    "S1": None,
    "S2": None,
    "S3": None,
    "S4": None,
    "LS1": 30.0,
    "LS2": 60.0,
}

#: Cluster size used for the estimated-cost runs.
FIGURE7_MACHINES = 25


@dataclass
class Figure7Row:
    """One row of the Figure 7 table."""

    script: str
    conventional_cost: float
    cse_cost: float
    paper_ratio: float
    rounds: int
    optimize_seconds: float
    #: Cost under the related-work baseline (share with locally optimal
    #: properties; see ``repro.cse.pipeline.optimize_local_best``), or
    #: ``None`` when not measured.
    local_best_cost: Optional[float] = None

    @property
    def ratio(self) -> float:
        return self.cse_cost / self.conventional_cost

    @property
    def saving_pct(self) -> float:
        return 100.0 * (1.0 - self.ratio)


def _config(script: str) -> OptimizerConfig:
    return OptimizerConfig(
        cost_params=CostParams(machines=FIGURE7_MACHINES),
        budget_seconds=BUDGETS.get(script),
    )


def run_script(script: str, include_local_best: bool = False) -> Figure7Row:
    """Optimize one evaluation script both ways and report the row.

    With ``include_local_best`` the related-work sharing baseline is
    measured as well (slower: one more full optimization).
    """
    if script in PAPER_SCRIPTS:
        text = PAPER_SCRIPTS[script]
        catalog = make_catalog()
    else:
        text, catalog, _spec = make_large_script(script)
    config = _config(script)
    start = time.perf_counter()
    conventional = optimize_script(text, catalog, config, exploit_cse=False)
    cse = optimize_script(text, catalog, config, exploit_cse=True)
    elapsed = time.perf_counter() - start
    local_cost = None
    if include_local_best:
        logical = prune_columns(compile_script(text, catalog))
        local_cost = optimize_local_best(logical, catalog, config).cost
    return Figure7Row(
        script=script,
        conventional_cost=conventional.cost,
        cse_cost=cse.cost,
        paper_ratio=PAPER_RATIOS[script],
        rounds=cse.details.engine.stats.rounds,
        optimize_seconds=elapsed,
        local_best_cost=local_cost,
    )


def run_all(scripts: Optional[List[str]] = None,
            include_local_best: bool = False) -> List[Figure7Row]:
    names = scripts or ["S1", "S2", "S3", "S4", "LS1", "LS2"]
    return [run_script(name, include_local_best) for name in names]


def format_table(rows: List[Figure7Row]) -> str:
    """Render the Figure 7 table the way the paper's bar chart reads."""
    with_local = any(row.local_best_cost is not None for row in rows)
    header = (
        f"{'script':<7}{'conventional':>16}"
        + (f"{'local-best':>16}" if with_local else "")
        + f"{'with CSE':>16}"
        f"{'ratio':>8}{'paper':>8}{'saving':>9}{'rounds':>8}{'opt(s)':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        local = ""
        if with_local:
            local = (
                f"{row.local_best_cost:>16,.0f}"
                if row.local_best_cost is not None
                else f"{'-':>16}"
            )
        lines.append(
            f"{row.script:<7}{row.conventional_cost:>16,.0f}{local}"
            f"{row.cse_cost:>16,.0f}{row.ratio:>8.2f}{row.paper_ratio:>8.2f}"
            f"{row.saving_pct:>8.0f}%{row.rounds:>8}{row.optimize_seconds:>8.2f}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table(run_all()))


if __name__ == "__main__":  # pragma: no cover
    main()
