"""A star-join SQL workload: retail facts against four dimensions.

The corpus behind the SQL frontend's regression suite: a fact table
(``store_sales``) with date, customer, item and store dimensions, ten
SQL queries exercising every frontend feature (CTE sharing, UNION ALL
channels, star joins, HAVING, TopN, COUNT DISTINCT, LEFT joins), and
hand-translated SCOPE twins for a subset — the differential tests prove
both dialects compile to byte-identical plans and outputs.

Query design notes:

* ``Q02``/``Q07`` spell the *same* CTE text with different consumers —
  batched together, the fingerprint step merges the two subtrees into
  one shared spool serving both queries.
* ``Q01`` and ``Q09`` reference one CTE from both UNION ALL branches —
  explicit sharing within a single statement.
* A slice of the fact rows carries a ``DateSk`` beyond the date
  dimension, so ``Q10``'s LEFT join actually pads.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..plan.expressions import Row
from ..scope.catalog import Catalog
from ..scope.statistics import register_data

#: Dimension sizes; DateSk values above N_DATES miss the dimension.
N_DATES = 730
N_CUSTOMERS = 400
N_ITEMS = 120
N_STORES = 12

STARJOIN_QUERIES: Dict[str, str] = {
    # One CTE, two channels: category revenue and brand revenue from the
    # same per-item aggregate (the paper's shared-spool motif).
    "q01_item_channels": """
WITH sales_by_item AS (
  SELECT ItemSk, SUM(Qty) AS units, SUM(Net) AS revenue
  FROM store_sales
  GROUP BY ItemSk
)
SELECT Category AS grp, SUM(revenue) AS revenue
FROM sales_by_item AS s JOIN item AS i ON s.ItemSk = i.ItemSk
GROUP BY Category
UNION ALL
SELECT Brand AS grp, SUM(revenue) AS revenue
FROM sales_by_item AS s JOIN item AS i ON s.ItemSk = i.ItemSk
GROUP BY Brand;
""",
    # Customer-band rollup over a joined CTE.
    "q02_band_revenue": """
WITH band_sales AS (
  SELECT Band, State, SUM(Net) AS revenue, SUM(Qty) AS units
  FROM store_sales AS ss JOIN customer AS c ON ss.CustSk = c.CustSk
  GROUP BY Band, State
)
SELECT Band, SUM(revenue) AS revenue
FROM band_sales
GROUP BY Band;
""",
    # Three-dimension star join with selective predicates the optimizer
    # should push below the joins.
    "q03_star_filter": """
SELECT State, Category, SUM(Net) AS revenue
FROM store_sales AS ss
JOIN date_dim AS d ON ss.DateSk = d.DateSk
JOIN customer AS c ON ss.CustSk = c.CustSk
JOIN item AS i ON ss.ItemSk = i.ItemSk
WHERE Year = 2024 AND Qty > 5
GROUP BY State, Category;
""",
    # Monthly trend with a HAVING gate reusing the SELECT's aggregate.
    "q04_monthly_having": """
SELECT Year, Month, SUM(Qty) AS units
FROM store_sales AS ss JOIN date_dim AS d ON ss.DateSk = d.DateSk
GROUP BY Year, Month
HAVING SUM(Qty) > 100;
""",
    # TopN: LIMIT with a deterministic (tie-broken) ORDER BY.
    "q05_top_sales": """
SELECT SaleSk, Net
FROM store_sales
WHERE Qty > 8
ORDER BY Net, SaleSk
LIMIT 10;
""",
    # UNION ALL with disjoint per-branch store ranges.
    "q06_store_split": """
SELECT Market, SUM(Net) AS revenue
FROM store_sales AS ss JOIN store AS st ON ss.StoreSk = st.StoreSk
WHERE ss.StoreSk < 6
GROUP BY Market
UNION ALL
SELECT Market, SUM(Net) AS revenue
FROM store_sales AS ss JOIN store AS st ON ss.StoreSk = st.StoreSk
WHERE ss.StoreSk >= 6
GROUP BY Market;
""",
    # Q02's CTE verbatim, different consumer: batched with Q02 the
    # fingerprint merge spools the common subtree once for both.
    "q07_band_units": """
WITH band_sales AS (
  SELECT Band, State, SUM(Net) AS revenue, SUM(Qty) AS units
  FROM store_sales AS ss JOIN customer AS c ON ss.CustSk = c.CustSk
  GROUP BY Band, State
)
SELECT State, SUM(units) AS units
FROM band_sales
GROUP BY State;
""",
    # Distinct buyers per category (two-stage dedup-then-count rewrite).
    "q08_distinct_buyers": """
SELECT Category, COUNT(DISTINCT CustSk) AS buyers
FROM store_sales AS ss JOIN item AS i ON ss.ItemSk = i.ItemSk
GROUP BY Category;
""",
    # Chained CTEs; the second is consumed by both UNION ALL branches.
    "q09_big_spenders": """
WITH active AS (
  SELECT CustSk, SUM(Qty) AS units, SUM(Net) AS revenue
  FROM store_sales
  GROUP BY CustSk
),
big AS (
  SELECT CustSk, units, revenue FROM active WHERE units > 20
)
SELECT c.State AS grp, SUM(b.revenue) AS total
FROM big AS b JOIN customer AS c ON b.CustSk = c.CustSk
GROUP BY c.State
UNION ALL
SELECT c.Band AS grp, SUM(b.units) AS total
FROM big AS b JOIN customer AS c ON b.CustSk = c.CustSk
GROUP BY c.Band;
""",
    # LEFT join that actually pads (late DateSk rows miss the
    # dimension), plus an AVG decomposition.
    "q10_weekday_profile": """
SELECT Dow, SUM(Net) AS revenue, AVG(Qty) AS avg_qty
FROM store_sales AS ss LEFT JOIN date_dim AS d ON ss.DateSk = d.DateSk
GROUP BY Dow;
""",
}

#: Hand-translated SCOPE twins of a query subset.  Rules that make the
#: plans byte-identical: extract ALL file columns ``USING SqlExtractor``
#: (the extractor name is part of plan identity), reuse the SQL queries'
#: binding aliases (join clash renames embed them), and OUTPUT to the
#: SQL default path ``q1.out``.
SCOPE_EQUIVALENTS: Dict[str, str] = {
    "q02_band_revenue": """
ss = EXTRACT SaleSk,DateSk,CustSk,ItemSk,StoreSk,Qty,Net
     FROM "store_sales.log" USING SqlExtractor;
c = EXTRACT CustSk,State,Band FROM "customer.log" USING SqlExtractor;
band_sales = SELECT Band,State,Sum(Net) AS revenue,Sum(Qty) AS units
             FROM ss JOIN c ON ss.CustSk = c.CustSk
             GROUP BY Band,State;
q = SELECT Band,Sum(revenue) AS revenue FROM band_sales GROUP BY Band;
OUTPUT q TO "q1.out";
""",
    "q03_star_filter": """
ss = EXTRACT SaleSk,DateSk,CustSk,ItemSk,StoreSk,Qty,Net
     FROM "store_sales.log" USING SqlExtractor;
d = EXTRACT DateSk,Year,Month,Dow FROM "date_dim.log" USING SqlExtractor;
c = EXTRACT CustSk,State,Band FROM "customer.log" USING SqlExtractor;
i = EXTRACT ItemSk,Category,Brand FROM "item.log" USING SqlExtractor;
q = SELECT State,Category,Sum(Net) AS revenue
    FROM ss
    JOIN d ON ss.DateSk = d.DateSk
    JOIN c ON ss.CustSk = c.CustSk
    JOIN i ON ss.ItemSk = i.ItemSk
    WHERE Year = 2024 AND Qty > 5
    GROUP BY State,Category;
OUTPUT q TO "q1.out";
""",
    "q05_top_sales": """
ss = EXTRACT SaleSk,DateSk,CustSk,ItemSk,StoreSk,Qty,Net
     FROM "store_sales.log" USING SqlExtractor;
q = SELECT TOP 10 SaleSk,Net FROM ss WHERE Qty > 8 ORDER BY Net,SaleSk;
OUTPUT q TO "q1.out";
""",
}


def generate_starjoin_data(
    n_sales: int = 6_000,
    seed: int = 0,
) -> Dict[str, List[Row]]:
    """Seeded synthetic star-schema data (all-integer columns).

    Quantities are skewed (mostly small baskets, heavy tail) so
    histogram selectivity has structure; ~3% of fact rows reference
    dates beyond the dimension to exercise LEFT-join padding.
    """
    rng = random.Random(seed)
    dates = [
        {
            "DateSk": d,
            "Year": 2023 + d // 365,
            "Month": (d % 365) // 31 + 1,
            "Dow": d % 7,
        }
        for d in range(N_DATES)
    ]
    customers = [
        {
            "CustSk": c,
            "State": rng.randrange(20),
            "Band": rng.randrange(9),
        }
        for c in range(N_CUSTOMERS)
    ]
    items = [
        {
            "ItemSk": i,
            "Category": rng.randrange(10),
            "Brand": rng.randrange(30),
        }
        for i in range(N_ITEMS)
    ]
    stores = [
        {"StoreSk": s, "Market": rng.randrange(5)} for s in range(N_STORES)
    ]
    sales = []
    for sale_sk in range(n_sales):
        qty = 1 + min(int(rng.expovariate(0.25)), 40)
        sales.append(
            {
                "SaleSk": sale_sk,
                "DateSk": rng.randrange(int(N_DATES * 1.03)),
                "CustSk": rng.randrange(N_CUSTOMERS),
                "ItemSk": rng.randrange(N_ITEMS),
                "StoreSk": rng.randrange(N_STORES),
                "Qty": qty,
                "Net": qty * rng.randrange(2, 60),
            }
        )
    return {
        "store_sales.log": sales,
        "date_dim.log": dates,
        "customer.log": customers,
        "item.log": items,
        "store.log": stores,
    }


def make_starjoin_catalog(
    data: Optional[Dict[str, List[Row]]] = None, seed: int = 0
) -> Tuple[Catalog, Dict[str, List[Row]]]:
    """Catalog with statistics (incl. histograms) collected from data."""
    if data is None:
        data = generate_starjoin_data(seed=seed)
    catalog = Catalog()
    for path, rows in data.items():
        register_data(catalog, path, rows)
    return catalog, data
