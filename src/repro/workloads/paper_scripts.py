"""The paper's evaluation scripts S1–S4 (Figure 6), verbatim.

Each script comes with a catalog builder providing the statistics used
by the Figure 7 reproduction (estimated costs) and a smaller variant for
actually executing plans on the simulated cluster.

Statistic choices (see EXPERIMENTS.md for the calibration rationale):

* the input log is large relative to everything downstream, so
  extracting it twice is the dominant waste of conventional plans;
* grouping-key NDVs are at least the cluster size, so repartitioning on
  a single column (the paper's ``{B}`` choice at the shared node) does
  not lose parallelism;
* the product of the grouping-key NDVs is well below rows/machines, so
  local pre-aggregation pays and the repartitioned intermediates are
  much smaller than the input.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..plan.columns import ColumnType
from ..scope.catalog import Catalog

S1 = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) AS S1 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
"""

S2 = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,A,Sum(S) AS S1 FROM R GROUP BY B,A;
R2 = SELECT A,C,Sum(S) AS S2 FROM R GROUP BY A,C;
R3 = SELECT A,Sum(S) AS S3 FROM R GROUP BY A;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT R3 TO "result3.out";
"""

S3 = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) AS S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) AS S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C,S1,S2 FROM R1,R2 WHERE R1.B=R2.B;
T0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
T = SELECT A,B,C,Sum(D) AS S FROM T0 GROUP BY A,B,C;
T1 = SELECT B,C,Sum(S) AS S1 FROM T GROUP BY B,C;
T2 = SELECT B,A,Sum(S) AS S2 FROM T GROUP BY B,A;
TT = SELECT T1.B,A,C,S1,S2 FROM T1,T2 WHERE T1.B=T2.B;
OUTPUT RR TO "result1.out";
OUTPUT TT TO "result2.out";
"""

S4 = """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) AS S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) AS S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C FROM R1,R2 WHERE R1.B=R2.B;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT RR TO "result3.out";
"""

PAPER_SCRIPTS: Dict[str, str] = {"S1": S1, "S2": S2, "S3": S3, "S4": S4}

#: Default statistics used for the Figure 7 (estimated-cost) runs.
BENCH_ROWS = 100_000_000
BENCH_NDV = {"A": 250, "B": 250, "C": 250, "D": 1_000_000}


def make_catalog(
    rows: int = BENCH_ROWS, ndv: Optional[Dict[str, int]] = None
) -> Catalog:
    """Catalog with ``test.log`` and ``test2.log`` registered.

    ``test2.log`` (used only by S3) gets the same schema and statistics
    as ``test.log`` but is a distinct file — the paper's S3 exercises two
    shared groups over two *different* inputs.
    """
    ndv = dict(ndv or BENCH_NDV)
    catalog = Catalog()
    columns = [(name, ColumnType.INT) for name in ("A", "B", "C", "D")]
    catalog.register_file("test.log", columns, rows=rows, ndv=ndv)
    catalog.register_file("test2.log", columns, rows=rows, ndv=ndv)
    return catalog


#: Row count used when plans are actually executed in tests/examples.
EXEC_ROWS = 4_000
EXEC_NDV = {"A": 7, "B": 5, "C": 6, "D": 50}


def make_exec_catalog(rows: int = EXEC_ROWS,
                      ndv: Optional[Dict[str, int]] = None) -> Catalog:
    """Small-scale catalog matching the generated execution data."""
    return make_catalog(rows=rows, ndv=dict(ndv or EXEC_NDV))
