"""Synthetic data generation for executing plans on the simulator.

Rows are generated with a seeded PRNG so tests are reproducible; column
values are drawn uniformly from ``[0, ndv)`` to match the catalog's
declared distinct counts.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..plan.expressions import Row
from ..scope.catalog import Catalog


def generate_rows(
    columns: Sequence[str],
    rows: int,
    ndv: Dict[str, int],
    seed: int = 0,
) -> List[Row]:
    """Generate ``rows`` random rows over ``columns``."""
    rng = random.Random(seed)
    domains = {c: max(1, int(ndv.get(c, 100))) for c in columns}
    return [
        {c: rng.randrange(domains[c]) for c in columns} for _ in range(rows)
    ]


def generate_skewed_rows(
    columns: Sequence[str],
    rows: int,
    ndv: Dict[str, int],
    seed: int = 0,
    zipf_s: float = 1.2,
) -> List[Row]:
    """Generate rows with Zipf-distributed values per column.

    Value ``v`` (0-based rank) is drawn with probability proportional to
    ``1 / (v + 1) ** zipf_s`` — a heavy-tailed distribution that makes
    selectivity estimation interesting (the uniform assumption is badly
    wrong for it).
    """
    rng = random.Random(seed)
    tables = {}
    for column in columns:
        domain = max(1, int(ndv.get(column, 100)))
        weights = [1.0 / (v + 1) ** zipf_s for v in range(domain)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        tables[column] = cumulative

    import bisect

    def draw(column: str) -> int:
        return bisect.bisect_left(tables[column], rng.random())

    return [{c: draw(c) for c in columns} for _ in range(rows)]


def generate_for_catalog(
    catalog: Catalog, seed: int = 0, rows_override: Optional[int] = None
) -> Dict[str, List[Row]]:
    """Generate data for every file registered in ``catalog``.

    ``rows_override`` caps the per-file row count — handy for executing
    plans optimized against large (estimation-scale) catalogs.
    """
    files: Dict[str, List[Row]] = {}
    for stats in catalog.files():
        rows = stats.rows if rows_override is None else min(
            stats.rows, rows_override
        )
        files[stats.path] = generate_rows(
            stats.schema.names,
            rows,
            {c: stats.ndv_of(c) for c in stats.schema.names},
            seed=seed + stats.file_id,
        )
    return files


def load_into_cluster(cluster, catalog: Catalog, seed: int = 0,
                      rows_override: Optional[int] = None) -> None:
    """Generate and load data for ``catalog`` into ``cluster``."""
    for path, rows in generate_for_catalog(catalog, seed, rows_override).items():
        cluster.load_file(path, rows)
