"""A retail analytics workload (TPC-H flavoured, CSE heavy).

A small star schema — sales facts with customer and product dimensions —
and a reporting script whose queries share two classic common
subexpressions:

* ``Enriched`` — sales joined with both dimensions (explicitly shared by
  four reports);
* per-customer revenue, written twice by different "analysts" (a textual
  duplicate for the fingerprint step).

Used by ``examples/retail_report.py`` and the workload tests; data
generation produces skewed quantities so the histogram-based selectivity
estimation has something real to estimate.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..plan.expressions import Row
from ..scope.catalog import Catalog
from ..scope.statistics import register_data

REPORT_SCRIPT = """
Sales = EXTRACT OrderId,CustId,ProdId,Qty,Price FROM "sales.log"
        USING SalesExtractor;
Customers = EXTRACT CustId,Segment,Nation FROM "customers.log"
            USING CustExtractor;
Products = EXTRACT ProdId,Category,Cost FROM "products.log"
           USING ProdExtractor;

// Pre-aggregate the raw facts per (customer, product) — the paper's
// "initial aggregation" pattern, and the expensive shared work.
Daily = SELECT CustId,ProdId,Sum(Qty) AS Qty,Sum(Price) AS Price
        FROM Sales GROUP BY CustId,ProdId;

// The shared enriched table: every report starts from it.
Enriched = SELECT Daily.CustId AS CustId,Segment,Nation,Category,Qty,Price
           FROM Daily
           JOIN Customers ON Daily.CustId = Customers.CustId
           LEFT OUTER JOIN Products ON Daily.ProdId = Products.ProdId;

// Report 1: revenue by market segment.
BySegment = SELECT Segment,Sum(Price) AS Revenue,Sum(Qty) AS Units
            FROM Enriched GROUP BY Segment;

// Report 2: revenue by nation and category.
ByNation = SELECT Nation,Category,Sum(Price) AS Revenue
           FROM Enriched GROUP BY Nation,Category;

// Report 3: big orders only.
BigOrders = SELECT Segment,Count(*) AS N FROM Enriched
            WHERE Qty > 40 GROUP BY Segment;

// Report 4: an analyst re-derived per-customer revenue...
CustRevenueA = SELECT CustId,Sum(Price) AS Revenue FROM Enriched
               GROUP BY CustId;
// ...and a second analyst wrote the identical query elsewhere.
CustRevenueB = SELECT CustId,Sum(Price) AS Revenue FROM Enriched
               GROUP BY CustId;
TopSpenders = SELECT CustId,Revenue FROM CustRevenueA WHERE Revenue > 5000;
Loyalty = SELECT CustRevenueB.CustId,Revenue,Segment
          FROM CustRevenueB JOIN Customers
          ON CustRevenueB.CustId = Customers.CustId;

OUTPUT BySegment TO "by_segment.out" ORDER BY Segment;
OUTPUT ByNation TO "by_nation.out";
OUTPUT BigOrders TO "big_orders.out";
OUTPUT TopSpenders TO "top_spenders.out";
OUTPUT Loyalty TO "loyalty.out";
"""


def generate_retail_data(
    n_sales: int = 5_000,
    n_customers: int = 300,
    n_products: int = 80,
    seed: int = 0,
) -> Dict[str, List[Row]]:
    """Synthetic star-schema data with a skewed quantity distribution."""
    rng = random.Random(seed)
    customers = [
        {
            "CustId": cust_id,
            "Segment": rng.randrange(5),
            "Nation": rng.randrange(12),
        }
        for cust_id in range(n_customers)
    ]
    products = [
        {
            "ProdId": prod_id,
            "Category": rng.randrange(8),
            "Cost": rng.randrange(1, 100),
        }
        for prod_id in range(n_products)
    ]
    sales = []
    for order_id in range(n_sales):
        # Quantities are skewed: mostly small baskets, a heavy tail.
        qty = 1 + min(int(rng.expovariate(0.12)), 99)
        sales.append(
            {
                "OrderId": order_id,
                "CustId": rng.randrange(n_customers),
                # Some products were discontinued: their ids miss the
                # dimension table, exercising the LEFT join padding.
                "ProdId": rng.randrange(int(n_products * 1.1)),
                "Qty": qty,
                "Price": qty * rng.randrange(2, 50),
            }
        )
    return {
        "sales.log": sales,
        "customers.log": customers,
        "products.log": products,
    }


def make_retail_catalog(
    data: Dict[str, List[Row]] = None, seed: int = 0
) -> Tuple[Catalog, Dict[str, List[Row]]]:
    """Catalog with statistics (incl. histograms) collected from data."""
    if data is None:
        data = generate_retail_data(seed=seed)
    catalog = Catalog()
    for path, rows in data.items():
        register_data(catalog, path, rows)
    return catalog, data
