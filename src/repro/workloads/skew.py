"""Skewed-statistics scenarios for the cardinality-feedback loop.

Each scenario pairs a catalog whose statistics *mislead* the seed
estimator with deterministic data that exposes the misestimate at run
time — the raw material of the learned-statistics loop in
``repro.stats`` (see ``docs/feedback.md``).  The scripts are mirrored
as ``tests/corpus/feedback/<name>.scope`` (the golden regression
corpus); the benchmark ``benchmarks/bench_feedback.py`` and the
feedback test suites all build their workloads from here so the
scenarios cannot drift apart.

The three shapes:

* ``filter_selectivity_skew`` — the headline.  The catalog says column
  ``C`` has 2 distinct values, so ``WHERE C = 1`` is estimated at half
  the file (2,000 rows); the data contains only 4 matches.  Under the
  seed estimate, spooling the shared filter looks more expensive than
  recomputing it, so the optimizer picks the conventional
  duplicate-pipeline plan.  One observed run corrects the fragment to
  4 rows, re-optimization flips to the spooled plan, and the input is
  extracted once instead of twice.
* ``groupby_ndv_skew`` — the catalog's per-column NDVs multiply out to
  a huge estimate for a shared ``GROUP BY A, B`` (correlated columns in
  the data produce 2 groups), misleading the spool decision above the
  aggregate the same way.
* ``gate_refusal_low_observations`` — same misestimate as the
  headline, but the controller requires 3 observations before
  publishing; with fewer runs the gate must *refuse* (a
  ``skip_low_observations`` decision card) and the plan must not
  change.
* ``single_consumer_keep`` — the filter misestimate without any shared
  consumer: the correction publishes, but re-optimization cannot beat
  the incumbent re-priced under the same corrections, so Gate B keeps
  the old plan (a ``keep`` decision card).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..plan.columns import ColumnType
from ..scope.catalog import Catalog

#: Rows per skewed input file (small enough for fast tests, large
#: enough that a factor-500 misestimate flips real plan decisions).
SKEW_ROWS = 4_000


def _filter_skew_rows() -> List[dict]:
    """4,000 rows; ``C = 1`` on exactly 4 of them (i % 1000 == 0)."""
    return [
        {"A": i % 7, "B": i % 5, "C": 1 if i % 1000 == 0 else 0,
         "D": i % 50}
        for i in range(SKEW_ROWS)
    ]


def _groupby_skew_rows() -> List[dict]:
    """4,000 rows whose (A, B) pairs collapse to 2 groups.

    The catalog advertises ndv(A)=700 and ndv(B)=500; the data makes A
    and B perfectly correlated two-valued columns, so the shared
    ``GROUP BY A, B`` emits 2 rows instead of the estimated thousands.
    """
    return [
        {"A": i % 2, "B": i % 2, "C": i % 6, "D": i % 50}
        for i in range(SKEW_ROWS)
    ]


@dataclass(frozen=True)
class SkewScenario:
    """One misestimated workload plus the feedback settings to run it."""

    name: str
    description: str
    script: str
    #: ``(path, ndv)`` per input file; all files have :data:`SKEW_ROWS`
    #: rows of columns A,B,C,D (INT).
    catalog_files: Tuple[Tuple[str, Dict[str, int]], ...]
    #: Deterministic data generator per input file.
    data: Tuple[Tuple[str, Callable[[], List[dict]]], ...]
    #: Keyword arguments for ``repro.stats.feedback.FeedbackConfig``.
    feedback: Dict[str, object] = field(default_factory=dict)
    #: The decision the scenario is about: "adopt", "keep" or
    #: "skip_low_observations".
    expect: str = "adopt"

    def build_catalog(self) -> Catalog:
        catalog = Catalog()
        columns = [(n, ColumnType.INT) for n in ("A", "B", "C", "D")]
        for path, ndv in self.catalog_files:
            catalog.register_file(path, columns, rows=SKEW_ROWS, ndv=ndv)
        return catalog

    def generate_files(self) -> Dict[str, List[dict]]:
        return {path: maker() for path, maker in self.data}


FILTER_SKEW_SCRIPT = """\
R0 = EXTRACT A,B,C,D FROM "skew.log" USING LogExtractor;
F = SELECT A,B,C,D FROM R0 WHERE C = 1;
G1 = SELECT A, Sum(D) AS SD FROM F GROUP BY A;
G2 = SELECT B, Sum(D) AS SD FROM F GROUP BY B;
OUTPUT G1 TO "g1.out";
OUTPUT G2 TO "g2.out";
"""

GROUPBY_SKEW_SCRIPT = """\
R0 = EXTRACT A,B,C,D FROM "wide.log" USING LogExtractor;
G = SELECT A, B, Sum(D) AS SD FROM R0 GROUP BY A, B;
X = SELECT A, Sum(SD) AS SX FROM G GROUP BY A;
Y = SELECT B, Sum(SD) AS SY FROM G GROUP BY B;
OUTPUT X TO "x.out";
OUTPUT Y TO "y.out";
"""

SINGLE_CONSUMER_SCRIPT = """\
R0 = EXTRACT A,B,C,D FROM "skew.log" USING LogExtractor;
F = SELECT A,B,C,D FROM R0 WHERE C = 1;
G = SELECT A, Sum(D) AS SD FROM F GROUP BY A;
OUTPUT G TO "g.out";
"""

_FILTER_SKEW_CATALOG = (
    ("skew.log", {"A": 7, "B": 5, "C": 2, "D": 50}),
)
_GROUPBY_SKEW_CATALOG = (
    ("wide.log", {"A": 700, "B": 500, "C": 6, "D": 50}),
)

SKEW_SCENARIOS: Dict[str, SkewScenario] = {
    scenario.name: scenario
    for scenario in [
        SkewScenario(
            name="filter_selectivity_skew",
            description=(
                "shared filter estimated at 2,000 rows materializes 4; "
                "the corrected optimizer spools it and extracts the "
                "input once"
            ),
            script=FILTER_SKEW_SCRIPT,
            catalog_files=_FILTER_SKEW_CATALOG,
            data=(("skew.log", _filter_skew_rows),),
            feedback={"qerror_threshold": 2.0, "min_observations": 1},
            expect="adopt",
        ),
        SkewScenario(
            name="groupby_ndv_skew",
            description=(
                "shared GROUP BY A,B estimated via ndv(A)*ndv(B) "
                "collapses to 2 groups of correlated data"
            ),
            script=GROUPBY_SKEW_SCRIPT,
            catalog_files=_GROUPBY_SKEW_CATALOG,
            data=(("wide.log", _groupby_skew_rows),),
            feedback={"qerror_threshold": 2.0, "min_observations": 1},
            expect="adopt",
        ),
        SkewScenario(
            name="gate_refusal_low_observations",
            description=(
                "the same filter misestimate, but corrections need 3 "
                "observations: the gate must refuse and the plan must "
                "not change"
            ),
            script=FILTER_SKEW_SCRIPT,
            catalog_files=_FILTER_SKEW_CATALOG,
            data=(("skew.log", _filter_skew_rows),),
            feedback={"qerror_threshold": 2.0, "min_observations": 3},
            expect="skip_low_observations",
        ),
        SkewScenario(
            name="single_consumer_keep",
            description=(
                "filter misestimate with one consumer: the correction "
                "publishes but no cheaper plan exists, so Gate B keeps "
                "the incumbent"
            ),
            script=SINGLE_CONSUMER_SCRIPT,
            catalog_files=_FILTER_SKEW_CATALOG,
            data=(("skew.log", _filter_skew_rows),),
            feedback={"qerror_threshold": 2.0, "min_observations": 1},
            expect="keep",
        ),
    ]
}
