"""Evaluation workloads: the paper's scripts, LS generators, data."""

from .datagen import (
    generate_for_catalog,
    generate_rows,
    generate_skewed_rows,
    load_into_cluster,
)
from .figure7 import Figure7Row, format_table, run_all, run_script
from .large_scripts import (
    LargeScriptSpec,
    build_catalog,
    build_script,
    ls1_spec,
    ls2_spec,
    make_large_script,
)
from .paper_scripts import (
    PAPER_SCRIPTS,
    S1,
    S2,
    S3,
    S4,
    make_catalog,
    make_exec_catalog,
)
from .starjoin import (
    SCOPE_EQUIVALENTS,
    STARJOIN_QUERIES,
    generate_starjoin_data,
    make_starjoin_catalog,
)

__all__ = [name for name in dir() if not name.startswith("_")]
