"""Cardinality feedback and hotspot attribution.

The validation loop the paper's evaluation depends on: join the
optimizer's estimated output cardinalities (recorded per stage-graph
vertex by the scheduler) to the measured row counts, compute the
**q-error** per vertex, and rank the worst offenders.  A second report
attributes the simulated makespan to vertices — the top-k hotspots are
where the cost model says the job's wall time goes.

Both reports operate on :class:`~repro.exec.metrics.ExecutionMetrics`
duck-typed (anything with a ``vertices`` mapping of per-vertex stats and
a ``simulated_makespan`` total), so this module stays import-cycle-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional


def qerror(estimated: float, actual: float) -> Optional[float]:
    """The symmetric relative estimation error ``max(e/a, a/e)``.

    Sentinel semantics (never NaN):

    * both sides positive — the usual q-error, ``>= 1.0``;
    * estimate missing (``<= 0``) — ``None``, *regardless of the
      measurement*: there is nothing to compare against, which is
      different from a wrong estimate.  In particular a missing
      estimate over zero observed rows is **not** a q-error-1 match;
      treating the sentinel as agreement would let never-estimated
      fragments masquerade as perfectly estimated ones in feedback
      aggregation (``repro.stats``), which skips ``None`` entirely;
    * estimate positive but zero rows observed — ``inf``: the estimator
      predicted rows that never materialized.
    """
    if estimated > 0 and actual > 0:
        return max(estimated / actual, actual / estimated)
    if estimated <= 0:
        return None
    return math.inf


@dataclass(frozen=True)
class CardinalityRow:
    """One vertex's estimate-vs-actual comparison."""

    vertex: str
    estimated: float
    actual: int
    qerror: Optional[float]
    estimate_missing: bool


def cardinality_rows(metrics) -> List[CardinalityRow]:
    """Per-vertex q-error rows, worst offender first.

    Ordering: infinite errors first, then finite errors descending, then
    vertices with no estimate; ties broken by vertex name so the report
    is deterministic.
    """
    rows = []
    for name in sorted(metrics.vertices):
        stats = metrics.vertices[name]
        err = qerror(stats.estimated_rows, stats.rows_out)
        rows.append(CardinalityRow(
            vertex=name,
            estimated=stats.estimated_rows,
            actual=stats.rows_out,
            qerror=err,
            estimate_missing=stats.estimate_missing,
        ))

    def sort_key(row: CardinalityRow):
        if row.qerror is None:
            return (2, 0.0, row.vertex)
        if math.isinf(row.qerror):
            return (0, 0.0, row.vertex)
        return (1, -row.qerror, row.vertex)

    return sorted(rows, key=sort_key)


def cardinality_table(metrics, top: Optional[int] = None) -> str:
    """Rendered q-error table (``top`` caps the listing)."""
    rows = cardinality_rows(metrics)
    if not rows:
        return ("(no per-vertex statistics — run on the task scheduler, "
                "workers >= 1)")
    header = (f"{'vertex':<28}{'estimated':>12}{'actual':>12}"
              f"{'q-error':>10}")
    lines = [header, "-" * len(header)]
    shown = rows if top is None else rows[:top]
    for row in shown:
        if row.estimate_missing:
            est, err = "n/a", "n/a"
        else:
            est = f"{row.estimated:,.0f}"
            err = "inf" if math.isinf(row.qerror) else f"{row.qerror:.2f}"
        lines.append(
            f"{row.vertex:<28}{est:>12}{row.actual:>12,}{err:>10}"
        )
    if top is not None and len(rows) > top:
        lines.append(f"... {len(rows) - top} more")
    return "\n".join(lines)


@dataclass(frozen=True)
class Hotspot:
    """One vertex's share of the simulated makespan."""

    vertex: str
    makespan: float
    share: float


def hotspots(metrics, k: int = 5) -> List[Hotspot]:
    """Top-``k`` vertices by simulated-makespan share, largest first."""
    total = sum(
        stats.simulated_makespan for stats in metrics.vertices.values()
    )
    spots = [
        Hotspot(
            vertex=name,
            makespan=stats.simulated_makespan,
            share=(stats.simulated_makespan / total) if total > 0 else 0.0,
        )
        for name, stats in metrics.vertices.items()
    ]
    spots.sort(key=lambda h: (-h.makespan, h.vertex))
    return spots[:k]


def hotspot_table(metrics, k: int = 5) -> str:
    spots = hotspots(metrics, k)
    if not spots:
        return ("(no per-vertex statistics — run on the task scheduler, "
                "workers >= 1)")
    header = f"{'vertex':<28}{'makespan':>14}{'share':>8}"
    lines = [header, "-" * len(header)]
    for spot in spots:
        lines.append(
            f"{spot.vertex:<28}{spot.makespan:>14,.0f}"
            f"{spot.share * 100:>7.1f}%"
        )
    return "\n".join(lines)


def profile_report(metrics, top: int = 5) -> str:
    """The q-error table plus the hotspot table, ready to print."""
    return "\n".join([
        "=== cardinality feedback (worst q-error first) ===",
        cardinality_table(metrics),
        "",
        f"=== top {top} hotspots by simulated makespan share ===",
        hotspot_table(metrics, top),
    ])
