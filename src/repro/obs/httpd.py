"""A stdlib HTTP endpoint serving live metrics and health.

:class:`MetricsServer` wraps :class:`http.server.ThreadingHTTPServer`
around a :class:`~repro.obs.collector.MetricsCollector` (or anything
with ``prometheus_text()``/``snapshot()``) plus an optional health
provider:

* ``GET /metrics`` — Prometheus text exposition
  (``text/plain; version=0.0.4``);
* ``GET /metrics.json`` — the JSON snapshot (what ``repro top`` reads);
* ``GET /healthz`` — liveness + readiness: ``200`` with the health
  document when ready, ``503`` when not (readiness reflects admission
  queue saturation via the provider).

No dependencies, no framework: scrape it with ``curl`` or point
Prometheus at it.  ``port=0`` binds an ephemeral port (tests); the
bound port is available as :attr:`port` after :meth:`start`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _default_health() -> dict:
    return {"status": "ok", "ready": True, "checks": {}}


class MetricsServer:
    """Serve ``/metrics``, ``/metrics.json`` and ``/healthz``.

    ::

        server = MetricsServer(collector, health=controller.health,
                               port=9109)
        server.start()            # or: with server: ...
        ...
        server.stop()
    """

    def __init__(self, collector, *,
                 health: Optional[Callable[[], dict]] = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.collector = collector
        self.health = health or _default_health
        self.host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The actually bound port (meaningful after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # noqa: D102 - quiet
                pass

            def do_GET(self):  # noqa: N802 - stdlib API
                try:
                    server._respond(self)
                except BrokenPipeError:  # pragma: no cover - client gone
                    pass

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name="metrics-httpd",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join()
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request handling ---------------------------------------------------

    def _respond(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.collector.prometheus_text().encode("utf-8")
            self._send(handler, 200, PROMETHEUS_CONTENT_TYPE, body)
        elif path in ("/metrics.json", "/snapshot"):
            body = json.dumps(self.collector.snapshot(), sort_keys=True,
                              indent=2).encode("utf-8")
            self._send(handler, 200, "application/json", body)
        elif path == "/healthz":
            try:
                health = self.health()
            except Exception as exc:  # noqa: BLE001 - surfaced as 500
                health = {"status": "error", "ready": False,
                          "checks": {"error": repr(exc)}}
            status = 200 if health.get("ready") else 503
            body = json.dumps(health, sort_keys=True,
                              indent=2).encode("utf-8")
            self._send(handler, status, "application/json", body)
        else:
            self._send(handler, 404, "text/plain; charset=utf-8",
                       b"not found: try /metrics, /metrics.json, "
                       b"/healthz\n")

    @staticmethod
    def _send(handler: BaseHTTPRequestHandler, status: int,
              content_type: str, body: bytes) -> None:
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)
