"""``repro top`` — a terminal dashboard over a metrics snapshot.

Renders the service health surface from the JSON snapshot document
(:meth:`repro.obs.collector.MetricsCollector.snapshot`), read either
from a file written by ``repro serve --metrics-out`` or live from a
``/metrics.json`` endpoint exposed by ``--metrics-port``:

* a per-tenant table — requests, latency percentiles, SLO compliance
  and burn rate;
* shared-work savings attribution (vertices ridden, rows saved, whole
  executions avoided by dedup);
* hotspot histograms as ASCII bars (submit latency, window flush
  sizes);
* service/cache/admission counter summaries.

Pure rendering: no clocks, no network beyond :func:`load_source`; the
same snapshot always renders the same text (golden-tested).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from .metrics import load_snapshot

BAR_WIDTH = 30
BAR_CHAR = "#"


def load_source(source: str, timeout: float = 10.0) -> dict:
    """Load a snapshot from a file path or a live HTTP endpoint.

    A URL may point at the server root (``http://host:port``) or the
    snapshot document itself; ``/metrics.json`` is appended when
    missing.
    """
    if source.startswith(("http://", "https://")):
        from urllib.request import urlopen

        url = source
        if not url.rstrip("/").endswith(("metrics.json", "snapshot")):
            url = url.rstrip("/") + "/metrics.json"
        with urlopen(url, timeout=timeout) as response:
            text = response.read().decode("utf-8")
    else:
        with open(source) as handle:
            text = handle.read()
    return load_snapshot(text)


# -- snapshot accessors ------------------------------------------------------

def _family(doc: dict, name: str) -> Optional[dict]:
    return doc.get("metrics", {}).get(name)


def _samples(doc: dict, name: str) -> List[dict]:
    family = _family(doc, name)
    return family["samples"] if family else []


def _value_by_labels(doc: dict, name: str, **labels) -> float:
    for sample in _samples(doc, name):
        if all(sample["labels"].get(k) == v for k, v in labels.items()):
            return sample.get("value", 0.0)
    return 0.0


def _fmt_seconds(value) -> str:
    if value is None:
        return "-"
    if value == "inf" or (isinstance(value, float)
                          and math.isinf(value)):
        return ">max"
    if value < 1.0:
        return f"{value * 1e3:.0f}ms"
    return f"{value:.2f}s"


def _fmt_count(value: float) -> str:
    return f"{int(value):,}"


# -- sections ----------------------------------------------------------------

def _tenant_table(doc: dict) -> List[str]:
    tenants: Dict[str, dict] = doc.get("slo", {}).get("tenants", {})
    if not tenants:
        return ["(no tenants resolved yet)"]
    header = (f"{'tenant':<12}{'req':>7}{'p50':>8}{'p95':>8}{'p99':>8}"
              f"{'breach':>8}{'compl':>8}{'burn':>7}")
    lines = [header, "-" * len(header)]
    for tenant in sorted(tenants):
        row = tenants[tenant]
        burn = row.get("burn_rate", 0.0)
        flag = " !" if burn > 1.0 else ""
        lines.append(
            f"{tenant:<12}{row['requests']:>7,}"
            f"{_fmt_seconds(row.get('p50_seconds')):>8}"
            f"{_fmt_seconds(row.get('p95_seconds')):>8}"
            f"{_fmt_seconds(row.get('p99_seconds')):>8}"
            f"{row.get('breaches', 0):>8,}"
            f"{row.get('compliance', 1.0):>8.1%}"
            f"{burn:>7.2f}{flag}"
        )
    return lines


def _savings_table(doc: dict) -> List[str]:
    vertices = {s["labels"]["tenant"]: s["value"]
                for s in _samples(doc, "repro_shared_vertices_total")}
    rows = {s["labels"]["tenant"]: s["value"]
            for s in _samples(doc, "repro_shared_rows_saved_total")}
    dedup = {s["labels"]["tenant"]: s["value"]
             for s in _samples(doc, "repro_dedup_executions_saved_total")}
    tenants = sorted(set(vertices) | set(rows) | set(dedup))
    if not tenants:
        return ["(no shared work recorded)"]
    header = (f"{'tenant':<12}{'shared vtx':>11}{'rows saved':>12}"
              f"{'dedup saved':>12}")
    lines = [header, "-" * len(header)]
    for tenant in tenants:
        lines.append(
            f"{tenant:<12}{_fmt_count(vertices.get(tenant, 0)):>11}"
            f"{rows.get(tenant, 0.0):>12,.0f}"
            f"{_fmt_count(dedup.get(tenant, 0)):>12}"
        )
    return lines


def _histogram_bars(doc: dict, name: str,
                    fmt=_fmt_seconds) -> List[str]:
    """Aggregate a histogram family over its label sets and render
    per-bucket (non-cumulative) ASCII bars, empty buckets elided."""
    samples = _samples(doc, name)
    if not samples:
        return ["(no observations)"]
    totals: Dict[float, int] = {}
    grand = 0
    for sample in samples:
        previous = 0
        for bound, cumulative in sample.get("buckets", []):
            totals[bound] = totals.get(bound, 0) + (cumulative - previous)
            previous = cumulative
        overflow = sample.get("count", 0) - previous
        if overflow:
            totals[math.inf] = totals.get(math.inf, 0) + overflow
        grand += sample.get("count", 0)
    if grand == 0:
        return ["(no observations)"]
    peak = max(totals.values())
    lines = []
    for bound in sorted(totals):
        count = totals[bound]
        if count == 0:
            continue
        bar = BAR_CHAR * max(1, round(count / peak * BAR_WIDTH))
        label = "+inf" if math.isinf(bound) else fmt(bound)
        lines.append(f"  <= {label:>8}  {count:>8,}  {bar}")
    return lines


def _counter_lines(doc: dict, name: str, label: str) -> List[str]:
    samples = _samples(doc, name)
    if not samples:
        return []
    return [
        f"  {sample['labels'].get(label, ''):<12}"
        f"{_fmt_count(sample.get('value', 0)):>10}"
        for sample in samples
    ]


def render_dashboard(doc: dict, *, title: str = "repro top") -> str:
    """The full dashboard text for one snapshot document."""
    lines: List[str] = []
    generated = doc.get("generated_at")
    stamp = f"  (snapshot at t={generated:.3f}s)" if isinstance(
        generated, (int, float)) else ""
    lines.append(f"=== {title}{stamp} ===")

    derived = doc.get("derived", {})
    ratio = derived.get("cache_hit_ratio")
    depth = _value_by_labels(doc, "repro_admission_queue_depth")
    depth_max = _value_by_labels(doc, "repro_admission_queue_depth_max")
    lines.append(
        f"queue depth: {int(depth)} (max {int(depth_max)})   "
        f"cache hit ratio: "
        + (f"{ratio:.1%}" if ratio is not None else "n/a")
    )

    lines.append("")
    lines.append("--- tenants (SLO: latency objective + burn) ---")
    lines.extend(_tenant_table(doc))

    lines.append("")
    lines.append("--- shared-work savings ---")
    lines.extend(_savings_table(doc))

    lines.append("")
    lines.append("--- submit latency (all tenants) ---")
    lines.extend(_histogram_bars(doc, "repro_admission_latency_seconds"))

    lines.append("")
    lines.append("--- window flush sizes ---")
    lines.extend(_histogram_bars(doc, "repro_admission_window_scripts",
                                 fmt=lambda v: f"{v:.0f}"))

    submit_lines = _counter_lines(doc, "repro_submits_total", "op")
    if submit_lines:
        lines.append("")
        lines.append("--- service submissions ---")
        lines.extend(submit_lines)

    window_lines = _counter_lines(doc, "repro_admission_windows_total",
                                  "trigger")
    if window_lines:
        lines.append("")
        lines.append("--- window flushes by trigger ---")
        lines.extend(window_lines)
    return "\n".join(lines) + "\n"
