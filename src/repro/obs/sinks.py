"""Trace sinks: in-memory tree rendering, JSON-lines, Chrome trace.

Three ways out of a :class:`~repro.obs.tracer.Tracer`:

* :func:`render_span_tree` — human-readable indented tree with
  durations and attributes (what ``repro profile`` prints);
* :func:`to_jsonl` / :func:`load_jsonl` — one JSON object per line
  (spans in preorder, then bus events), loss-free round-trip;
* :func:`to_chrome_trace` / :func:`load_chrome_trace` — the Chrome
  ``trace_event`` format; open the file in ``chrome://tracing`` or
  https://ui.perfetto.dev.  Span identity is preserved through ``args``
  so the export round-trips back into a span tree.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Union

from .bus import ObsEvent
from .tracer import Span, Tracer, VOLATILE_ATTRS

TraceLike = Union[Tracer, Span, Iterable[Span]]


def _roots(trace: TraceLike) -> List[Span]:
    if isinstance(trace, Tracer):
        return list(trace.roots)
    if isinstance(trace, Span):
        return [trace]
    return list(trace)


def _events(trace: TraceLike) -> List[object]:
    if isinstance(trace, Tracer) and trace.bus is not None:
        return list(trace.bus.events)
    return []


def _fmt_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


# -- tree rendering --------------------------------------------------------

def render_span_tree(trace: TraceLike, include_timing: bool = True) -> str:
    """Indented tree, one line per span: name, duration, attributes."""
    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        parts = ["  " * depth + span.name]
        if include_timing:
            parts.append(f"[{span.duration * 1e3:.1f} ms]")
        for key in sorted(span.attrs):
            if key in VOLATILE_ATTRS:
                continue
            parts.append(f"{key}={_fmt_value(span.attrs[key])}")
        lines.append(" ".join(parts))
        for child in span.children:
            emit(child, depth + 1)

    roots = _roots(trace)
    if not roots:
        return "(no spans recorded)"
    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


# -- JSON-lines ------------------------------------------------------------

def _event_record(event: object) -> dict:
    if isinstance(event, ObsEvent):
        return {"type": "event", "kind": event.kind,
                "attrs": dict(event.attrs)}
    if dataclasses.is_dataclass(event):
        return {
            "type": "event",
            "kind": f"{type(event).__name__}.{getattr(event, 'kind', '')}",
            "attrs": dataclasses.asdict(event),
        }
    return {"type": "event", "kind": "opaque", "attrs": {"repr": repr(event)}}


def to_jsonl(trace: TraceLike) -> str:
    """Serialize spans (preorder) and bus events, one JSON object/line."""
    lines: List[str] = []
    next_id = 0

    def emit(span: Span, parent: Optional[int]) -> None:
        nonlocal next_id
        sid = next_id
        next_id += 1
        lines.append(json.dumps({
            "type": "span",
            "id": sid,
            "parent": parent,
            "name": span.name,
            "start": span.start,
            "end": span.end,
            "attrs": span.attrs,
        }, sort_keys=True, default=str))
        for child in span.children:
            emit(child, sid)

    for root in _roots(trace):
        emit(root, None)
    for event in _events(trace):
        lines.append(json.dumps(_event_record(event), sort_keys=True,
                                default=str))
    return "\n".join(lines) + ("\n" if lines else "")


@dataclass
class LoadedTrace:
    """A trace reconstructed from an export (spans + events)."""

    roots: List[Span] = field(default_factory=list)
    events: List[ObsEvent] = field(default_factory=list)

    def render(self, include_timing: bool = True) -> str:
        return render_span_tree(self.roots, include_timing)


def load_jsonl(text: str) -> LoadedTrace:
    loaded = LoadedTrace()
    by_id = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") == "span":
            span = Span(record["name"], record.get("attrs") or {},
                        start=record.get("start", 0.0),
                        end=record.get("end", 0.0))
            by_id[record["id"]] = span
            parent = record.get("parent")
            if parent is None:
                loaded.roots.append(span)
            else:
                by_id[parent].children.append(span)
        elif record.get("type") == "event":
            loaded.events.append(
                ObsEvent.make(record.get("kind", ""),
                              **(record.get("attrs") or {}))
            )
    return loaded


def write_jsonl(trace: TraceLike, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_jsonl(trace))


# -- Chrome trace_event ----------------------------------------------------

def to_chrome_trace(trace: TraceLike) -> str:
    """Chrome ``trace_event`` JSON (complete events, microseconds).

    Span ids and parent links ride along in ``args`` (keys ``_id`` /
    ``_parent``) so :func:`load_chrome_trace` can rebuild the tree.
    """
    roots = _roots(trace)
    starts = [s.start for root in roots for s in root.walk()]
    epoch = min(starts) if starts else 0.0
    trace_events: List[dict] = []
    next_id = 0

    def emit(span: Span, parent: Optional[int]) -> None:
        nonlocal next_id
        sid = next_id
        next_id += 1
        args = {k: v for k, v in span.attrs.items()}
        args["_id"] = sid
        args["_parent"] = parent
        trace_events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": (span.start - epoch) * 1e6,
            "dur": span.duration * 1e6,
            "pid": 0,
            "tid": 0,
            "args": args,
        })
        for child in span.children:
            emit(child, sid)

    for root in roots:
        emit(root, None)
    for event in _events(trace):
        record = _event_record(event)
        trace_events.append({
            "name": record["kind"],
            "cat": "repro.events",
            "ph": "i",
            "ts": 0,
            "pid": 0,
            "tid": 0,
            "s": "g",
            "args": record["attrs"],
        })
    return json.dumps({"traceEvents": trace_events}, sort_keys=True,
                      default=str)


def load_chrome_trace(text: str) -> LoadedTrace:
    doc = json.loads(text)
    loaded = LoadedTrace()
    by_id = {}
    records = [e for e in doc.get("traceEvents", ()) if e.get("ph") == "X"]
    records.sort(key=lambda e: e["args"]["_id"])
    for record in records:
        args = dict(record.get("args") or {})
        sid = args.pop("_id")
        parent = args.pop("_parent", None)
        start = record.get("ts", 0.0) / 1e6
        span = Span(record["name"], args, start=start,
                    end=start + record.get("dur", 0.0) / 1e6)
        by_id[sid] = span
        if parent is None:
            loaded.roots.append(span)
        else:
            by_id[parent].children.append(span)
    for record in doc.get("traceEvents", ()):
        if record.get("ph") == "i":
            loaded.events.append(
                ObsEvent.make(record.get("name", ""),
                              **(record.get("args") or {}))
            )
    return loaded


def write_chrome_trace(trace: TraceLike, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_chrome_trace(trace))
