"""A tiny synchronous event bus shared by every observability producer.

The bus is the common spine of ``repro.obs``: the optimizer's
:class:`~repro.optimizer.trace.OptimizerTrace` publishes its
:class:`TraceEvent` records here, executors publish counter and
per-vertex events at the end of a run, and the tracer publishes
point-in-time annotations.  Sinks (JSON-lines, Chrome trace) serialize
``bus.events`` alongside the span tree, so one export captures the whole
compile→optimize→execute story.

Events are plain immutable objects appended to one list; subscribers are
called synchronously on publish.  The bus is deliberately dependency-free
so every layer of the system can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple, Type, TypeVar

E = TypeVar("E")


@dataclass(frozen=True)
class ObsEvent:
    """A generic structured event: a kind plus sorted key/value attributes."""

    kind: str
    attrs: Tuple[Tuple[str, object], ...] = ()

    @staticmethod
    def make(kind: str, **attrs) -> "ObsEvent":
        return ObsEvent(kind, tuple(sorted(attrs.items())))

    def get(self, key: str, default=None):
        for name, value in self.attrs:
            if name == key:
                return value
        return default

    def as_dict(self) -> dict:
        return {"kind": self.kind, **dict(self.attrs)}


class EventBus:
    """Append-only event log with synchronous subscribers."""

    __slots__ = ("events", "_subscribers")

    def __init__(self):
        self.events: List[object] = []
        self._subscribers: List[Callable[[object], None]] = []

    def publish(self, event: object) -> None:
        self.events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)

    def subscribe(self, fn: Callable[[object], None]) -> None:
        self._subscribers.append(fn)

    def of_type(self, cls: Type[E]) -> List[E]:
        return [e for e in self.events if isinstance(e, cls)]

    def of_kind(self, kind: str) -> List[ObsEvent]:
        return [
            e for e in self.events
            if isinstance(e, ObsEvent) and e.kind == kind
        ]

    def __len__(self) -> int:
        return len(self.events)
