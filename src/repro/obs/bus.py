"""A tiny synchronous event bus shared by every observability producer.

The bus is the common spine of ``repro.obs``: the optimizer's
:class:`~repro.optimizer.trace.OptimizerTrace` publishes its
:class:`TraceEvent` records here, executors publish counter and
per-vertex events at the end of a run, and the tracer publishes
point-in-time annotations.  Sinks (JSON-lines, Chrome trace) serialize
``bus.events`` alongside the span tree, so one export captures the whole
compile→optimize→execute story.

Events are plain immutable objects appended to one list; subscribers are
called synchronously on publish.  The bus is deliberately dependency-free
so every layer of the system can import it without cycles.

Thread-safety: the service and admission layers publish from multiple
threads while subscribers (e.g. the
:class:`~repro.obs.collector.MetricsCollector`) may attach at any time.
The subscriber list is copy-on-write — ``publish`` iterates an
immutable snapshot taken under the lock, so a concurrent ``subscribe``
can never mutate a sequence mid-iteration; subscribers themselves are
invoked *outside* the lock so they may publish re-entrantly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Tuple, Type, TypeVar

E = TypeVar("E")


@dataclass(frozen=True)
class ObsEvent:
    """A generic structured event: a kind plus sorted key/value attributes."""

    kind: str
    attrs: Tuple[Tuple[str, object], ...] = ()

    @staticmethod
    def make(kind: str, **attrs) -> "ObsEvent":
        return ObsEvent(kind, tuple(sorted(attrs.items())))

    def get(self, key: str, default=None):
        for name, value in self.attrs:
            if name == key:
                return value
        return default

    def as_dict(self) -> dict:
        return {"kind": self.kind, **dict(self.attrs)}


class EventBus:
    """Append-only event log with synchronous subscribers.

    Safe to publish and subscribe from concurrent threads: the
    subscriber tuple is replaced copy-on-write under a lock and
    ``publish`` iterates the immutable snapshot it read, so a
    subscriber attaching mid-publish either sees the event or the next
    one — never a mutated-during-iteration sequence.
    """

    __slots__ = ("events", "_subscribers", "_lock")

    def __init__(self):
        self.events: List[object] = []
        self._subscribers: Tuple[Callable[[object], None], ...] = ()
        self._lock = threading.Lock()

    def publish(self, event: object) -> None:
        with self._lock:
            self.events.append(event)
            subscribers = self._subscribers
        for subscriber in subscribers:
            subscriber(event)

    def subscribe(self, fn: Callable[[object], None]) -> None:
        with self._lock:
            self._subscribers = self._subscribers + (fn,)

    def of_type(self, cls: Type[E]) -> List[E]:
        with self._lock:
            events = list(self.events)
        return [e for e in events if isinstance(e, cls)]

    def of_kind(self, kind: str) -> List[ObsEvent]:
        with self._lock:
            events = list(self.events)
        return [
            e for e in events
            if isinstance(e, ObsEvent) and e.kind == kind
        ]

    def __len__(self) -> int:
        return len(self.events)
