"""``repro.obs`` — structured tracing, profiling, cardinality feedback.

See :mod:`repro.obs.tracer` for the span model, :mod:`repro.obs.sinks`
for rendering/export, :mod:`repro.obs.report` for the q-error and
hotspot reports, :mod:`repro.obs.metrics` /
:mod:`repro.obs.collector` / :mod:`repro.obs.httpd` for the live
telemetry layer (labeled metrics registry, EventBus-driven collector
with per-tenant SLO accounting, HTTP health surface), and
``docs/observability.md`` for the tour.
"""

from .bus import EventBus, ObsEvent
from .collector import MetricsCollector, SLOConfig
from .httpd import MetricsServer
from .metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Recorder,
    exponential_buckets,
    load_snapshot,
    to_json,
    to_prometheus_text,
)
from .report import (
    CardinalityRow,
    Hotspot,
    cardinality_rows,
    cardinality_table,
    hotspot_table,
    hotspots,
    profile_report,
    qerror,
)
from .sinks import (
    LoadedTrace,
    load_chrome_trace,
    load_jsonl,
    render_span_tree,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "CardinalityRow",
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "Hotspot",
    "LATENCY_BUCKETS_S",
    "LoadedTrace",
    "MetricFamily",
    "MetricsCollector",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_TRACER",
    "NullTracer",
    "ObsEvent",
    "Recorder",
    "SLOConfig",
    "Span",
    "Tracer",
    "exponential_buckets",
    "load_snapshot",
    "to_json",
    "to_prometheus_text",
    "cardinality_rows",
    "cardinality_table",
    "hotspot_table",
    "hotspots",
    "load_chrome_trace",
    "load_jsonl",
    "profile_report",
    "qerror",
    "render_span_tree",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
