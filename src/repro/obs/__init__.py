"""``repro.obs`` — structured tracing, profiling, cardinality feedback.

See :mod:`repro.obs.tracer` for the span model, :mod:`repro.obs.sinks`
for rendering/export, :mod:`repro.obs.report` for the q-error and
hotspot reports, and ``docs/observability.md`` for the tour.
"""

from .bus import EventBus, ObsEvent
from .report import (
    CardinalityRow,
    Hotspot,
    cardinality_rows,
    cardinality_table,
    hotspot_table,
    hotspots,
    profile_report,
    qerror,
)
from .sinks import (
    LoadedTrace,
    load_chrome_trace,
    load_jsonl,
    render_span_tree,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "CardinalityRow",
    "EventBus",
    "Hotspot",
    "LoadedTrace",
    "NULL_TRACER",
    "NullTracer",
    "ObsEvent",
    "Span",
    "Tracer",
    "cardinality_rows",
    "cardinality_table",
    "hotspot_table",
    "hotspots",
    "load_chrome_trace",
    "load_jsonl",
    "profile_report",
    "qerror",
    "render_span_tree",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
