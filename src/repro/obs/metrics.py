"""A thread-safe, label-aware metrics registry with exposition encoders.

This is the live-telemetry counterpart of the per-run tracer: where
:mod:`repro.obs.tracer` records one bounded tree per run, the registry
holds *unbounded-lifetime* instruments a long-running service updates
continuously — the layer ``repro serve --stream`` reports through.

Four instrument kinds:

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — a value that can go up and down (queue depth);
* :class:`Histogram` — observations bucketed into **fixed, log-scaled
  bounds** chosen at family creation (:data:`LATENCY_BUCKETS_S` for
  latencies, :func:`exponential_buckets` for sizes), with cumulative
  counts, a running sum and bucket-resolution quantiles (p50/p95/p99);
* :class:`Recorder` — a windowed time series of (timestamp, value)
  pairs against an **injectable clock**, backing rate/burn computations
  (the SLO tracker of :mod:`repro.obs.collector` prunes by it).

Every instrument belongs to a :class:`MetricFamily` (name + help +
label names); children are addressed by label *values*
(``family.labels(tenant="t0").inc()``).  All mutation goes through one
registry lock, so producers on any thread may update concurrently.

Exposition is deliberately boring and dependency-free:

* :func:`to_prometheus_text` renders the Prometheus text format
  (``text/plain; version=0.0.4``) — ``# HELP``/``# TYPE`` headers,
  escaped label values, cumulative ``_bucket{le=...}`` series plus
  ``_sum``/``_count`` for histograms;
* :meth:`MetricsRegistry.snapshot` / :func:`to_json` produce a stable
  (sorted, no wall-clock unless the injected clock supplies it) JSON
  document, and :func:`load_snapshot` is its loss-free loader —
  ``repro top`` renders dashboards from either a file or a live
  ``/metrics.json`` endpoint.

Determinism: nothing in this module reads real time on its own — the
only timestamps are values the caller's clock returned — so every test
runs under a manual clock and the golden exposition snapshots are
byte-stable.
"""

from __future__ import annotations

import bisect
import json
import math
import re
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Fixed log-scaled (base-2) latency bounds in seconds: 1 ms .. ~131 s.
#: Chosen once so that every latency histogram in the system is
#: directly comparable and the exposition is byte-stable.
LATENCY_BUCKETS_S: Tuple[float, ...] = tuple(
    0.001 * (2 ** i) for i in range(18)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def exponential_buckets(start: float, factor: float,
                        count: int) -> Tuple[float, ...]:
    """``count`` log-scaled bucket bounds: start, start*factor, ...

    The standard way to build size histograms (window flush sizes, row
    counts) whose dynamic range spans orders of magnitude.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return tuple(start * (factor ** i) for i in range(count))


def _resolve_clock(clock) -> Callable[[], float]:
    """Accept a 0-arg callable or anything with a ``now()`` method."""
    if clock is None:
        return time.monotonic
    now = getattr(clock, "now", None)
    if now is not None and callable(now):
        return now
    if callable(clock):
        return clock
    raise TypeError(f"not a clock: {clock!r}")


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("_value", "_lock")

    kind = "counter"

    def __init__(self, lock: threading.RLock):
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def sample(self) -> dict:
        return {"value": self._value}


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_value", "_lock")

    kind = "gauge"

    def __init__(self, lock: threading.RLock):
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_max(self, value: float) -> None:
        """Retain the maximum of the current value and ``value``."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def sample(self) -> dict:
        return {"value": self._value}


class Histogram:
    """Fixed-bucket histogram with cumulative exposition.

    ``bounds`` are the *upper* bounds of the finite buckets, strictly
    increasing; one implicit overflow bucket (``+Inf``) catches the
    rest.  Every observation lands in exactly one underlying bucket
    (the first bound ``>= value``), while the exposition renders the
    Prometheus-style *cumulative* counts.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_lock")

    kind = "histogram"

    def __init__(self, lock: threading.RLock,
                 bounds: Sequence[float] = LATENCY_BUCKETS_S):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite "
                             "(+Inf is implicit)")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow (+Inf)
        self._sum = 0.0
        self._count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, overflow last."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile: the upper bound of the bucket
        containing the ``q``-th observation (``inf`` when it fell in
        the overflow bucket, ``None`` when the histogram is empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return None
            rank = max(1, math.ceil(q * total))
            seen = 0
            for index, count in enumerate(self._counts):
                seen += count
                if seen >= rank:
                    if index < len(self.bounds):
                        return self.bounds[index]
                    return math.inf
        return math.inf  # pragma: no cover - unreachable

    def sample(self) -> dict:
        with self._lock:
            cumulative = []
            running = 0
            for bound, count in zip(self.bounds, self._counts):
                running += count
                cumulative.append([bound, running])
            return {
                "count": self._count,
                "sum": self._sum,
                "buckets": cumulative,  # cumulative, +Inf == count
            }


class Recorder:
    """A windowed time series against an injectable clock.

    ``record(value)`` appends ``(clock(), value)``; reads prune
    everything older than ``window`` seconds first.  This is the
    primitive behind SLO burn rates — "breaches in the last N seconds"
    — and it is deterministic whenever the injected clock is.
    """

    __slots__ = ("window", "_clock", "_points", "_lock")

    kind = "recorder"

    def __init__(self, lock: threading.RLock, window: float = 300.0,
                 clock=None):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self._clock = _resolve_clock(clock)
        self._points: List[Tuple[float, float]] = []
        self._lock = lock

    def record(self, value: float = 1.0) -> None:
        now = self._clock()
        with self._lock:
            self._points.append((now, float(value)))
            self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.window
        points = self._points
        drop = 0
        for ts, _ in points:
            if ts > horizon:
                break
            drop += 1
        if drop:
            del points[:drop]

    def values(self) -> List[float]:
        now = self._clock()
        with self._lock:
            self._prune(now)
            return [v for _, v in self._points]

    def count(self) -> int:
        return len(self.values())

    def total(self) -> float:
        return sum(self.values())

    def rate(self) -> float:
        """Events per second over the window."""
        return self.count() / self.window

    def sample(self) -> dict:
        return {
            "window_seconds": self.window,
            "count": self.count(),
            "sum": self.total(),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram,
          "recorder": Recorder}


class MetricFamily:
    """A named metric plus its labeled children.

    Children are created lazily per label-value tuple; an unlabeled
    family has exactly one child under the empty tuple.
    """

    __slots__ = ("name", "help", "kind", "labelnames", "_children",
                 "_lock", "_make")

    def __init__(self, name: str, help: str, kind: str,
                 labelnames: Sequence[str], lock: threading.RLock,
                 make: Callable):
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = lock
        self._make = make

    def labels(self, *values, **kv):
        """The child instrument for one label-value combination
        (created on first use)."""
        values = self._resolve_values(values, kv)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._children[values] = self._make()
            return child

    def peek(self, *values, **kv):
        """The existing child for one combination, or ``None`` —
        never creates, so read paths (snapshots, derived ratios) stay
        idempotent."""
        values = self._resolve_values(values, kv)
        with self._lock:
            return self._children.get(values)

    def _resolve_values(self, values, kv) -> Tuple[str, ...]:
        if kv:
            if values:
                raise TypeError("pass label values either positionally "
                                "or by keyword, not both")
            try:
                values = tuple(str(kv[name]) for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"metric {self.name!r} expects labels "
                    f"{self.labelnames}, got {sorted(kv)}"
                ) from exc
            if len(kv) != len(self.labelnames):
                raise ValueError(
                    f"metric {self.name!r} expects labels "
                    f"{self.labelnames}, got {sorted(kv)}"
                )
        else:
            values = tuple(str(v) for v in values)
            if len(values) != len(self.labelnames):
                raise ValueError(
                    f"metric {self.name!r} expects "
                    f"{len(self.labelnames)} label value(s), "
                    f"got {len(values)}"
                )
        return values

    # unlabeled conveniences -------------------------------------------------

    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} is labeled {self.labelnames}; "
                "address a child via .labels(...)"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def set_max(self, value: float) -> None:
        self._solo().set_max(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def record(self, value: float = 1.0) -> None:
        self._solo().record(value)

    @property
    def value(self) -> float:
        return self._solo().value

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Label-values → child pairs, sorted for stable exposition."""
        with self._lock:
            return sorted(self._children.items())

    def sample(self) -> dict:
        samples = []
        for values, child in self.children():
            entry = {"labels": dict(zip(self.labelnames, values))}
            entry.update(child.sample())
            if self.kind == "histogram":
                for name, q in (("p50", 0.50), ("p95", 0.95),
                                ("p99", 0.99)):
                    quantile = child.quantile(q)
                    entry[name] = (
                        None if quantile is None
                        else quantile if math.isfinite(quantile)
                        else "inf"
                    )
            samples.append(entry)
        return {
            "type": self.kind,
            "help": self.help,
            "labels": list(self.labelnames),
            "samples": samples,
        }


class MetricsRegistry:
    """Thread-safe home of every metric family.

    One re-entrant lock guards family creation and all child mutation;
    instruments share it so a snapshot sees each instrument atomically.
    Re-requesting a family with the same (kind, labelnames) returns the
    existing one; a conflicting redefinition raises.
    """

    SNAPSHOT_VERSION = 1

    def __init__(self, clock=None):
        self._lock = threading.RLock()
        self._families: Dict[str, MetricFamily] = {}
        self._clock = _resolve_clock(clock)

    # -- family constructors -----------------------------------------------

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help, "counter", labelnames,
                            lambda: Counter(self._lock))

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help, "gauge", labelnames,
                            lambda: Gauge(self._lock))

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = LATENCY_BUCKETS_S,
                  ) -> MetricFamily:
        bounds = tuple(float(b) for b in buckets)
        Histogram(self._lock, bounds)   # validate the bounds eagerly
        return self._family(name, help, "histogram", labelnames,
                            lambda: Histogram(self._lock, bounds))

    def recorder(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 window: float = 300.0) -> MetricFamily:
        if window <= 0:
            raise ValueError("window must be positive")
        return self._family(
            name, help, "recorder", labelnames,
            lambda: Recorder(self._lock, window, self._clock),
        )

    def _family(self, name: str, help: str, kind: str,
                labelnames: Sequence[str], make: Callable) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.labelnames}, cannot "
                        f"re-register as {kind}{labelnames}"
                    )
                return family
            family = MetricFamily(name, help, kind, labelnames,
                                  self._lock, make)
            self._families[name] = family
            return family

    # -- introspection ------------------------------------------------------

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name]
                    for name in sorted(self._families)]

    def snapshot(self) -> dict:
        """Stable JSON-able document of every family and sample.

        The only timestamp is the injected clock's ``now()`` — under a
        manual clock the whole document is byte-stable.
        """
        return {
            "version": self.SNAPSHOT_VERSION,
            "generated_at": self._clock(),
            "metrics": {
                family.name: family.sample()
                for family in self.families()
            },
        }


# -- exposition --------------------------------------------------------------

def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
                 .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if value != value:  # pragma: no cover - NaN never produced here
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:  # pragma: no cover - not produced
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(names: Sequence[str], values: Sequence[str],
                 extra: Sequence[Tuple[str, str]] = ()) -> str:
    parts = [f'{n}="{_escape_label_value(v)}"'
             for n, v in zip(names, values)]
    parts.extend(f'{n}="{_escape_label_value(v)}"' for n, v in extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Recorders are exported as two gauges (``_window_count`` /
    ``_window_sum``) since Prometheus has no native windowed type.
    """
    lines: List[str] = []
    for family in registry.families():
        if family.kind == "recorder":
            lines.append(f"# HELP {family.name}_window_count "
                         f"{family.help} (events in window)")
            lines.append(f"# TYPE {family.name}_window_count gauge")
            for values, child in family.children():
                labels = _labels_text(family.labelnames, values)
                lines.append(f"{family.name}_window_count{labels} "
                             f"{_format_value(child.count())}")
            lines.append(f"# HELP {family.name}_window_sum "
                         f"{family.help} (sum over window)")
            lines.append(f"# TYPE {family.name}_window_sum gauge")
            for values, child in family.children():
                labels = _labels_text(family.labelnames, values)
                lines.append(f"{family.name}_window_sum{labels} "
                             f"{_format_value(child.total())}")
            continue
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.children():
            if family.kind == "histogram":
                running = 0
                counts = child.bucket_counts()
                for bound, count in zip(child.bounds, counts):
                    running += count
                    labels = _labels_text(
                        family.labelnames, values,
                        extra=[("le", _format_value(bound))],
                    )
                    lines.append(f"{family.name}_bucket{labels} "
                                 f"{running}")
                labels = _labels_text(family.labelnames, values,
                                      extra=[("le", "+Inf")])
                lines.append(f"{family.name}_bucket{labels} "
                             f"{child.count}")
                labels = _labels_text(family.labelnames, values)
                lines.append(f"{family.name}_sum{labels} "
                             f"{_format_value(child.sum)}")
                lines.append(f"{family.name}_count{labels} "
                             f"{child.count}")
            else:
                labels = _labels_text(family.labelnames, values)
                lines.append(f"{family.name}{labels} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def to_json(registry: MetricsRegistry, **dump_kwargs) -> str:
    """The registry snapshot as canonical JSON text."""
    dump_kwargs.setdefault("sort_keys", True)
    dump_kwargs.setdefault("indent", 2)
    return json.dumps(registry.snapshot(), **dump_kwargs) + "\n"


def load_snapshot(text: str) -> dict:
    """Parse and validate a snapshot produced by :func:`to_json` (or
    :meth:`MetricsRegistry.snapshot` via ``json.dumps``); the loader
    side of the round trip ``repro top`` consumes."""
    doc = json.loads(text)
    if not isinstance(doc, dict) or "metrics" not in doc:
        raise ValueError("not a metrics snapshot: missing 'metrics'")
    version = doc.get("version")
    if version != MetricsRegistry.SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported metrics snapshot version: {version!r}"
        )
    for name, family in doc["metrics"].items():
        if family.get("type") not in _KINDS:
            raise ValueError(
                f"metric {name!r} has unknown type {family.get('type')!r}"
            )
        if not isinstance(family.get("samples"), list):
            raise ValueError(f"metric {name!r} has no samples list")
    return doc
