"""EventBus → metrics translation plus per-tenant SLO accounting.

The system already narrates itself on the shared
:class:`~repro.obs.bus.EventBus` — ``service.submit``,
``service.cache``, ``service.admission.*``, ``stats.feedback.*`` and
the executors' ``exec.*`` counter/vertex events.  Rather than
scattering instrumentation call sites through every layer, the
:class:`MetricsCollector` *subscribes* to that spine and translates
events into labeled series in a :class:`~repro.obs.metrics.MetricsRegistry`:
per-tenant submit latency percentiles, queue depth, window flush
sizes, cache hit ratios, shared-work savings attributed per tenant via
the existing ``serves`` field, feedback gate decisions, and
retry/failure rates.

SLO accounting follows the burn-rate model: each tenant has a latency
objective (seconds) and an availability target; every resolved
admission submit is ``ok`` (within objective, no error) or a breach.
Compliance is lifetime ``ok/total``; the **burn rate** is the breach
rate over a sliding :class:`~repro.obs.metrics.Recorder` window divided
by the error budget ``1 - target`` — burn > 1 means the tenant is
currently eating budget faster than the SLO allows.

Everything is deterministic under injected clocks: latencies arrive
*inside* events (measured on the admission controller's clock) and the
collector's own clock only timestamps the SLO window and the snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .bus import EventBus, ObsEvent
from .metrics import (
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    exponential_buckets,
)

#: Log-scaled size buckets for "how many X per flush" histograms.
SIZE_BUCKETS = exponential_buckets(1, 2, 12)  # 1 .. 2048


@dataclass(frozen=True)
class SLOConfig:
    """Service-level objective parameters.

    ``latency_objective_s`` may be overridden per tenant via
    ``tenant_objectives``; availability counts a submit as *good* when
    it resolved without error within its tenant's objective.
    """

    latency_objective_s: float = 1.0
    #: Fraction of submits that must be good (error budget = 1 - this).
    availability_target: float = 0.99
    #: Sliding window (seconds) for the burn-rate computation.
    window_s: float = 300.0
    tenant_objectives: Mapping[str, float] = field(default_factory=dict)

    def objective_for(self, tenant: str) -> float:
        return float(self.tenant_objectives.get(
            tenant, self.latency_objective_s))

    @property
    def error_budget(self) -> float:
        return max(1.0 - self.availability_target, 1e-9)


class MetricsCollector:
    """Subscribe once, measure everything the bus already says.

    ::

        collector = MetricsCollector(clock=clock)
        service = QueryService(catalog, config, metrics=collector)
        ...
        snapshot = service.metrics_snapshot()      # == collector.snapshot()
        text = collector.prometheus_text()         # /metrics body

    The collector is itself a callable ``(event) -> None`` so it plugs
    straight into :meth:`EventBus.subscribe`; events it does not know
    are ignored, so producers may grow new kinds freely.
    """

    def __init__(self, *, registry: Optional[MetricsRegistry] = None,
                 clock=None, slo: Optional[SLOConfig] = None):
        self.registry = registry or MetricsRegistry(clock=clock)
        self.slo = slo or SLOConfig()
        r = self.registry

        # service / plan cache
        self.submits = r.counter(
            "repro_submits_total",
            "Service submissions by outcome", ["op"])
        self.cache_events = r.counter(
            "repro_cache_events_total",
            "Plan-cache transitions", ["op"])
        self.catalog_updates = r.counter(
            "repro_catalog_updates_total",
            "Statistics updates applied to the catalog")

        # admission front-end
        self.admission_submits = r.counter(
            "repro_admission_submits_total",
            "Admission submissions by tenant and outcome",
            ["tenant", "outcome"])
        self.queue_depth = r.gauge(
            "repro_admission_queue_depth",
            "Scripts currently pending admission")
        self.queue_depth_max = r.gauge(
            "repro_admission_queue_depth_max",
            "High-water mark of the admission queue")
        self.windows = r.counter(
            "repro_admission_windows_total",
            "Window flushes by trigger", ["trigger"])
        self.window_scripts = r.histogram(
            "repro_admission_window_scripts",
            "Scripts drained per window flush",
            buckets=SIZE_BUCKETS)
        self.groups = r.counter(
            "repro_admission_groups_total",
            "Compatibility groups executed")
        self.failed_groups = r.counter(
            "repro_admission_failed_groups_total",
            "Groups whose shared execution raised")
        self.latency = r.histogram(
            "repro_admission_latency_seconds",
            "Submit-to-resolve latency per tenant",
            ["tenant"], buckets=LATENCY_BUCKETS_S)
        self.failures = r.counter(
            "repro_admission_failures_total",
            "Submissions resolved with an error, per tenant",
            ["tenant"])

        # shared-work savings (the paper's accounting question)
        self.shared_vertices = r.counter(
            "repro_shared_vertices_total",
            "Cross-script vertices this tenant rode", ["tenant"])
        self.shared_rows_saved = r.counter(
            "repro_shared_rows_saved_total",
            "Rows not re-processed thanks to shared execution, "
            "attributed per tenant", ["tenant"])
        self.dedup_executions_saved = r.counter(
            "repro_dedup_executions_saved_total",
            "Whole executions avoided by in-window dedup", ["tenant"])

        # learned-statistics feedback
        self.feedback_decisions = r.counter(
            "repro_feedback_decisions_total",
            "Feedback gate decisions by action", ["action"])
        self.feedback_captures = r.counter(
            "repro_feedback_captures_total",
            "Fragment-cardinality capture passes")
        self.feedback_publishes = r.counter(
            "repro_feedback_publishes_total",
            "Correction-set publications")

        # execution engine
        self.exec_rows = r.counter(
            "repro_exec_rows_total",
            "Execution row counters summed over runs", ["counter"])
        self.exec_max_partition = r.gauge(
            "repro_exec_max_partition_rows",
            "Largest partition observed (skew indicator)")
        self.exec_operators = r.counter(
            "repro_exec_operator_invocations_total",
            "Operator invocations by kind", ["operator"])
        self.exec_vertices = r.counter(
            "repro_exec_vertices_total",
            "Scheduled vertices finalized")
        self.exec_retries = r.counter(
            "repro_exec_task_retries_total",
            "Failed task attempts that were retried")

        # SLO accounting
        self.slo_requests = r.counter(
            "repro_slo_requests_total",
            "Resolved submits by tenant and verdict",
            ["tenant", "verdict"])
        self.slo_window = r.recorder(
            "repro_slo_window_breaches",
            "Breaches inside the sliding SLO window",
            ["tenant"], window=self.slo.window_s)
        self.slo_window_total = r.recorder(
            "repro_slo_window_requests",
            "Resolved submits inside the sliding SLO window",
            ["tenant"], window=self.slo.window_s)

        self._dispatch = {
            "service.submit": self._on_submit,
            "service.cache": self._on_cache,
            "service.catalog": self._on_catalog,
            "service.admission.enqueue": self._on_enqueue,
            "service.admission.dedup": self._on_dedup,
            "service.admission.reject": self._on_reject,
            "service.admission.queue_depth": self._on_queue_depth,
            "service.admission.window_flush": self._on_window_flush,
            "service.admission.group": self._on_group,
            "service.admission.group_failed": self._on_group_failed,
            "service.admission.resolve": self._on_resolve,
            "service.admission.savings": self._on_savings,
            "stats.feedback.decision": self._on_feedback_decision,
            "stats.feedback.capture": self._on_feedback_capture,
            "stats.feedback.publish": self._on_feedback_publish,
            "exec.counter": self._on_exec_counter,
            "exec.operator": self._on_exec_operator,
            "exec.vertex": self._on_exec_vertex,
        }

    # -- wiring -------------------------------------------------------------

    def subscribe(self, bus: EventBus) -> "MetricsCollector":
        bus.subscribe(self)
        return self

    def __call__(self, event: object) -> None:
        if not isinstance(event, ObsEvent):
            return
        handler = self._dispatch.get(event.kind)
        if handler is not None:
            handler(event)

    # -- handlers -----------------------------------------------------------

    def _on_submit(self, event: ObsEvent) -> None:
        self.submits.labels(op=event.get("op", "unknown")).inc()

    def _on_cache(self, event: ObsEvent) -> None:
        self.cache_events.labels(op=event.get("op", "unknown")).inc()

    def _on_catalog(self, event: ObsEvent) -> None:
        self.catalog_updates.inc()

    def _on_enqueue(self, event: ObsEvent) -> None:
        tenant = event.get("tenant", "default")
        self.admission_submits.labels(
            tenant=tenant, outcome="accepted").inc()

    def _on_dedup(self, event: ObsEvent) -> None:
        tenant = event.get("tenant", "default")
        self.admission_submits.labels(
            tenant=tenant, outcome="deduped").inc()
        self.dedup_executions_saved.labels(tenant=tenant).inc()

    def _on_reject(self, event: ObsEvent) -> None:
        self.admission_submits.labels(
            tenant=event.get("tenant", "default"),
            outcome="rejected").inc()

    def _on_queue_depth(self, event: ObsEvent) -> None:
        depth = float(event.get("depth", 0))
        self.queue_depth.set(depth)
        self.queue_depth_max.set_max(depth)

    def _on_window_flush(self, event: ObsEvent) -> None:
        self.windows.labels(trigger=event.get("trigger", "unknown")).inc()
        self.window_scripts.observe(float(event.get("scripts", 0)))

    def _on_group(self, event: ObsEvent) -> None:
        self.groups.inc()

    def _on_group_failed(self, event: ObsEvent) -> None:
        self.failed_groups.inc()

    def _on_resolve(self, event: ObsEvent) -> None:
        tenant = event.get("tenant", "default")
        latency = float(event.get("latency", 0.0))
        ok = bool(event.get("ok", True))
        self.latency.labels(tenant=tenant).observe(latency)
        if not ok:
            self.failures.labels(tenant=tenant).inc()
        good = ok and latency <= self.slo.objective_for(tenant)
        self.slo_requests.labels(
            tenant=tenant, verdict="ok" if good else "breach").inc()
        self.slo_window_total.labels(tenant=tenant).record()
        if not good:
            self.slo_window.labels(tenant=tenant).record()

    def _on_savings(self, event: ObsEvent) -> None:
        tenant = event.get("tenant", "default")
        self.shared_vertices.labels(tenant=tenant).inc(
            float(event.get("vertices", 0)))
        self.shared_rows_saved.labels(tenant=tenant).inc(
            float(event.get("rows_saved", 0.0)))

    def _on_feedback_decision(self, event: ObsEvent) -> None:
        self.feedback_decisions.labels(
            action=event.get("action", "unknown")).inc()

    def _on_feedback_capture(self, event: ObsEvent) -> None:
        self.feedback_captures.inc()

    def _on_feedback_publish(self, event: ObsEvent) -> None:
        self.feedback_publishes.inc()

    def _on_exec_counter(self, event: ObsEvent) -> None:
        name = event.get("name", "")
        value = float(event.get("value", 0))
        if name == "max_partition_rows":
            self.exec_max_partition.set_max(value)
        elif name == "task_retries":
            self.exec_retries.inc(value)
        else:
            self.exec_rows.labels(counter=name).inc(value)

    def _on_exec_operator(self, event: ObsEvent) -> None:
        self.exec_operators.labels(
            operator=event.get("name", "unknown")).inc(
                float(event.get("invocations", 0)))

    def _on_exec_vertex(self, event: ObsEvent) -> None:
        self.exec_vertices.inc()

    # -- derived views ------------------------------------------------------

    def cache_hit_ratio(self) -> Optional[float]:
        """hits / lookups over the cache's lifetime (None before any)."""
        hits = _value(self.cache_events.peek(op="hit"))
        misses = _value(self.cache_events.peek(op="miss"))
        lookups = hits + misses
        if lookups == 0:
            return None
        return hits / lookups

    def tenants(self):
        """Every tenant that resolved at least one submit, sorted."""
        seen = set()
        for values, _child in self.slo_requests.children():
            seen.add(values[0])
        return sorted(seen)

    def slo_report(self) -> Dict[str, dict]:
        """Per-tenant SLO table: lifetime compliance + windowed burn."""
        report: Dict[str, dict] = {}
        for tenant in self.tenants():
            good = _value(self.slo_requests.peek(
                tenant=tenant, verdict="ok"))
            breaches = _value(self.slo_requests.peek(
                tenant=tenant, verdict="breach"))
            total = good + breaches
            window_rec = self.slo_window_total.peek(tenant=tenant)
            window_total = window_rec.count() if window_rec else 0
            breach_rec = self.slo_window.peek(tenant=tenant)
            window_breaches = breach_rec.count() if breach_rec else 0
            compliance = (good / total) if total else 1.0
            breach_rate = (window_breaches / window_total
                           if window_total else 0.0)
            hist = self.latency.peek(tenant=tenant)
            report[tenant] = {
                "objective_seconds": self.slo.objective_for(tenant),
                "requests": int(total),
                "breaches": int(breaches),
                "failures": int(_value(self.failures.peek(
                    tenant=tenant))),
                "compliance": compliance,
                "window_requests": window_total,
                "window_breaches": window_breaches,
                "burn_rate": breach_rate / self.slo.error_budget,
                "p50_seconds": hist.quantile(0.50) if hist else None,
                "p95_seconds": hist.quantile(0.95) if hist else None,
                "p99_seconds": hist.quantile(0.99) if hist else None,
            }
        return report

    # -- exposition ---------------------------------------------------------

    def snapshot(self) -> dict:
        """The registry snapshot plus the SLO table and derived ratios
        — the document ``--metrics-out``, ``/metrics.json`` and
        ``repro top`` all share."""
        doc = self.registry.snapshot()
        doc["slo"] = {
            "availability_target": self.slo.availability_target,
            "window_seconds": self.slo.window_s,
            "tenants": self.slo_report(),
        }
        ratio = self.cache_hit_ratio()
        doc["derived"] = {
            "cache_hit_ratio": ratio,
        }
        # JSON has no inf; the quantile columns may produce it.
        return _definite(doc)

    def prometheus_text(self) -> str:
        from .metrics import to_prometheus_text

        return to_prometheus_text(self.registry)


def _value(child) -> float:
    """A child's value, or 0.0 when it was never created."""
    return child.value if child is not None else 0.0


def _definite(value):
    """Replace non-finite floats with JSON-safe markers, recursively."""
    import math

    if isinstance(value, float) and not math.isfinite(value):
        return "inf" if value > 0 else "-inf"
    if isinstance(value, dict):
        return {k: _definite(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_definite(v) for v in value]
    return value
