"""Hierarchical span tracing for the compile→optimize→execute pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects — ``parse``,
``compile``, ``cse.detect``, ``optimize.phase1``/``phase2``, ``verify``,
``stage_graph.cut``, ``scheduler.vertex/<name>``, ``task/<partition>`` —
each carrying typed attributes (group ids, costs, row counts, retry
counts).  Rendering and export are handled by :mod:`repro.obs.sinks`;
the cardinality-feedback report by :mod:`repro.obs.report`.

Design constraints, in order:

* **Zero cost when disabled.**  Every traced API takes a tracer argument
  defaulting to :data:`NULL_TRACER`, whose methods are no-ops returning
  shared singletons.  Call sites live only at stage boundaries (once per
  phase, vertex or task) — never inside per-row or per-operator loops —
  so the disabled hot path allocates nothing new; the observability
  benchmark holds the traced end-to-end overhead under 10%.
* **Deterministic structure.**  :meth:`Span.structure` captures the tree
  shape and semantic attributes while excluding wall-clock values, and
  sorts sibling subtrees canonically; the same script/seed produces the
  same structure regardless of worker count or task completion order
  (the scheduler records its spans during deterministic finalization).
* **Single writer.**  Spans are recorded from the coordinating thread
  only; worker threads hand their timings back to the scheduler, which
  records them at finalization.  The tracer therefore needs no locks.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from .bus import EventBus, ObsEvent

#: Attribute keys excluded from :meth:`Span.structure` (anything that is
#: wall-clock derived and therefore run-to-run nondeterministic).
VOLATILE_ATTRS = frozenset({"seconds", "wall_seconds", "wall_ms"})


class Span:
    """One timed, attributed node of the trace tree."""

    __slots__ = ("name", "attrs", "children", "start", "end")

    def __init__(self, name: str, attrs: Optional[Dict[str, object]] = None,
                 start: float = 0.0, end: float = 0.0):
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.start = start
        self.end = end

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0)

    def set(self, **attrs) -> "Span":
        """Attach attributes; returns the span for chaining."""
        self.attrs.update(attrs)
        return self

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (preorder, self included) with ``name``."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def walk(self):
        """Preorder iteration over the subtree, self included."""
        yield self
        for child in self.children:
            yield from child.walk()

    def structure(self) -> Tuple:
        """Canonical wall-clock-free shape: (name, attrs, children).

        Sibling subtrees are sorted by their canonical form, so the
        result is independent of recording order — two runs of the same
        script/seed compare equal across worker counts even though task
        completion interleaves differently.
        """
        attrs = tuple(sorted(
            (k, v) for k, v in self.attrs.items() if k not in VOLATILE_ATTRS
        ))
        children = tuple(sorted(
            (c.structure() for c in self.children), key=repr
        ))
        return (self.name, attrs, children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, attrs={self.attrs!r}, "
                f"children={len(self.children)})")


class _ActiveSpan:
    """Context manager that opens a span on the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, object]):
        self._tracer = tracer
        self._span = Span(name, attrs)

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        span.start = tracer._clock()
        tracer._attach(span, parent=None)
        tracer._stack.append(span)
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.end = self._tracer._clock()
        if exc_type is not None:
            span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._stack.pop()
        return False


class Tracer:
    """Collects spans and publishes events to a shared bus.

    ``clock`` is injectable for deterministic tests (defaults to
    :func:`time.perf_counter`).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.bus = EventBus()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- spans ------------------------------------------------------------

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a span nested under the innermost active span::

            with tracer.span("optimize.phase1") as sp:
                ...
                sp.set(cost=plan_cost)
        """
        return _ActiveSpan(self, name, attrs)

    def record_span(self, name: str, start: float, end: float,
                    parent: Optional[Span] = None, **attrs) -> Span:
        """Attach an already-timed span (scheduler finalization path).

        ``parent=None`` nests under the innermost active span, or at the
        root when none is active.
        """
        span = Span(name, attrs, start=start, end=end)
        self._attach(span, parent)
        return span

    def _attach(self, span: Span, parent: Optional[Span]) -> None:
        if parent is None:
            parent = self._stack[-1] if self._stack else None
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @property
    def root(self) -> Optional[Span]:
        return self.roots[0] if self.roots else None

    # -- events -----------------------------------------------------------

    def emit(self, kind: str, **attrs) -> None:
        """Publish a point-in-time :class:`ObsEvent` to the bus."""
        self.bus.publish(ObsEvent.make(kind, **attrs))

    def now(self) -> float:
        return self._clock()


class _NullSpan:
    """Shared inert span: accepts attributes, records nothing."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, object] = {}
    children: Tuple = ()
    start = end = 0.0
    duration = 0.0

    def set(self, **attrs) -> "_NullSpan":
        return self


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled tracer: every method is a constant-time no-op."""

    __slots__ = ()
    enabled = False
    bus = None
    roots: Tuple = ()
    current = None
    root = None

    def span(self, name: str, **attrs) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def record_span(self, name: str, start: float, end: float,
                    parent: Optional[Span] = None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def emit(self, kind: str, **attrs) -> None:
        return None

    def now(self) -> float:
        return 0.0


#: Module-wide disabled tracer; the default for every traced API.
NULL_TRACER = NullTracer()
