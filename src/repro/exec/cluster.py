"""The simulated cluster: input files, machines, output store.

Stands in for the Cosmos/Dryad layer of the paper's stack.  Input
"files" are in-memory row lists registered per path; executing a plan
reads them, moves rows between simulated machines, and writes result
files into :attr:`Cluster.outputs`.

Output writes go through :meth:`Cluster.write_output` under a lock so
that the task scheduler's worker threads can commit result files
concurrently; the sequential executor uses the same path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..plan.expressions import Row
from .datasets import Dataset


@dataclass
class Cluster:
    """A fixed-size cluster with a shared input/output file namespace."""

    machines: int = 4
    files: Dict[str, List[Row]] = field(default_factory=dict)
    outputs: Dict[str, Dataset] = field(default_factory=dict)
    _output_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def load_file(self, path: str, rows: List[Row]) -> None:
        """Register (or replace) an input file's contents."""
        if self.machines < 1:
            raise ValueError("cluster needs at least one machine")
        self.files[path] = list(rows)

    def read_file(self, path: str) -> List[Row]:
        if path not in self.files:
            raise KeyError(f"input file {path!r} not loaded into the cluster")
        return self.files[path]

    def write_output(self, path: str, data: Dataset) -> None:
        """Commit a result file (thread-safe)."""
        with self._output_lock:
            self.outputs[path] = data

    def output_rows(self, path: str) -> Optional[Dataset]:
        return self.outputs.get(path)
