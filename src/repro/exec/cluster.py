"""The simulated cluster: input files, machines, output store.

Stands in for the Cosmos/Dryad layer of the paper's stack.  Input
"files" are in-memory row lists registered per path; executing a plan
reads them, moves rows between simulated machines, and writes result
files into :attr:`Cluster.outputs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..plan.expressions import Row
from .datasets import Dataset


@dataclass
class Cluster:
    """A fixed-size cluster with a shared input/output file namespace."""

    machines: int = 4
    files: Dict[str, List[Row]] = field(default_factory=dict)
    outputs: Dict[str, Dataset] = field(default_factory=dict)

    def load_file(self, path: str, rows: List[Row]) -> None:
        """Register (or replace) an input file's contents."""
        if self.machines < 1:
            raise ValueError("cluster needs at least one machine")
        self.files[path] = list(rows)

    def read_file(self, path: str) -> List[Row]:
        if path not in self.files:
            raise KeyError(f"input file {path!r} not loaded into the cluster")
        return self.files[path]

    def output_rows(self, path: str) -> Optional[Dataset]:
        return self.outputs.get(path)
