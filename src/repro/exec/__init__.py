"""Distributed execution simulator (the Cosmos/Dryad substrate)."""

from .backend import BACKEND_NAMES, Backend, get_backend
from .cluster import Cluster
from .columnar import ColumnarDataset, ColumnarExecutor, ColumnBatch
from .datasets import Dataset, canonical_sort_key, hash_partition_index
from .metrics import ExecutionMetrics, VertexStats
from .runtime import ExecutionError, FragmentCutMixin, PlanExecutor
from .scheduler import (
    FaultInjection,
    InjectedFault,
    RetryPolicy,
    TaskScheduler,
    VertexFailedError,
)
from .stage_graph import StageGraph, Vertex, build_stage_graph
from .dist import (
    RUNTIME_NAMES,
    KillPlan,
    ProcessScheduler,
    SpillStore,
    WorkerLost,
)

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "Cluster",
    "ColumnBatch",
    "ColumnarDataset",
    "ColumnarExecutor",
    "Dataset",
    "ExecutionError",
    "ExecutionMetrics",
    "FaultInjection",
    "FragmentCutMixin",
    "InjectedFault",
    "KillPlan",
    "PlanExecutor",
    "ProcessScheduler",
    "RUNTIME_NAMES",
    "RetryPolicy",
    "SpillStore",
    "StageGraph",
    "TaskScheduler",
    "Vertex",
    "VertexFailedError",
    "VertexStats",
    "WorkerLost",
    "build_stage_graph",
    "canonical_sort_key",
    "get_backend",
    "hash_partition_index",
]
