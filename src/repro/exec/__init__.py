"""Distributed execution simulator (the Cosmos/Dryad substrate)."""

from .cluster import Cluster
from .datasets import Dataset, hash_partition_index
from .metrics import ExecutionMetrics
from .runtime import ExecutionError, PlanExecutor

__all__ = [
    "Cluster",
    "Dataset",
    "ExecutionError",
    "ExecutionMetrics",
    "PlanExecutor",
    "hash_partition_index",
]
