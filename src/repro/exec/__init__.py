"""Distributed execution simulator (the Cosmos/Dryad substrate)."""

from .cluster import Cluster
from .datasets import Dataset, hash_partition_index
from .metrics import ExecutionMetrics, VertexStats
from .runtime import ExecutionError, PlanExecutor
from .scheduler import (
    FaultInjection,
    InjectedFault,
    RetryPolicy,
    TaskScheduler,
    VertexFailedError,
)
from .stage_graph import StageGraph, Vertex, build_stage_graph

__all__ = [
    "Cluster",
    "Dataset",
    "ExecutionError",
    "ExecutionMetrics",
    "FaultInjection",
    "InjectedFault",
    "PlanExecutor",
    "RetryPolicy",
    "StageGraph",
    "TaskScheduler",
    "Vertex",
    "VertexFailedError",
    "VertexStats",
    "build_stage_graph",
    "hash_partition_index",
]
