"""Task-parallel vertex scheduler with fault-tolerant retries.

This is the job-manager layer of the Cosmos/Dryad stack the paper runs
on: :func:`~repro.exec.stage_graph.build_stage_graph` cuts an optimized
physical DAG into vertices at exchange and spool boundaries, and
:class:`TaskScheduler` runs them on a :class:`ThreadPoolExecutor` with

* **dependency tracking** — a vertex launches only once every producer
  vertex has committed its output;
* **exactly-once spools** — a shared subexpression's materializing
  vertex exists once in the stage graph, so its producer pipeline runs
  once no matter how many consumers re-read the result (the runtime
  counterpart of the cost model's DAG-aware spool accounting);
* **per-partition tasks** — partition-local vertices fan out into one
  task per partition, the granularity at which the real job manager
  schedules;
* **seeded fault injection with bounded retry/backoff** — any task
  attempt can be made to fail deterministically; failed attempts are
  retried up to ``RetryPolicy.max_retries`` times, and exhausting the
  budget raises a :class:`VertexFailedError` naming the vertex;
* **per-vertex runtime metrics** — launches, tasks, retries, rows
  in/out, wall time and the estimated-vs-actual cardinality ratio,
  folded into :class:`~repro.exec.metrics.ExecutionMetrics`.

Operator semantics are shared with the sequential executor: every task
evaluates its fragment through the selected backend's fragment executor
(a :class:`~repro.exec.runtime.FragmentCutMixin` subclass that stops
recursion at the vertex's cut points), so the two execution paths
produce identical results and identical counter metrics by
construction.  The ``backend`` parameter picks the engine ("row" or
"columnar"); conversion shims at the vertex boundary keep committed
results as row :class:`~repro.exec.datasets.Dataset` objects, so
dependency tracking, retries, spools and attribution never see the
backend's internal layout.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.tracer import NULL_TRACER
from ..plan.physical import PhysicalPlan
from .backend import _RowFragmentExecutor, get_backend
from .cluster import Cluster
from .datasets import Dataset
from .metrics import ExecutionMetrics, VertexStats
from .runtime import ExecutionError
from .stage_graph import StageGraph, Vertex, build_stage_graph

#: Historical name of the row fragment executor (kept for callers that
#: imported it from here before the backend registry existed).
_FragmentExecutor = _RowFragmentExecutor


class InjectedFault(RuntimeError):
    """A deterministic, injected task failure (always retryable)."""


class VertexFailedError(ExecutionError):
    """A vertex exhausted its retry budget (or failed fatally)."""

    def __init__(self, vertex: str, attempts: int, cause: BaseException):
        super().__init__(
            f"vertex {vertex} failed after {attempts} attempt(s): {cause}"
        )
        self.vertex = vertex
        self.attempts = attempts
        self.cause = cause


@dataclass(frozen=True)
class FaultInjection:
    """Seeded per-task failure injection.

    Whether attempt *k* of a task fails is a pure function of
    ``(seed, vertex, partition, attempt)``, so runs are reproducible and
    independent of worker count and completion order.
    """

    rate: float = 0.0
    seed: int = 0

    def should_fail(self, vertex: str, part: Optional[int],
                    attempt: int) -> bool:
        if self.rate <= 0.0:
            return False
        rng = random.Random(f"{self.seed}:{vertex}:{part}:{attempt}")
        return rng.random() < self.rate


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff."""

    max_retries: int = 3
    #: Seconds slept before retry attempt ``k`` is ``backoff * 2**(k-1)``;
    #: the default keeps tests instantaneous.
    backoff: float = 0.0

    def delay(self, attempt: int) -> float:
        if attempt <= 0 or self.backoff <= 0.0:
            return 0.0
        return self.backoff * (2.0 ** (attempt - 1))


@dataclass
class _Task:
    vertex: Vertex
    #: Partition index for per-partition tasks, ``None`` for whole-vertex.
    part: Optional[int]
    #: Slot in the vertex run's result/scratch arrays.
    slot: int
    attempt: int = 0


@dataclass
class _VertexRun:
    """Mutable scheduling state of one launched vertex."""

    vertex: Vertex
    tasks_total: int
    sliced: bool
    tasks_done: int = 0
    results: List[Optional[Dataset]] = field(default_factory=list)
    scratches: List[Optional[ExecutionMetrics]] = field(default_factory=list)
    #: Per-slot (start, end) perf_counter pair of the winning attempt.
    timings: List[Optional[Tuple[float, float]]] = field(default_factory=list)
    #: Per-slot final attempt number (0 = succeeded first try).
    attempts: List[int] = field(default_factory=list)
    stats: VertexStats = None  # type: ignore[assignment]


class TaskScheduler:
    """Executes physical plans as dependency-ordered vertex tasks.

    Drop-in alternative to :class:`PlanExecutor`: same constructor
    shape, same ``execute(plan) -> outputs`` contract, same result for
    every plan (the differential test suite holds the two byte-identical
    on the whole corpus).
    """

    def __init__(self, cluster: Cluster, workers: int = 4,
                 validate: bool = True,
                 faults: Optional[FaultInjection] = None,
                 retry: Optional[RetryPolicy] = None,
                 watchdog: Optional[float] = None,
                 tracer=NULL_TRACER,
                 backend: str = "row"):
        if workers < 1:
            raise ValueError("the scheduler needs at least one worker")
        self.cluster = cluster
        self.workers = workers
        self.validate = validate
        self.backend = get_backend(backend)
        self.faults = faults or FaultInjection()
        self.retry = retry or RetryPolicy()
        self.watchdog = watchdog
        self.metrics = ExecutionMetrics()
        self.stage_graph: Optional[StageGraph] = None
        #: Observability tracer.  Spans are recorded from the
        #: coordinating thread only (``stage_graph.cut`` live, vertex
        #: and task spans during deterministic finalization), so worker
        #: threads never touch it and the span tree's structure is
        #: independent of worker count and completion order.
        self.tracer = tracer

    # -- public API -------------------------------------------------------

    def execute(self, plan: PhysicalPlan) -> Dict[str, Dataset]:
        """Run ``plan``; returns the output files it wrote."""
        with self.tracer.span("stage_graph.cut") as cut_span:
            graph = build_stage_graph(plan, validate=self.validate)
            cut_span.set(
                vertices=len(graph.vertices),
                spools=len(graph.spool_vertices()),
                partitionwise=sum(
                    1 for v in graph.vertices if v.partitionwise
                ),
            )
        self.stage_graph = graph
        self.metrics = ExecutionMetrics()

        pending_deps = {
            v.vid: len(set(v.deps)) for v in graph.vertices
        }
        consumers_left = {
            v.vid: len(v.consumers) for v in graph.vertices
        }
        results: Dict[int, Dataset] = {}
        runs: Dict[int, _VertexRun] = {}
        finished: Dict[int, _VertexRun] = {}
        inflight: Dict[object, _Task] = {}

        pool = ThreadPoolExecutor(max_workers=self.workers)
        try:
            for vertex in graph.vertices:
                if pending_deps[vertex.vid] == 0:
                    self._launch(vertex, results, runs, inflight, pool)
            while len(finished) < len(graph.vertices):
                if not inflight:
                    raise ExecutionError(
                        "scheduler stalled: no runnable tasks but "
                        f"{len(graph.vertices) - len(finished)} "
                        "vertices unfinished (dependency cycle?)"
                    )
                done, _ = wait(
                    inflight, timeout=self.watchdog,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    raise ExecutionError(
                        f"scheduler watchdog: no task completed within "
                        f"{self.watchdog}s ({len(inflight)} in flight)"
                    )
                for future in done:
                    task = inflight.pop(future)
                    error = future.exception()
                    if error is not None:
                        self._handle_failure(
                            task, error, results, runs, inflight, pool
                        )
                        continue
                    dataset, scratch, started, ended = future.result()
                    run = runs[task.vertex.vid]
                    run.results[task.slot] = dataset
                    run.scratches[task.slot] = scratch
                    run.timings[task.slot] = (started, ended)
                    run.attempts[task.slot] = task.attempt
                    run.stats.wall_seconds += ended - started
                    run.tasks_done += 1
                    if run.tasks_done < run.tasks_total:
                        continue
                    vid = task.vertex.vid
                    results[vid] = self._commit(run, results)
                    finished[vid] = run
                    del runs[vid]
                    for consumer in task.vertex.consumers:
                        pending_deps[consumer] -= 1
                        if pending_deps[consumer] == 0:
                            self._launch(
                                graph.vertices[consumer], results,
                                runs, inflight, pool,
                            )
                    # Release inputs nobody will read again.
                    for dep in task.vertex.deps:
                        consumers_left[dep] -= 1
                        if consumers_left[dep] <= 0:
                            results.pop(dep, None)
        except BaseException:
            pool.shutdown(wait=True, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        return self._finalize(finished)

    def _finalize(self, finished: Dict[int, _VertexRun]
                  ) -> Dict[str, Dataset]:
        # Deterministic finalization: merge task scratches and record
        # vertex stats (and spans) in vertex order, independent of
        # completion order.  Shared with the process runtime
        # (``repro.exec.dist``), whose worker scratches fold in through
        # the exact same path.
        for vid in sorted(finished):
            run = finished[vid]
            for scratch in run.scratches:
                if scratch is not None:
                    self.metrics.merge_from(scratch)
                    run.stats.simulated_makespan += scratch.simulated_makespan
                    run.stats.batches += scratch.total_batches()
                    # Per-partition task slices each carry one
                    # partition's share of a fragment's output: sum them
                    # per vertex.
                    for gid, rows in scratch.fragment_rows.items():
                        run.stats.fragment_rows[gid] = (
                            run.stats.fragment_rows.get(gid, 0) + rows
                        )
            # A fragment duplicated across vertices (conventional plans
            # re-execute shared work) is attributed once, to the first
            # vertex in deterministic vertex order.
            for gid, rows in run.stats.fragment_rows.items():
                self.metrics.fragment_rows.setdefault(gid, rows)
            self.metrics.task_retries += run.stats.retries
            self.metrics.vertices[run.stats.vertex] = run.stats
            if self.tracer.enabled:
                self._record_vertex_span(run)
        return {
            path: self.cluster.outputs[path]
            for path in sorted(self.cluster.outputs)
        }

    def _record_vertex_span(self, run: _VertexRun) -> None:
        """One ``scheduler.vertex/<name>`` span per vertex, with one
        ``task/<partition>`` child per task, nested under the caller's
        active span.  Timings come from the workers' measured start/end
        pairs; everything else is deterministic."""
        stats = run.stats
        timings = [t for t in run.timings if t is not None]
        start = min((t[0] for t in timings), default=0.0)
        end = max((t[1] for t in timings), default=0.0)
        vertex_span = self.tracer.record_span(
            f"scheduler.vertex/{run.vertex.name}", start, end,
            launches=stats.launches,
            tasks=stats.tasks,
            retries=stats.retries,
            rows_in=stats.rows_in,
            rows_out=stats.rows_out,
            estimated_rows=stats.estimated_rows,
            simulated_makespan=stats.simulated_makespan,
            sliced=run.sliced,
        )
        for slot, timing in enumerate(run.timings):
            if timing is None:  # pragma: no cover - all slots complete
                continue
            self.tracer.record_span(
                f"task/{slot}", timing[0], timing[1], parent=vertex_span,
                attempts=run.attempts[slot] + 1,
            )

    # -- scheduling internals ---------------------------------------------

    def _launch(self, vertex: Vertex, results: Dict[int, Dataset],
                runs: Dict[int, _VertexRun], inflight: Dict[object, _Task],
                pool: ThreadPoolExecutor) -> None:
        inputs = [results[dep] for dep in vertex.deps]
        n_parts = inputs[0].n_partitions if inputs else 0
        sliced = (
            vertex.partitionwise
            and n_parts > 1
            and all(d.n_partitions == n_parts for d in inputs)
        )
        tasks_total = n_parts if sliced else 1
        run = _VertexRun(
            vertex=vertex,
            tasks_total=tasks_total,
            sliced=sliced,
            results=[None] * tasks_total,
            scratches=[None] * tasks_total,
            timings=[None] * tasks_total,
            attempts=[0] * tasks_total,
            stats=VertexStats(
                vertex=vertex.name,
                launches=1,
                tasks=tasks_total,
                estimated_rows=vertex.root.rows,
                rows_in=sum(d.total_rows() for d in inputs),
                serves=vertex.serves,
            ),
        )
        runs[vertex.vid] = run
        for slot in range(tasks_total):
            task = _Task(
                vertex=vertex,
                part=slot if sliced else None,
                slot=slot,
            )
            self._submit(task, results, inflight, pool)

    def _submit(self, task: _Task, results: Dict[int, Dataset],
                inflight: Dict[object, _Task],
                pool: ThreadPoolExecutor) -> None:
        cuts = {
            node_id: results[vid]
            for node_id, vid in task.vertex.cut_nodes.items()
        }
        future = pool.submit(self._run_task, task, cuts)
        inflight[future] = task

    def _handle_failure(self, task: _Task, error: BaseException,
                        results: Dict[int, Dataset],
                        runs: Dict[int, _VertexRun],
                        inflight: Dict[object, _Task],
                        pool: ThreadPoolExecutor) -> None:
        retryable = isinstance(error, InjectedFault)
        if retryable and task.attempt < self.retry.max_retries:
            # The failed vertex has not committed, so its inputs are
            # still pinned in ``results``; resubmit the same task.
            task.attempt += 1
            runs[task.vertex.vid].stats.retries += 1
            self.tracer.emit(
                "scheduler.retry", vertex=task.vertex.name,
                part=task.part, attempt=task.attempt,
            )
            self._submit(task, results, inflight, pool)
            return
        raise VertexFailedError(
            task.vertex.name, task.attempt + 1, error
        ) from error

    def _run_task(self, task: _Task, cuts: Dict[int, Dataset]
                  ) -> Tuple[Dataset, ExecutionMetrics, float, float]:
        delay = self.retry.delay(task.attempt)
        if delay > 0.0:
            time.sleep(delay)
        started = time.perf_counter()
        if self.faults.should_fail(task.vertex.name, task.part,
                                   task.attempt):
            raise InjectedFault(
                f"injected fault in {task.vertex.name} "
                f"(part={task.part}, attempt={task.attempt})"
            )
        scratch = ExecutionMetrics()
        if task.vertex.is_spool:
            # The materialization task: pass the producer's result
            # through, charging the one-time build.  Reads are charged
            # by each consumer, mirroring the sequential executor.  A
            # spool stacked directly on another spool reads it once
            # (each read materializes a batch list, like the sequential
            # executor's per-read ``_finish``).
            (dataset,) = cuts.values()
            for _ in task.vertex.spool_cut_vids:
                scratch.note_operator("Spool")
                scratch.spool_reads += 1
                scratch.charge_spool(dataset.total_rows())
                scratch.note_batches(self.backend.name, dataset.n_partitions)
            scratch.rows_spooled += dataset.total_rows()
            scratch.charge_spool(dataset.total_rows())
            return dataset, scratch, started, time.perf_counter()
        if task.part is not None:
            cuts = {
                node_id: Dataset(
                    d.schema, [d.partitions[task.part]], d.props
                )
                for node_id, d in cuts.items()
            }
        # Vertex-boundary shims: committed results are row datasets;
        # convert inputs into the backend's layout (after slicing, so
        # per-partition tasks convert one partition) and the fragment
        # result back before commit.
        cuts = {
            node_id: self.backend.to_backend(d)
            for node_id, d in cuts.items()
        }
        executor = self.backend.fragment_cls(
            self.cluster, self.validate, scratch, cuts,
            slice_mode=task.part is not None,
        )
        dataset = self.backend.to_row(executor._run(task.vertex.root))
        return dataset, scratch, started, time.perf_counter()

    def _commit(self, run: _VertexRun,
                results: Dict[int, Dataset]) -> Dataset:
        """Assemble a finished vertex's output and finish accounting."""
        vertex = run.vertex
        if run.sliced:
            partitions = [d.partitions[0] for d in run.results]
            dataset = Dataset(vertex.root.schema, partitions,
                              vertex.root.props)
            if self.validate:
                violation = dataset.validate_layout()
                if violation is not None:
                    raise ExecutionError(
                        f"{vertex.name} produced data violating its "
                        f"claimed properties: {violation}"
                    )
            # Per-reference bookkeeping suppressed in slice mode,
            # accounted exactly once here.
            correction = ExecutionMetrics()
            for name in vertex.op_names:
                correction.note_operator(name)
            for spool_vid in vertex.spool_cut_vids:
                spool_rows = results[spool_vid].total_rows()
                correction.note_operator("Spool")
                correction.spool_reads += 1
                correction.charge_spool(spool_rows)
            run.scratches.append(correction)
        else:
            dataset = run.results[0]
        run.stats.rows_out = dataset.total_rows()
        return dataset
