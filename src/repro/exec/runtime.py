"""Physical plan execution on the simulated cluster.

The executor walks a physical plan DAG and produces partitioned
:class:`~repro.exec.datasets.Dataset` results.  Two semantics mirror the
cost model's tree/DAG split:

* **only SPOOL nodes are materialized** — a spool's input is executed
  once and its dataset cached, so every consumer re-reads the same
  result (the CSE plans of Figure 8(b));
* every other multi-referenced node is **re-executed per reference**,
  which is exactly the duplicated-pipeline semantics of a conventional
  plan (Figure 8(a)).

With ``validate=True`` (the default) the executor re-checks, at every
operator boundary, that the data really has the physical properties the
optimizer claimed (sortedness for stream aggregates and merge joins,
co-location for partitioned aggregates/joins).  A violation raises
:class:`ExecutionError` — optimizer property bugs fail loudly instead of
producing silently wrong costs or results.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.tracer import NULL_TRACER
from ..plan.expressions import Row
from ..plan.logical import GroupByMode, JoinKind
from ..plan.physical import (
    PhysBroadcastJoin,
    PhysExtract,
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysicalPlan,
    PhysMerge,
    PhysMergeJoin,
    PhysOutput,
    PhysPassThrough,
    PhysProject,
    PhysRangeRepartition,
    PhysRepartition,
    PhysSequence,
    PhysSort,
    PhysSpool,
    PhysStreamAgg,
    PhysTopN,
    PhysUnionAll,
)
from ..plan.properties import SortOrder
from .cluster import Cluster
from .datasets import Dataset, Partition, guarded_key, hash_partition_index
from .metrics import ExecutionMetrics


class ExecutionError(RuntimeError):
    """A runtime property violation or malformed plan."""


def _sort_key(columns) -> Callable[[Row], Tuple]:
    def key(row: Row) -> Tuple:
        return tuple((row[c] is None, row[c]) for c in columns)

    return key


class PlanExecutor:
    """Executes physical plans against one cluster."""

    #: Backend identity — keys the ``batches_processed`` metric and the
    #: ``repro run --explain-exec`` report.  The columnar executor
    #: (``repro.exec.columnar``) overrides both class attributes and the
    #: operator kernels; everything else (dispatch, spool caching,
    #: metrics, tracing) is shared so the backends cannot drift apart.
    backend_name = "row"
    #: Dataset class materialized at operator boundaries.
    dataset_cls = Dataset

    def __init__(self, cluster: Cluster, validate: bool = True,
                 tracer=NULL_TRACER):
        self.cluster = cluster
        self.validate = validate
        self.metrics = ExecutionMetrics()
        self._spool_cache: Dict[int, Dataset] = {}
        #: Memo group ids whose measured output rows were already
        #: recorded.  A conventional plan re-executes multi-referenced
        #: fragments per reference with identical output, so the first
        #: execution wins and the feedback loop never double-counts.
        self._fragment_gids: set = set()
        #: Observability tracer; the per-row/per-operator paths make no
        #: tracer calls, only cold events (spool materialization) do.
        self.tracer = tracer

    # -- public API -------------------------------------------------------

    def execute(self, plan: PhysicalPlan) -> Dict[str, Dataset]:
        """Run ``plan``; returns the output files it wrote."""
        self._spool_cache.clear()
        self._run(plan)
        return dict(self.cluster.outputs)

    # -- dispatch -----------------------------------------------------------

    def _run(self, node: PhysicalPlan) -> Dataset:
        op = node.op
        self.metrics.note_operator(op.name)

        if isinstance(op, PhysPassThrough):
            # Not materialized: every reference recomputes the input.
            inner = self._run(node.children[0])
            return self._finish(node, inner.partitions)

        if isinstance(op, PhysSpool):
            cached = self._spool_cache.get(id(node))
            if cached is None:
                with self.tracer.span("spool.materialize") as span:
                    cached = self._run(node.children[0])
                    span.set(rows=cached.total_rows())
                self.metrics.rows_spooled += cached.total_rows()
                self.metrics.charge_spool(cached.total_rows())
                self._spool_cache[id(node)] = cached
            self.metrics.spool_reads += 1
            self.metrics.charge_spool(cached.total_rows())
            return self._finish(node, cached.partitions)

        inputs = [self._run(child) for child in node.children]
        return self._finish(node, self._apply_op(node, inputs))

    def _apply_op(self, node: PhysicalPlan,
                  inputs: List[Dataset]) -> List[Partition]:
        """Evaluate one non-spool operator over already-computed inputs.

        This is the single point through which both the recursive
        executor and the task scheduler (``repro.exec.scheduler``) run
        operators, so the two execution paths cannot diverge.
        """
        op = node.op
        for dataset in inputs:
            self.metrics.charge_compute(dataset.partitions)

        if isinstance(op, PhysExtract):
            result = self._extract(op)
        elif isinstance(op, PhysFilter):
            result = self._filter(op, inputs[0])
        elif isinstance(op, PhysProject):
            result = self._project(op, inputs[0])
        elif isinstance(op, PhysSort):
            result = self._sort(op, inputs[0])
        elif isinstance(op, PhysRepartition):
            result = self._repartition(op, inputs[0])
        elif isinstance(op, PhysRangeRepartition):
            result = self._range_repartition(op, inputs[0])
        elif isinstance(op, PhysMerge):
            result = self._merge(op, inputs[0])
        elif isinstance(op, PhysStreamAgg):
            result = self._stream_agg(op, node, inputs[0])
        elif isinstance(op, PhysHashAgg):
            result = self._hash_agg(op, node, inputs[0])
        elif isinstance(op, PhysMergeJoin):
            result = self._merge_join(op, node, inputs)
        elif isinstance(op, PhysHashJoin):
            result = self._hash_join(op, node, inputs)
        elif isinstance(op, PhysBroadcastJoin):
            result = self._broadcast_join(op, node, inputs)
        elif isinstance(op, PhysTopN):
            result = self._top_n(op, inputs[0])
        elif isinstance(op, PhysOutput):
            result = self._output(op, inputs[0])
        elif isinstance(op, (PhysSequence, PhysUnionAll)):
            if isinstance(op, PhysUnionAll):
                result = self._union(inputs)
            else:
                result = self._empty_partitions()
        else:  # pragma: no cover - exhaustive over the physical algebra
            raise ExecutionError(f"no executor for {type(op).__name__}")

        return result

    def _finish(self, node: PhysicalPlan, partitions: List[Partition]) -> Dataset:
        dataset = self.dataset_cls(node.schema, partitions, node.props)
        self.metrics.note_partition_sizes(partitions)
        self.metrics.note_batches(self.backend_name, len(partitions))
        gid = node.group_id
        if (gid is not None and gid not in self._fragment_gids
                and not isinstance(node.op, (PhysOutput, PhysSequence))):
            # Output/Sequence emit no rows downstream; recording their
            # zero against the fingerprint-transparent child fragment
            # would fabricate an infinite q-error.
            self._fragment_gids.add(gid)
            self.metrics.note_fragment_rows(gid, dataset.total_rows())
        if self.validate:
            violation = dataset.validate_layout()
            if violation is not None:
                raise ExecutionError(
                    f"{node.op.name} produced data violating its claimed "
                    f"properties: {violation}"
                )
        return dataset

    # -- operators ------------------------------------------------------------

    def _extract(self, op: PhysExtract) -> List[Partition]:
        rows = self.cluster.read_file(op.path)
        self.metrics.rows_extracted += len(rows)
        n = self.cluster.machines
        partitions: List[Partition] = [[] for _ in range(n)]
        names = op.schema.names
        for index, row in enumerate(rows):
            projected = {c: row[c] for c in names}
            partitions[index % n].append(projected)
        return partitions

    def _empty_partitions(self) -> List[Partition]:
        """One empty partition per machine (Output/Sequence results)."""
        return [[] for _ in range(self.cluster.machines)]

    def _filter(self, op: PhysFilter, data: Dataset) -> List[Partition]:
        result: List[Partition] = []
        predicate = op.predicate
        for part in data.partitions:
            kept = [row for row in part if predicate.evaluate(row)]
            self.metrics.rows_filtered += len(part) - len(kept)
            result.append(kept)
        return result

    def _project(self, op: PhysProject, data: Dataset) -> List[Partition]:
        return [
            [
                {ne.alias: ne.expr.evaluate(row) for ne in op.exprs}
                for row in part
            ]
            for part in data.partitions
        ]

    def _sort(self, op: PhysSort, data: Dataset) -> List[Partition]:
        key = _sort_key(op.order.columns)
        self.metrics.rows_sorted += data.total_rows()
        return [sorted(part, key=key) for part in data.partitions]

    def _repartition(self, op: PhysRepartition, data: Dataset) -> List[Partition]:
        n = self.cluster.machines
        self.metrics.rows_shuffled += data.total_rows()
        self.metrics.charge_exchange(data.total_rows())
        if op.merge_sort.is_sorted:
            self._check_sorted(data, op.merge_sort, "Repartition(merge)")
            streams: List[List[Partition]] = [[] for _ in range(n)]
            key = _sort_key(op.merge_sort.columns)
            for part in data.partitions:
                buckets: List[Partition] = [[] for _ in range(n)]
                for row in part:
                    buckets[hash_partition_index(row, op.columns, n)].append(row)
                for idx in range(n):
                    streams[idx].append(buckets[idx])
            return [list(heapq.merge(*runs, key=key)) for runs in streams]
        partitions: List[Partition] = [[] for _ in range(n)]
        for part in data.partitions:
            for row in part:
                partitions[hash_partition_index(row, op.columns, n)].append(row)
        return partitions

    def _range_repartition(self, op: PhysRangeRepartition,
                           data: Dataset) -> List[Partition]:
        """Scatter rows by range boundaries computed from the data.

        Boundaries are exact quantiles over the *distinct* key values
        (a production system samples), so equal keys are never split.
        """
        n = self.cluster.machines
        self.metrics.rows_shuffled += data.total_rows()
        self.metrics.charge_exchange(data.total_rows())
        keys = sorted(
            {
                guarded_key(row[c] for c in op.order)
                for part in data.partitions
                for row in part
            }
        )
        # n-1 boundaries at the distinct-value quantiles; partition i
        # receives keys in [boundary[i-1], boundary[i]).
        boundaries = [
            keys[(len(keys) * (i + 1)) // n] for i in range(n - 1)
        ] if keys else []

        def destination(row: Row) -> int:
            key = guarded_key(row[c] for c in op.order)
            return bisect.bisect_right(boundaries, key)

        if op.merge_sort.is_sorted:
            self._check_sorted(data, op.merge_sort, "RangeRepartition(merge)")
            key_fn = _sort_key(op.merge_sort.columns)
            streams: List[List[Partition]] = [[] for _ in range(n)]
            for part in data.partitions:
                buckets: List[Partition] = [[] for _ in range(n)]
                for row in part:
                    buckets[destination(row)].append(row)
                for idx in range(n):
                    streams[idx].append(buckets[idx])
            return [list(heapq.merge(*runs, key=key_fn)) for runs in streams]
        partitions: List[Partition] = [[] for _ in range(n)]
        for part in data.partitions:
            for row in part:
                partitions[destination(row)].append(row)
        return partitions

    def _merge(self, op: PhysMerge, data: Dataset) -> List[Partition]:
        n = self.cluster.machines
        self.metrics.rows_shuffled += data.total_rows()
        self.metrics.charge_exchange(data.total_rows())
        if op.merge_sort.is_sorted:
            self._check_sorted(data, op.merge_sort, "Merge")
            key = _sort_key(op.merge_sort.columns)
            merged = list(heapq.merge(*data.partitions, key=key))
        else:
            merged = data.all_rows()
        result: List[Partition] = [[] for _ in range(n)]
        result[0] = merged
        return result

    # -- aggregation -------------------------------------------------------

    def _finalize_group(
        self, keys: Tuple[str, ...], key_values, aggregates, states
    ) -> Row:
        row: Row = dict(zip(keys, key_values))
        for agg, state in zip(aggregates, states):
            row[agg.alias] = agg.finalize(state)
        return row

    def _stream_agg(self, op: PhysStreamAgg, node: PhysicalPlan,
                    data: Dataset) -> List[Partition]:
        self._check_sorted(data, SortOrder(op.key_order), "StreamAgg")
        if op.mode is not GroupByMode.LOCAL:
            self._check_grouping_colocation(data, op.key_order, "StreamAgg")
        result: List[Partition] = []
        for part in data.partitions:
            out: Partition = []
            current_key = _UNSET
            states: List = []
            for row in part:
                key = tuple(row[c] for c in op.key_order)
                if key != current_key:
                    if current_key is not _UNSET:
                        out.append(
                            self._finalize_group(
                                op.key_order, current_key, op.aggregates, states
                            )
                        )
                    current_key = key
                    states = [agg.init_state() for agg in op.aggregates]
                states = [
                    agg.accumulate(state, row)
                    for agg, state in zip(op.aggregates, states)
                ]
            if current_key is not _UNSET:
                out.append(
                    self._finalize_group(
                        op.key_order, current_key, op.aggregates, states
                    )
                )
            elif not op.key_order and op.mode is not GroupByMode.LOCAL and part:
                pass  # unreachable: empty key with rows sets current_key
            result.append(out)
        return result

    def _hash_agg(self, op: PhysHashAgg, node: PhysicalPlan,
                  data: Dataset) -> List[Partition]:
        if op.mode is not GroupByMode.LOCAL:
            self._check_grouping_colocation(data, op.keys, "HashAgg")
        result: List[Partition] = []
        for part in data.partitions:
            groups: Dict[Tuple, List] = {}
            for row in part:
                key = tuple(row[c] for c in op.keys)
                states = groups.get(key)
                if states is None:
                    states = [agg.init_state() for agg in op.aggregates]
                groups[key] = [
                    agg.accumulate(state, row)
                    for agg, state in zip(op.aggregates, states)
                ]
            out = [
                self._finalize_group(op.keys, key, op.aggregates, states)
                for key, states in groups.items()
            ]
            result.append(out)
        return result

    # -- joins ---------------------------------------------------------------

    def _check_join_colocation(self, node: PhysicalPlan, left: Dataset,
                               right: Dataset, left_keys, right_keys,
                               name: str) -> None:
        if not self.validate:
            return
        if left.n_partitions != right.n_partitions:
            raise ExecutionError(f"{name}: partition counts differ")
        # Every key value must be co-located: recompute each side's
        # placement and compare.
        placement: Dict[Tuple, int] = {}
        for idx, part in enumerate(left.partitions):
            for row in part:
                key = tuple(row[c] for c in left_keys)
                prev = placement.setdefault(key, idx)
                if prev != idx:
                    raise ExecutionError(
                        f"{name}: left key {key} split across partitions"
                    )
        for idx, part in enumerate(right.partitions):
            for row in part:
                key = tuple(row[c] for c in right_keys)
                prev = placement.get(key)
                if prev is not None and prev != idx:
                    raise ExecutionError(
                        f"{name}: key {key} not co-located "
                        f"(left partition {prev}, right partition {idx})"
                    )

    def _null_padding(self, node: PhysicalPlan) -> Row:
        """NULLs for the right side's columns (LEFT join padding)."""
        return {c: None for c in node.children[1].schema.names}

    def _merge_join(self, op: PhysMergeJoin, node: PhysicalPlan,
                    inputs: List[Dataset]) -> List[Partition]:
        left, right = inputs
        self._check_sorted(left, SortOrder(op.left_keys), "MergeJoin left")
        self._check_sorted(right, SortOrder(op.right_keys), "MergeJoin right")
        self._check_join_colocation(
            node, left, right, op.left_keys, op.right_keys, "MergeJoin"
        )
        padding = self._null_padding(node)
        is_left = op.kind is JoinKind.LEFT

        def guarded(key):
            return tuple((v is None, v) for v in key)

        result: List[Partition] = []
        for lpart, rpart in zip(left.partitions, right.partitions):
            out: Partition = []
            i = j = 0
            while i < len(lpart):
                lkey = tuple(lpart[i][c] for c in op.left_keys)
                if j >= len(rpart):
                    if is_left:
                        out.append({**lpart[i], **padding})
                    i += 1
                    continue
                rkey = tuple(rpart[j][c] for c in op.right_keys)
                if guarded(lkey) < guarded(rkey) or None in lkey:
                    # NULL join keys never match anything.
                    if is_left:
                        out.append({**lpart[i], **padding})
                    i += 1
                elif guarded(lkey) > guarded(rkey):
                    j += 1
                else:
                    i_end = i
                    while i_end < len(lpart) and tuple(
                        lpart[i_end][c] for c in op.left_keys
                    ) == lkey:
                        i_end += 1
                    j_end = j
                    while j_end < len(rpart) and tuple(
                        rpart[j_end][c] for c in op.right_keys
                    ) == rkey:
                        j_end += 1
                    for li in range(i, i_end):
                        for rj in range(j, j_end):
                            out.append({**lpart[li], **rpart[rj]})
                    i, j = i_end, j_end
            result.append(out)
        return result

    def _probe(self, build_rows: Partition, probe_part: Partition,
               build_keys, probe_keys, padding: Optional[Row] = None
               ) -> Partition:
        """Probe a hash table; ``padding`` enables LEFT-join semantics."""
        table: Dict[Tuple, Partition] = {}
        for row in build_rows:
            table.setdefault(tuple(row[c] for c in build_keys), []).append(row)
        out: Partition = []
        for row in probe_part:
            key = tuple(row[c] for c in probe_keys)
            matches = () if None in key else table.get(key, ())
            if matches:
                for match in matches:
                    out.append({**row, **match})
            elif padding is not None:
                out.append({**row, **padding})
        return out

    def _hash_join(self, op: PhysHashJoin, node: PhysicalPlan,
                   inputs: List[Dataset]) -> List[Partition]:
        left, right = inputs
        self._check_join_colocation(
            node, left, right, op.left_keys, op.right_keys, "HashJoin"
        )
        padding = (
            self._null_padding(node) if op.kind is JoinKind.LEFT else None
        )
        return [
            self._probe(rpart, lpart, op.right_keys, op.left_keys, padding)
            for lpart, rpart in zip(left.partitions, right.partitions)
        ]

    def _broadcast_join(self, op: PhysBroadcastJoin, node: PhysicalPlan,
                        inputs: List[Dataset]) -> List[Partition]:
        left, right = inputs
        build = right.all_rows()
        self.metrics.rows_broadcast += len(build) * left.n_partitions
        self.metrics.charge_exchange(len(build) * left.n_partitions)
        padding = (
            self._null_padding(node) if op.kind is JoinKind.LEFT else None
        )
        return [
            self._probe(build, lpart, op.right_keys, op.left_keys, padding)
            for lpart in left.partitions
        ]

    def _top_n(self, op: PhysTopN, data: Dataset) -> List[Partition]:
        """Deterministic top-n: order columns first, full row breaks ties."""
        names = data.schema.names
        tiebreak = [c for c in names if c not in op.order_columns]
        key_cols = list(op.order_columns) + tiebreak

        def key(row: Row):
            return guarded_key(row[c] for c in key_cols)

        if op.mode is not GroupByMode.LOCAL:
            occupied = [i for i, part in enumerate(data.partitions) if part]
            if len(occupied) > 1:
                raise ExecutionError(
                    f"TopN[{op.mode.value}]: input spread over partitions "
                    f"{occupied}"
                )
        result: List[Partition] = []
        for part in data.partitions:
            result.append(sorted(part, key=key)[: op.n])
        return result

    # -- outputs --------------------------------------------------------------

    def _output(self, op: PhysOutput, data: Dataset) -> List[Partition]:
        self.metrics.rows_output += data.total_rows()
        self.cluster.write_output(op.path, data)
        return self._empty_partitions()

    def _union(self, inputs: List[Dataset]) -> List[Partition]:
        n = max(d.n_partitions for d in inputs)
        result: List[Partition] = [[] for _ in range(n)]
        for data in inputs:
            for idx, part in enumerate(data.partitions):
                result[idx % n].extend(part)
        return result

    # -- validation helpers ------------------------------------------------------

    def _check_sorted(self, data: Dataset, order: SortOrder, who: str) -> None:
        if not self.validate or not order.is_sorted:
            return
        key = _sort_key(order.columns)
        for idx, part in enumerate(data.partitions):
            for a, b in zip(part, part[1:]):
                if key(a) > key(b):
                    raise ExecutionError(
                        f"{who}: input partition {idx} not sorted on {order}"
                    )

    def _check_grouping_colocation(self, data: Dataset, keys, who: str) -> None:
        """Rows agreeing on ``keys`` must share a partition (FULL/FINAL)."""
        if not self.validate:
            return
        if not keys:
            occupied = [i for i, p in enumerate(data.partitions) if p]
            if len(occupied) > 1:
                raise ExecutionError(
                    f"{who}: scalar aggregate input spread over {occupied}"
                )
            return
        placement: Dict[Tuple, int] = {}
        for idx, part in enumerate(data.partitions):
            for row in part:
                key = tuple(row[c] for c in keys)
                prev = placement.setdefault(key, idx)
                if prev != idx:
                    raise ExecutionError(
                        f"{who}: group {key} split across partitions "
                        f"{prev} and {idx}"
                    )


class FragmentCutMixin:
    """Stops executor recursion at a vertex's cut points.

    Mixed in front of a concrete executor class (``PlanExecutor`` or the
    columnar subclass) to build the per-task fragment executors of
    ``repro.exec.scheduler``: already-computed producer results are
    injected via ``cuts`` (keyed by plan-node ``id``) instead of being
    recomputed.  ``slice_mode`` marks per-partition tasks: inputs arrive
    pre-sliced to a single partition, and bookkeeping that is per
    *reference* rather than per row (operator invocations, spool reads)
    is suppressed — the scheduler accounts it once at the vertex level
    so counters match the sequential executor exactly.  Defined here
    rather than in the scheduler so backend modules can subclass it
    without importing the scheduler (which imports them).
    """

    def __init__(self, cluster: Cluster, validate: bool,
                 metrics: ExecutionMetrics,
                 cuts: Dict[int, Dataset], slice_mode: bool = False):
        super().__init__(cluster, validate)
        self.metrics = metrics
        self._cuts = cuts
        self._slice_mode = slice_mode

    def _run(self, node: PhysicalPlan) -> Dataset:
        cut = self._cuts.get(id(node))
        if cut is not None:
            if isinstance(node.op, PhysSpool):
                # A consumer re-reading the materialized spool.
                if not self._slice_mode:
                    self.metrics.note_operator(node.op.name)
                    self.metrics.spool_reads += 1
                    self.metrics.charge_spool(cut.total_rows())
                return self._finish(node, cut.partitions)
            return cut
        if self._slice_mode:
            # Mirror the parent dispatch but without per-reference
            # operator counting (accounted once at the vertex level).
            inputs = [self._run(child) for child in node.children]
            return self._finish(node, self._apply_op(node, inputs))
        return super()._run(node)


class _Unset:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unset>"


_UNSET = _Unset()
